//! # mpshare
//!
//! Granularity- and interference-aware GPU sharing with CUDA MPS — a Rust
//! reproduction of the SC'24 paper of the same name, built on a calibrated
//! discrete-event GPU/MPS simulator.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`types`] — shared units ([`types::Seconds`], [`types::Energy`], …),
//!   ids, and errors;
//! * [`gpusim`] — the GPU simulator: occupancy calculator, contention
//!   solver, power/DVFS model, piecewise-exact execution engine;
//! * [`mps`] — CUDA MPS / time-slicing / MIG control-plane models and the
//!   uniform [`mps::GpuRunner`];
//! * [`workloads`] — the seven calibrated HPC benchmark models
//!   (Tables I & II of the paper), workflow combinations (Table III), and
//!   a synthetic workload generator;
//! * [`profiler`] — the offline profiling pass (§IV-A), including the
//!   Figure-1-style saturation-partition sweep;
//! * [`core`] — the contribution: the interference predictor, collocation
//!   planner, partition right-sizing, plan executor, and metrics (§IV);
//! * [`harness`] — experiment runners regenerating every table and figure;
//! * [`par`] — the dependency-free parallel fan-out layer: planner
//!   candidates, executor legs, and experiment sweep points run on worker
//!   threads with bit-identical results to the serial path (force it with
//!   [`par::set_serial`] or `MPSHARE_SERIAL=1`);
//! * [`obs`] — cross-layer observability: the deterministic span/event
//!   recorder, metrics registry (Prometheus + JSON), merged Perfetto
//!   export, and the interference-attribution report. Off by default and
//!   zero-cost when disabled; enable with [`obs::set_enabled`].
//!
//! ## Quick start
//!
//! ```
//! use mpshare::core::{Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy};
//! use mpshare::core::workflow_profile;
//! use mpshare::gpusim::DeviceSpec;
//! use mpshare::profiler::ProfileStore;
//! use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
//!
//! let device = DeviceSpec::a100x();
//!
//! // A queue of two workflows to schedule.
//! let queue = vec![
//!     WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
//!     WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 10),
//! ];
//!
//! // Offline profiling pass (runs each distinct task solo on the simulator).
//! let mut store = ProfileStore::new();
//! store.profile_workflows(&device, &queue).unwrap();
//! let profiles: Vec<_> = queue
//!     .iter()
//!     .map(|w| workflow_profile(&store, w).unwrap())
//!     .collect();
//!
//! // Plan and execute.
//! let planner = Planner::new(device.clone(), MetricPriority::Throughput);
//! let plan = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
//! let executor = Executor::new(ExecutorConfig::new(device));
//! let report = executor.evaluate_plan(&queue, &plan).unwrap();
//! assert!(report.metrics.throughput_gain > 1.0);
//! ```

pub use mpshare_core as core;
pub use mpshare_fuzz as fuzz;
pub use mpshare_gpusim as gpusim;
pub use mpshare_harness as harness;
pub use mpshare_mps as mps;
pub use mpshare_obs as obs;
pub use mpshare_par as par;
pub use mpshare_profiler as profiler;
pub use mpshare_types as types;
pub use mpshare_workloads as workloads;
