//! End-to-end integration of the component/tick-heap engine core through
//! the facade crate:
//!
//! * a two-GPU + shared-interconnect composition advances interleaved
//!   through one global heap, and each GPU's result stays bit-identical
//!   to the same engine run solo;
//! * the component counters (`ticks`, `heap_max_depth`) surface through
//!   `mpshare-obs` when a `GpuRunner` records an engine run.

use mpshare::gpusim::{ClientProgram, Composition, DeviceSpec, Engine, EngineConfig, SharingMode};
use mpshare::mps::{GpuRunner, GpuSharing};
use mpshare::obs;
use mpshare::workloads::SyntheticSpec;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

/// Two clients, two tasks each (4 tasks per GPU); distinct salts keep the
/// task-id spaces of the two GPUs disjoint.
fn programs(salt: u64) -> Vec<ClientProgram> {
    let d = device();
    (0..2)
        .map(|i| {
            SyntheticSpec {
                sm_demand: 0.25 + 0.1 * i as f64,
                bw_demand: 0.1,
                duty_cycle: 0.8,
                duration: 1.0 + 0.5 * i as f64,
                memory_mib: 256,
                kernels: 4,
                cache_sensitivity: 0.2,
                client_sensitivity: 0.05,
            }
            .to_client_program(&d, 2, salt + i as u64 * 100)
            .unwrap()
        })
        .collect()
}

fn engine(salt: u64) -> Engine {
    Engine::new(
        EngineConfig::new(device(), SharingMode::mps_uniform(2)),
        programs(salt),
    )
    .unwrap()
}

#[test]
fn two_gpu_composition_matches_solo_runs_and_accounts_the_link() {
    // Solo references: the same engines run alone through the default
    // (component-core) loop.
    let (solo0, _) = engine(0).run_with_stats().unwrap();
    let (solo1, _) = engine(1000).run_with_stats().unwrap();

    let outcome = Composition::new(
        vec![
            ("gpu0".to_string(), engine(0)),
            ("gpu1".to_string(), engine(1000)),
        ],
        1e9, // 1 GB/s link
        1e6, // 1 MB shipped per completed task
    )
    .unwrap()
    .run()
    .unwrap();

    // Composing with an interconnect must not perturb either engine: the
    // link only observes completions, it never back-pressures the GPUs.
    assert_eq!(
        serde_json::to_string(&outcome.gpus[0].result).unwrap(),
        serde_json::to_string(&solo0).unwrap(),
        "gpu0 diverged from its solo run"
    );
    assert_eq!(
        serde_json::to_string(&outcome.gpus[1].result).unwrap(),
        serde_json::to_string(&solo1).unwrap(),
        "gpu1 diverged from its solo run"
    );

    // Link accounting: one transfer per completed task, ring-routed, all
    // drained by the end of the run.
    let total_tasks = (solo0.tasks_completed + solo1.tasks_completed) as u64;
    assert_eq!(total_tasks, 8);
    assert_eq!(outcome.link.transfers, total_tasks);
    assert!((outcome.link.bytes_moved - total_tasks as f64 * 1e6).abs() < 1e-3);
    assert!(outcome.link.busy_seconds > 0.0);
    assert!(outcome.link.last_completion.value() > 0.0);
    for (g, solo) in outcome.gpus.iter().zip([&solo0, &solo1]) {
        assert_eq!(g.sent_transfers, solo.tasks_completed as u64);
        assert_eq!(
            g.received_transfers,
            total_tasks - solo.tasks_completed as u64
        );
    }

    // Heap/tick accounting: three components share the heap, the link is
    // armed only while transfers are queued, and every task crosses the
    // core twice (GPU → link, link → successor GPU).
    assert!(outcome.sim.ticks > 0);
    assert!(
        (2..=3).contains(&outcome.sim.max_heap_depth),
        "heap depth {} out of range",
        outcome.sim.max_heap_depth
    );
    assert_eq!(outcome.sim.messages, 2 * total_tasks);

    // The composition makespan covers both GPUs and the link's tail.
    assert!(outcome.makespan >= solo0.makespan);
    assert!(outcome.makespan >= solo1.makespan);
    assert!(outcome.makespan.value() >= outcome.link.last_completion.value());
}

/// The whole obs story in one test: the registry is process-global, so
/// splitting the component-metric assertions across #[test] functions
/// would race on the enabled flag and the counters.
#[test]
fn runner_exports_component_ticks_and_heap_depth_metrics() {
    obs::set_enabled(true);
    let m = obs::metrics();
    let ticks0 = m.counter_get(obs::names::ENGINE_COMPONENT_TICKS);
    let depth0 = m.histogram_count(obs::names::ENGINE_HEAP_DEPTH);

    let runner = GpuRunner::new(device());
    let r = runner
        .run(&GpuSharing::mps_default(2), programs(0))
        .unwrap();
    assert_eq!(r.tasks_completed, 4);

    let ticks1 = m.counter_get(obs::names::ENGINE_COMPONENT_TICKS);
    let depth1 = m.histogram_count(obs::names::ENGINE_HEAP_DEPTH);
    assert!(
        ticks1 > ticks0,
        "component-core run must add engine ticks ({ticks0} -> {ticks1})"
    );
    assert_eq!(
        depth1,
        depth0 + 1,
        "one heap-depth observation per recorded engine run"
    );

    // The legacy loop never touches the heap: recording such a run adds
    // zero ticks and no depth observation.
    let legacy = runner
        .clone()
        .with_legacy_loop(true)
        .run(&GpuSharing::mps_default(2), programs(0))
        .unwrap();
    assert_eq!(legacy.tasks_completed, 4);
    assert_eq!(m.counter_get(obs::names::ENGINE_COMPONENT_TICKS), ticks1);
    assert_eq!(m.histogram_count(obs::names::ENGINE_HEAP_DEPTH), depth1);

    obs::set_enabled(false);
}
