//! Property-based invariants of the simulator and scheduler, driven by
//! randomized synthetic workloads.

use mpshare::gpusim::DeviceSpec;
use mpshare::mps::{GpuRunner, GpuSharing, TimeSliceConfig};
use mpshare::types::Seconds;
use mpshare::workloads::SyntheticSpec;
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

/// Strategy generating one synthetic workload spec.
fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        0.02f64..=1.0, // sm_demand
        0.0f64..=0.6,  // bw_demand
        0.2f64..=1.0,  // duty cycle
        1.0f64..=20.0, // duration
        64u64..=8192,  // memory MiB
        2usize..=12,   // kernels
        0.0f64..=1.0,  // cache sensitivity
        0.0f64..=0.15, // client sensitivity
    )
        .prop_map(
            |(sm, bw, duty, duration, memory_mib, kernels, cache, client)| SyntheticSpec {
                sm_demand: sm,
                bw_demand: bw,
                duty_cycle: duty,
                duration,
                memory_mib,
                kernels,
                cache_sensitivity: cache,
                client_sensitivity: client,
            },
        )
}

fn programs_for(specs: &[SyntheticSpec]) -> Vec<mpshare::gpusim::ClientProgram> {
    let d = device();
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_client_program(&d, 1, i as u64 * 100).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy is exactly the integral of power over the telemetry; total
    /// time covers the makespan; utilizations stay within bounds.
    #[test]
    fn telemetry_integrals_are_consistent(specs in prop::collection::vec(spec_strategy(), 1..5)) {
        let runner = GpuRunner::new(device());
        let n = specs.len();
        let result = runner.run(&GpuSharing::mps_default(n), programs_for(&specs)).unwrap();
        let t = &result.telemetry;

        prop_assert!((t.total_time().value() - result.makespan.value()).abs() < 1e-6);
        let integral: f64 = t.segments().iter().map(|s| s.energy().joules()).sum();
        prop_assert!((integral - result.total_energy.joules()).abs() < 1e-6);
        for s in t.segments() {
            prop_assert!(s.sm_util >= 0.0 && s.sm_util <= 1.0 + 1e-9);
            prop_assert!(s.bw_util >= 0.0 && s.bw_util <= 1.0 + 1e-9);
            prop_assert!(s.power.watts() <= 300.0 + 1e-9);
            prop_assert!(s.clock_factor > 0.0 && s.clock_factor <= 1.0);
        }
    }

    /// Sharing never loses tasks, and the shared makespan is bounded below
    /// by the longest client's solo time and above by the sum of all solo
    /// times (work conservation with non-negative overheads may exceed
    /// the sum only by the modeled interference, bounded here loosely).
    #[test]
    fn makespan_bounds_hold(specs in prop::collection::vec(spec_strategy(), 1..5)) {
        let runner = GpuRunner::new(device());
        let programs = programs_for(&specs);
        let solo_max = programs
            .iter()
            .map(|p| p.solo_wall_time().value())
            .fold(0.0f64, f64::max);
        let solo_sum: f64 = programs.iter().map(|p| p.solo_wall_time().value()).sum();
        let n = programs.len();
        let result = runner.run(&GpuSharing::mps_default(n), programs).unwrap();

        prop_assert_eq!(result.tasks_completed, n);
        prop_assert!(result.makespan.value() >= solo_max - 1e-6,
            "makespan {} below longest solo {}", result.makespan, solo_max);
        // Interference (cache + client pressure) can stretch beyond the
        // solo sum, but by no more than the modeled slowdown bound.
        let max_slowdown: f64 = specs
            .iter()
            .map(|s| 1.0 + s.cache_sensitivity * 0.6 * (n as f64 - 1.0)
                + s.client_sensitivity * 6.0)
            .fold(1.0f64, f64::max);
        prop_assert!(result.makespan.value() <= solo_sum * max_slowdown + 1e-6,
            "makespan {} above bound {}", result.makespan, solo_sum * max_slowdown);
    }

    /// Sequential scheduling's makespan equals the sum of solo times, and
    /// sequential energy is an upper bound for MPS energy of the same work
    /// whenever no interference-induced stretching occurs (single client).
    #[test]
    fn sequential_equals_solo_sum(spec in spec_strategy()) {
        let runner = GpuRunner::new(device());
        let d = device();
        let programs: Vec<_> = (0..3)
            .map(|i| spec.to_client_program(&d, 1, i * 10).unwrap())
            .collect();
        let solo_sum: f64 = programs.iter().map(|p| p.solo_wall_time().value()).sum();
        let result = runner.run(&GpuSharing::Sequential, programs).unwrap();
        // Power capping can stretch a single hot client; allow only that.
        prop_assert!(result.makespan.value() >= solo_sum - 1e-6);
        if result.telemetry.capped_time() == Seconds::ZERO {
            prop_assert!((result.makespan.value() - solo_sum).abs() < 1e-6,
                "uncapped sequential {} vs solo sum {}", result.makespan, solo_sum);
        }
    }

    /// For interference-free workloads (no cache/client sensitivity),
    /// concurrent MPS stays at least near-parity with time-slicing. Two
    /// effects can hand time-slicing a small edge even then: (a) power
    /// capping (two resident clients raise the power peaks, §V-C), which
    /// the guard below excludes; (b) phase alignment — deterministic,
    /// near-identical clients under MPS keep their host gaps synchronized
    /// and idle the GPU together, while time-slicing naturally
    /// desynchronizes them (real MPS clients jitter apart; the simulator's
    /// determinism keeps them locked). Effect (b) is bounded by the
    /// largest gap fraction among the clients, which bounds the tolerance.
    #[test]
    fn timeslicing_never_beats_mps_without_interference(
        specs in prop::collection::vec(spec_strategy(), 2..4)
    ) {
        let clean: Vec<SyntheticSpec> = specs
            .iter()
            .map(|s| SyntheticSpec {
                cache_sensitivity: 0.0,
                client_sensitivity: 0.0,
                ..*s
            })
            .collect();
        let runner = GpuRunner::new(device());
        let n = clean.len();
        let mps = runner
            .run(&GpuSharing::mps_default(n), programs_for(&clean))
            .unwrap();
        let ts = runner
            .run(
                &GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
                programs_for(&clean),
            )
            .unwrap();
        prop_assert_eq!(mps.tasks_completed, ts.tasks_completed);
        // Power capping is the one mechanism that can still slow MPS and
        // not time-slicing (two resident clients raise the power peaks,
        // §V-C); outside capped runs the ordering is strict.
        if mps.telemetry.capped_time() == Seconds::ZERO {
            let max_gap_fraction = clean
                .iter()
                .map(|s| 1.0 - s.duty_cycle)
                .fold(0.0f64, f64::max);
            let tolerance = 1.02 + max_gap_fraction;
            prop_assert!(
                mps.makespan.value() <= ts.makespan.value() * tolerance + 1e-6,
                "MPS {} slower than time slicing {} beyond the {:.2}x alignment bound",
                mps.makespan, ts.makespan, tolerance
            );
        }

        // Sensitive variant: only conservation is guaranteed.
        let sensitive = runner
            .run(&GpuSharing::mps_default(specs.len()), programs_for(&specs))
            .unwrap();
        prop_assert_eq!(sensitive.tasks_completed, specs.len());
    }

    /// Restricting a solo client's partition never speeds it up, and the
    /// throughput curve in partition is monotone.
    #[test]
    fn partition_response_is_monotone(spec in spec_strategy()) {
        let runner = GpuRunner::new(device());
        let d = device();
        let mut prev = f64::INFINITY;
        for pct in [25u8, 50, 75, 100] {
            let program = spec.to_client_program(&d, 1, 0).unwrap();
            let sharing = GpuSharing::Mps {
                partitions: vec![mpshare::types::Fraction::new(pct as f64 / 100.0)],
            };
            let makespan = runner.run(&sharing, vec![program]).unwrap().makespan.value();
            prop_assert!(makespan <= prev + 1e-9,
                "partition {pct}% slower than smaller partition: {makespan} vs {prev}");
            prev = makespan;
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned regression seeds
//
// `tests/invariants.proptest-regressions` records two shrunk failure cases
// from past runs. The offline proptest stand-in cannot replay `cc` hashes
// (its generator differs from upstream proptest's), so the shrunk inputs are
// pinned here verbatim as deterministic unit tests and run through the same
// property bodies on every `cargo test`. Keep these in sync with that file.
// ---------------------------------------------------------------------------

/// First checked-in seed: a near-saturating client (sm 0.98, duty 0.97)
/// paired with a long low-duty one — zero bandwidth demand on both.
fn regression_pair_1() -> Vec<SyntheticSpec> {
    vec![
        SyntheticSpec {
            sm_demand: 0.9840841815260636,
            bw_demand: 0.0,
            duty_cycle: 0.9688780295688418,
            duration: 1.0,
            memory_mib: 64,
            kernels: 2,
            cache_sensitivity: 0.0,
            client_sensitivity: 0.0,
        },
        SyntheticSpec {
            sm_demand: 0.6770488392416243,
            bw_demand: 0.0,
            duty_cycle: 0.2,
            duration: 14.914675050930303,
            memory_mib: 64,
            kernels: 2,
            cache_sensitivity: 0.0,
            client_sensitivity: 0.0,
        },
    ]
}

/// Second checked-in seed: two high-SM clients with mismatched duty
/// cycles and durations — again zero bandwidth demand.
fn regression_pair_2() -> Vec<SyntheticSpec> {
    vec![
        SyntheticSpec {
            sm_demand: 0.8743879894872371,
            bw_demand: 0.0,
            duty_cycle: 0.2,
            duration: 1.0,
            memory_mib: 64,
            kernels: 2,
            cache_sensitivity: 0.0,
            client_sensitivity: 0.0,
        },
        SyntheticSpec {
            sm_demand: 0.8261098687104207,
            bw_demand: 0.0,
            duty_cycle: 0.42275238835137774,
            duration: 12.7290045871974,
            memory_mib: 64,
            kernels: 2,
            cache_sensitivity: 0.0,
            client_sensitivity: 0.0,
        },
    ]
}

/// The `makespan_bounds_hold` property body as a plain assertion set, so
/// the pinned seeds exercise it deterministically.
fn assert_makespan_bounds(specs: &[SyntheticSpec]) {
    let runner = GpuRunner::new(device());
    let programs = programs_for(specs);
    let solo_max = programs
        .iter()
        .map(|p| p.solo_wall_time().value())
        .fold(0.0f64, f64::max);
    let solo_sum: f64 = programs.iter().map(|p| p.solo_wall_time().value()).sum();
    let n = programs.len();
    let result = runner.run(&GpuSharing::mps_default(n), programs).unwrap();

    assert_eq!(result.tasks_completed, n);
    assert!(
        result.makespan.value() >= solo_max - 1e-6,
        "makespan {} below longest solo {}",
        result.makespan,
        solo_max
    );
    let max_slowdown: f64 = specs
        .iter()
        .map(|s| 1.0 + s.cache_sensitivity * 0.6 * (n as f64 - 1.0) + s.client_sensitivity * 6.0)
        .fold(1.0f64, f64::max);
    assert!(
        result.makespan.value() <= solo_sum * max_slowdown + 1e-6,
        "makespan {} above bound {}",
        result.makespan,
        solo_sum * max_slowdown
    );
}

/// The `timeslicing_never_beats_mps_without_interference` property body as
/// a plain assertion set for the pinned seeds (both are interference-free).
fn assert_mps_near_parity_with_timeslicing(specs: &[SyntheticSpec]) {
    let runner = GpuRunner::new(device());
    let n = specs.len();
    let mps = runner
        .run(&GpuSharing::mps_default(n), programs_for(specs))
        .unwrap();
    let ts = runner
        .run(
            &GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
            programs_for(specs),
        )
        .unwrap();
    assert_eq!(mps.tasks_completed, ts.tasks_completed);
    if mps.telemetry.capped_time() == Seconds::ZERO {
        let max_gap_fraction = specs
            .iter()
            .map(|s| 1.0 - s.duty_cycle)
            .fold(0.0f64, f64::max);
        let tolerance = 1.02 + max_gap_fraction;
        assert!(
            mps.makespan.value() <= ts.makespan.value() * tolerance + 1e-6,
            "MPS {} slower than time slicing {} beyond the {:.2}x alignment bound",
            mps.makespan,
            ts.makespan,
            tolerance
        );
    }
}

#[test]
fn regression_seed_1_holds_all_pair_invariants() {
    let specs = regression_pair_1();
    assert_makespan_bounds(&specs);
    assert_mps_near_parity_with_timeslicing(&specs);
}

#[test]
fn regression_seed_2_holds_all_pair_invariants() {
    let specs = regression_pair_2();
    assert_makespan_bounds(&specs);
    assert_mps_near_parity_with_timeslicing(&specs);
}
