//! User-defined (non-benchmark) workloads through the full pipeline:
//! profiling, interference prediction, advice, planning, and execution
//! all operate on [`TaskSource::Custom`] entries exactly like on the
//! paper's seven calibrated benchmarks.

use mpshare::core::{
    workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, SyntheticSpec, WorkflowSpec, WorkflowTask};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn custom(name: &str, sm: f64, duty: f64, duration: f64) -> WorkflowTask {
    WorkflowTask::custom(
        name,
        SyntheticSpec {
            sm_demand: sm,
            bw_demand: 0.05,
            duty_cycle: duty,
            duration,
            memory_mib: 2048,
            kernels: 16,
            cache_sensitivity: 0.2,
            client_sensitivity: 0.05,
        },
        3,
    )
}

#[test]
fn custom_workloads_flow_through_profiling_planning_and_execution() {
    let d = device();
    let queue = vec![
        WorkflowSpec::new(vec![custom("cfd-a", 0.25, 0.5, 30.0)]),
        WorkflowSpec::new(vec![custom("cfd-b", 0.30, 0.6, 25.0)]),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 15),
    ];
    let mut store = ProfileStore::new();
    let runs = store.profile_workflows(&d, &queue).unwrap();
    assert_eq!(runs, 3);

    let profiles: Vec<_> = queue
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();
    // The custom profile reflects the spec's declared character.
    assert!(
        (profiles[0].avg_sm_util.value() - 12.5).abs() < 2.0,
        "cfd-a avg SM {} (expected ~0.25 × 0.5 duty)",
        profiles[0].avg_sm_util
    );
    assert!(profiles[0].label.contains("cfd-a"));

    let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
    let plan = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
    plan.validate(&d, &profiles).unwrap();

    let executor = Executor::new(ExecutorConfig::new(d));
    let report = executor.evaluate_plan(&queue, &plan).unwrap();
    assert_eq!(report.shared.tasks, 3 + 3 + 15);
    assert!(
        report.metrics.throughput_gain > 1.3,
        "custom queue gain {}",
        report.metrics.throughput_gain
    );
}

#[test]
fn custom_profiles_are_cached_by_name() {
    let d = device();
    let queue = vec![
        WorkflowSpec::new(vec![custom("same-name", 0.25, 0.5, 10.0)]),
        WorkflowSpec::new(vec![custom("same-name", 0.25, 0.5, 10.0)]),
        WorkflowSpec::new(vec![custom("other", 0.4, 0.7, 10.0)]),
    ];
    let mut store = ProfileStore::new();
    let runs = store.profile_workflows(&d, &queue).unwrap();
    assert_eq!(runs, 2, "duplicate names deduplicate");
}

#[test]
fn queue_spec_with_mixed_sources_round_trips_through_json() {
    let queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::WarpX, ProblemSize::X2, 2),
        WorkflowSpec::new(vec![custom("mixed", 0.5, 0.8, 40.0)]),
    ];
    let json = serde_json::to_string(&queue).unwrap();
    let back: Vec<WorkflowSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, queue);
    // Benchmark entries stay in the flat legacy shape.
    assert!(json.contains("\"kind\":\"WarpX\""), "{json}");
    assert!(json.contains("\"name\":\"mixed\""));
}
