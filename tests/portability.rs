//! Device portability: the whole pipeline runs unmodified on a non-NVIDIA
//! -shaped device (the paper's "AMD architectures" future work).
//!
//! The MI250X-GCD preset has 64-wide wavefronts, different CU residency
//! limits, less memory, a lower power cap, and a smaller MPS-like client
//! limit. Absolute results differ from the A100X — that is the point —
//! but every invariant must hold and the scheduler must still find gains.

use mpshare::core::{
    workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::{occupancy, DeviceSpec, LaunchConfig};
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn amd() -> DeviceSpec {
    DeviceSpec::mi250x_gcd()
}

#[test]
fn occupancy_calculator_handles_wavefronts() {
    let d = amd();
    // 256-thread blocks are 4 wavefronts of 64 on AMD (8 warps on NVIDIA).
    let launch = LaunchConfig::dense(10_000, 256);
    let rep = occupancy::report(&d, &launch);
    assert_eq!(rep.warps_per_block, 4);
    assert!(rep.theoretical.value() > 0.0 && rep.theoretical.value() <= 100.0);
    assert!(rep.achieved.value() <= rep.theoretical.value() + 1e-9);
}

#[test]
fn full_pipeline_runs_on_the_amd_preset() {
    let d = amd();
    let queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 6),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 6),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X1, 4),
    ];
    let mut store = ProfileStore::new();
    store.profile_workflows(&d, &queue).unwrap();
    let profiles: Vec<_> = queue
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();
    // Profiles are sane on the different device.
    for p in &profiles {
        assert!(p.avg_sm_util.value() > 0.0 && p.avg_sm_util.value() <= 100.0);
        assert!(p.avg_power.watts() >= d.idle_power.watts());
        assert!(p.avg_power.watts() <= d.power_cap.watts() + 1e-9);
    }

    let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
    let plan = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
    plan.validate(&d, &profiles).unwrap();
    // The AMD preset allows at most 16 concurrent clients.
    assert!(plan.max_cardinality() <= d.max_mps_clients);

    let executor = Executor::new(ExecutorConfig::new(d));
    let report = executor.evaluate_plan(&queue, &plan).unwrap();
    assert_eq!(report.shared.tasks, 16);
    assert!(
        report.metrics.throughput_gain > 1.0,
        "no gain on AMD preset: {}",
        report.metrics.throughput_gain
    );
}

#[test]
fn a100_calibrated_programs_port_to_the_amd_preset() {
    // Programs built (and demand-calibrated) against the A100X carry a
    // reference device; executing them on the MI250X GCD rescales demands
    // instead of silently treating the smaller device as equally capable.
    use mpshare::mps::{GpuRunner, GpuSharing};
    use mpshare::types::IdAllocator;

    let a100 = DeviceSpec::a100x();
    let d = amd();
    let mut ids = IdAllocator::new();
    // Two bandwidth-hungry MHD instances, built for the A100X.
    let programs: Vec<_> = (0..2)
        .map(|_| {
            WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X1, 1)
                .to_client_program(&a100, &mut ids)
                .unwrap()
        })
        .collect();
    // Demands rescale: an A100X bandwidth fraction is a *larger* fraction
    // of the GCD's 1.6 TB/s bus.
    let kernel = &programs[0].tasks[0].kernels[0];
    assert!(kernel.bw_demand_on(&d) > kernel.bw_demand.value() * 1.15);

    let result = GpuRunner::new(d.clone())
        .run(&GpuSharing::mps_default(2), programs)
        .unwrap();
    assert_eq!(result.tasks_completed, 2);
    // The GCD's 280 W cap holds.
    for s in result.telemetry.segments() {
        assert!(s.power.watts() <= d.power_cap.watts() + 1e-9);
    }
    // Co-running two MHDs on the GCD is slower than on the bigger A100X.
    let mut ids = IdAllocator::new();
    let programs_a100: Vec<_> = (0..2)
        .map(|_| {
            WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X1, 1)
                .to_client_program(&a100, &mut ids)
                .unwrap()
        })
        .collect();
    let on_a100 = GpuRunner::new(a100)
        .run(&GpuSharing::mps_default(2), programs_a100)
        .unwrap();
    assert!(
        result.makespan.value() > on_a100.makespan.value() * 1.01,
        "co-run on GCD {} vs A100X {}",
        result.makespan,
        on_a100.makespan
    );
}
