//! Cross-crate fault-injection integration: seeded engine faults,
//! mechanism-dependent failure domains, and online-dispatcher recovery,
//! all through the facade crate.

use mpshare::core::{
    ArrivingWorkflow, ExecutorConfig, MetricPriority, OnlineFaultModel, OnlineScheduler, Planner,
    PlannerStrategy, RecoveryPolicy,
};
use mpshare::gpusim::{DeviceSpec, FaultPlan};
use mpshare::mps::{FailureDomain, GpuRunner, GpuSharing, TimeSliceConfig};
use mpshare::profiler::ProfileStore;
use mpshare::types::{IdAllocator, Seconds};
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn programs(device: &DeviceSpec) -> Vec<mpshare::gpusim::ClientProgram> {
    let mut ids = IdAllocator::new();
    [
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 20),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 20),
    ]
    .iter()
    .map(|w| w.to_client_program(device, &mut ids).unwrap())
    .collect()
}

#[test]
fn empty_fault_plan_is_bitwise_invisible() {
    let device = device();
    let runner = GpuRunner::new(device.clone());
    for sharing in [
        GpuSharing::Sequential,
        GpuSharing::mps_default(3),
        GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
    ] {
        let plain = runner.run(&sharing, programs(&device)).unwrap();
        let empty = runner
            .run_with_faults(&sharing, programs(&device), &FaultPlan::default())
            .unwrap();
        // Byte-identical serialization, not just equal headline numbers:
        // the fault layer must be invisible when disabled.
        assert_eq!(
            serde_json::to_string(&plain.clients).unwrap(),
            serde_json::to_string(&empty.clients).unwrap()
        );
        assert_eq!(plain.makespan, empty.makespan);
        assert_eq!(plain.total_energy, empty.total_energy);
        assert!(empty.failures.is_empty());
        assert_eq!(empty.tasks_failed, 0);
    }
}

#[test]
fn seeded_faults_are_deterministic_across_runs() {
    let device = device();
    let runner = GpuRunner::new(device.clone());
    let horizons = vec![Seconds::new(2.0); 3];
    let plan = FaultPlan::seeded(99, &horizons, 1.0).unwrap();
    let sharing = GpuSharing::mps_default(3);
    let a = runner
        .run_with_faults(&sharing, programs(&device), &plan)
        .unwrap();
    let b = runner
        .run_with_faults(&sharing, programs(&device), &plan)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&a.clients).unwrap(),
        serde_json::to_string(&b.clients).unwrap()
    );
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.makespan, b.makespan);
    assert!(!a.failures.is_empty());
}

#[test]
fn failure_domain_taxonomy_is_mechanism_aware() {
    let device = device();
    assert_eq!(
        GpuSharing::mps_default(3).failure_domain(),
        FailureDomain::SharedServer
    );
    assert_eq!(
        GpuSharing::Streams.failure_domain(),
        FailureDomain::SharedProcess
    );
    assert_eq!(
        GpuSharing::Sequential.failure_domain(),
        FailureDomain::PerClient
    );
    assert_eq!(
        GpuSharing::TimeSliced(TimeSliceConfig::driver_default()).failure_domain(),
        FailureDomain::PerClient
    );
    // Same single-client fault, opposite outcomes: the MPS server dies
    // with all residents, time-slicing loses one process.
    let runner = GpuRunner::new(device.clone());
    let mut plan = FaultPlan::new();
    plan.push_client_fault(Seconds::new(1.0), 0);
    let mps = runner
        .run_with_faults(&GpuSharing::mps_default(3), programs(&device), &plan)
        .unwrap();
    let ts = runner
        .run_with_faults(
            &GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
            programs(&device),
            &plan,
        )
        .unwrap();
    assert_eq!(mps.failures[0].victims, 3);
    assert_eq!(ts.failures[0].victims, 1);
    assert!(mps.tasks_completed < ts.tasks_completed);
}

#[test]
fn client_fault_events_are_terminal_in_the_log() {
    // The event log must tell a consistent abort story: every ClientFault
    // marks a client that really ended then and there (failed, finished
    // at the fault time), and no kernel activity for that client appears
    // after its abort.
    use mpshare::gpusim::EventKind;
    let device = device();
    let runner = GpuRunner::new(device.clone()).with_event_log(true);
    let mut plan = FaultPlan::new();
    plan.push_client_fault(Seconds::new(1.5), 0);
    let result = runner
        .run_with_faults(&GpuSharing::mps_default(3), programs(&device), &plan)
        .unwrap();
    let faults: Vec<(usize, Seconds)> = result
        .events
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ClientFault { .. }))
        .map(|e| (e.client, e.at))
        .collect();
    // The shared MPS server widens the single fault to every resident.
    assert_eq!(faults.len(), 3, "one ClientFault per aborted client");
    for &(client, at) in &faults {
        let outcome = &result.clients[client];
        assert!(outcome.failed, "client {client} has a terminal phase");
        assert_eq!(
            outcome.finished, at,
            "client {client} must finish exactly at its fault"
        );
        for event in result.events.events() {
            if event.client == client && event.at > at {
                assert!(
                    !matches!(
                        event.kind,
                        EventKind::KernelStart { .. } | EventKind::KernelEnd { .. }
                    ),
                    "client {client} has kernel activity after its abort at {at}"
                );
            }
        }
    }
    // And the fault record agrees with the log.
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].victims, 3);
}

#[test]
fn online_dispatcher_recovers_from_injected_faults() {
    let d = device();
    let scheduler = OnlineScheduler::new(
        ExecutorConfig::new(d.clone()),
        Planner::new(d.clone(), MetricPriority::balanced_product()),
        PlannerStrategy::Auto,
    );
    let arrivals: Vec<ArrivingWorkflow> = vec![
        ArrivingWorkflow {
            spec: WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 10),
            arrival: Seconds::ZERO,
        },
        ArrivingWorkflow {
            spec: WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 1),
            arrival: Seconds::ZERO,
        },
    ];
    let mut store = ProfileStore::new();
    let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
    store.profile_workflows(&d, &specs).unwrap();

    let baseline = scheduler.run(&arrivals, &store).unwrap();
    assert_eq!(baseline.retries, 0);

    let policy = RecoveryPolicy {
        max_attempts: 10,
        backoff_base: Seconds::new(2.0),
        exclusive_after: 2,
    };
    // Scan seeds for a run that faults at least once yet still finishes —
    // the recovery path end to end. Draws are pure, so this is stable.
    let recovered = (0..64u64)
        .map(|seed| {
            scheduler
                .run_with_recovery(
                    &arrivals,
                    &store,
                    Some(&OnlineFaultModel::new(seed, 0.4).unwrap()),
                    &policy,
                )
                .unwrap()
        })
        .find(|o| o.faults > 0 && o.failed_workflows.is_empty())
        .expect("some seed in 0..64 faults and recovers");
    assert_eq!(recovered.tasks, baseline.tasks);
    assert!(recovered.retries > 0);
    assert!(recovered.makespan > baseline.makespan);
    assert!(recovered.wasted_energy.joules() > 0.0);
}
