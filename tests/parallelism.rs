//! Parallel fan-out vs. serial execution: results must be bit-identical.
//!
//! The engine is deterministic and `mpshare::par` writes results back by
//! input index, so worker count must never change any output. These tests
//! run the same planning/evaluation pipelines with fan-out enabled and
//! with the `--serial` escape hatch forced, and require exact equality —
//! not approximate agreement — across every level: plans, evaluation
//! reports, annealed schedules, and whole harness experiments.
//!
//! `set_serial` is process-wide state; each test restores it before
//! returning, and the comparisons hold regardless of interleaving (both
//! modes produce identical values by construction).

use mpshare::core::workflow_profile;
use mpshare::core::{
    anneal, AnnealConfig, EvaluationReport, Executor, ExecutorConfig, MetricPriority, Planner,
    PlannerStrategy, SchedulePlan,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 10),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 1),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X2, 4),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 3),
    ]
}

/// Runs the full pipeline — profile, plan (every strategy), anneal, batch
/// evaluate — and returns everything it produced.
fn pipeline() -> (Vec<SchedulePlan>, SchedulePlan, Vec<EvaluationReport>) {
    let d = device();
    let workflows = queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(&d, &workflows).unwrap();
    let profiles: Vec<_> = workflows
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();

    let planner = Planner::new(d, MetricPriority::balanced_product());
    let plans: Vec<SchedulePlan> = [
        PlannerStrategy::Greedy,
        PlannerStrategy::BestFit,
        PlannerStrategy::Auto,
        PlannerStrategy::Exhaustive,
    ]
    .iter()
    .map(|&s| planner.plan(&profiles, s).unwrap())
    .collect();

    let annealed = anneal(
        &planner,
        &device(),
        &profiles,
        &plans[2],
        AnnealConfig {
            iterations: 400,
            ..AnnealConfig::default()
        },
    );

    let executor = Executor::new(ExecutorConfig::new(device()));
    let reports = executor.evaluate_plans(&workflows, &plans).unwrap();
    (plans, annealed, reports)
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    assert!(
        !mpshare::par::is_serial(),
        "MPSHARE_SERIAL must be unset for this test"
    );
    let (plans_par, annealed_par, reports_par) = pipeline();

    mpshare::par::set_serial(true);
    let (plans_ser, annealed_ser, reports_ser) = pipeline();
    mpshare::par::set_serial(false);

    assert_eq!(plans_par, plans_ser);
    assert_eq!(annealed_par, annealed_ser);
    assert_eq!(reports_par, reports_ser);
}

#[test]
fn parallel_experiment_is_bit_identical_to_serial() {
    let d = device();
    let parallel = mpshare::harness::experiments::fig4::run(&d).unwrap();

    mpshare::par::set_serial(true);
    let serial = mpshare::harness::experiments::fig4::run(&d).unwrap();
    mpshare::par::set_serial(false);

    assert_eq!(parallel, serial);
}

#[test]
fn batch_and_single_plan_evaluation_agree() {
    let d = device();
    let workflows = queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(&d, &workflows).unwrap();
    let profiles: Vec<_> = workflows
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();
    let planner = Planner::new(d, MetricPriority::Throughput);
    let plan = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();

    let executor = Executor::new(ExecutorConfig::new(device()));
    let single = executor.evaluate_plan(&workflows, &plan).unwrap();
    let batch = executor
        .evaluate_plans(&workflows, std::slice::from_ref(&plan))
        .unwrap();
    assert_eq!(batch, vec![single]);
}
