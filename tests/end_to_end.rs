//! End-to-end integration: offline profiling → workflow aggregation →
//! planning → execution → evaluation, across crates.

use mpshare::core::{
    workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec, WorkflowTask};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn profiles_for(
    device: &DeviceSpec,
    queue: &[WorkflowSpec],
) -> Vec<mpshare::core::WorkflowProfile> {
    let mut store = ProfileStore::new();
    store.profile_workflows(device, queue).unwrap();
    queue
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect()
}

/// A mixed queue exercising every planner path.
fn mixed_queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 25),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 20),
        WorkflowSpec::new(vec![
            WorkflowTask::new(BenchmarkKind::ChollaGravity, ProblemSize::X1, 10),
            WorkflowTask::new(BenchmarkKind::Kripke, ProblemSize::X2, 2),
        ]),
    ]
}

#[test]
fn every_priority_and_strategy_produces_a_valid_executable_plan() {
    let device = device();
    let queue = mixed_queue();
    let profiles = profiles_for(&device, &queue);
    let executor = Executor::new(ExecutorConfig::new(device.clone()));
    let total_tasks: usize = profiles.iter().map(|p| p.task_count).sum();

    for priority in [
        MetricPriority::Throughput,
        MetricPriority::Energy,
        MetricPriority::balanced_product(),
    ] {
        for strategy in [
            PlannerStrategy::Greedy,
            PlannerStrategy::BestFit,
            PlannerStrategy::Auto,
            PlannerStrategy::Exhaustive,
        ] {
            let planner = Planner::new(device.clone(), priority);
            let plan = planner.plan(&profiles, strategy).unwrap();
            plan.validate(&device, &profiles).unwrap();
            let report = executor.evaluate_plan(&queue, &plan).unwrap();
            assert_eq!(
                report.shared.tasks, total_tasks,
                "{priority:?}/{strategy:?} lost tasks"
            );
            assert_eq!(report.sequential.tasks, total_tasks);
            assert!(
                report.metrics.throughput_gain > 0.5,
                "{priority:?}/{strategy:?}: gain {}",
                report.metrics.throughput_gain
            );
        }
    }
}

#[test]
fn throughput_cap_two_vs_energy_cap_wide() {
    let device = device();
    // Six tiny workflows that would all fit in one group.
    let queue: Vec<WorkflowSpec> = (0..6)
        .map(|_| WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 5))
        .collect();
    let profiles = profiles_for(&device, &queue);

    let tp_plan = Planner::new(device.clone(), MetricPriority::Throughput)
        .plan(&profiles, PlannerStrategy::Greedy)
        .unwrap();
    assert!(tp_plan.max_cardinality() <= 2);

    let e_plan = Planner::new(device.clone(), MetricPriority::Energy)
        .plan(&profiles, PlannerStrategy::Greedy)
        .unwrap();
    assert!(
        e_plan.max_cardinality() >= 4,
        "energy plan should pack wide"
    );
}

#[test]
fn planned_schedule_beats_sequential_and_interference_blind_packing() {
    let device = device();
    let queue = mixed_queue();
    let profiles = profiles_for(&device, &queue);
    let executor = Executor::new(ExecutorConfig::new(device.clone()));

    let plan = Planner::new(device.clone(), MetricPriority::balanced_product())
        .plan(&profiles, PlannerStrategy::Auto)
        .unwrap();
    let planned = executor.evaluate_plan(&queue, &plan).unwrap();
    assert!(
        planned.metrics.throughput_gain > 1.1,
        "planned gain {}",
        planned.metrics.throughput_gain
    );
    assert!(planned.metrics.energy_efficiency_gain > 1.0);

    // Everything in one naive MPS group: interference-blind.
    let naive = executor.run_mps_naive(&queue).unwrap();
    let naive_report = executor.report(naive, planned.sequential);
    let planned_score = planned.metrics.throughput_gain * planned.metrics.energy_efficiency_gain;
    let naive_score =
        naive_report.metrics.throughput_gain * naive_report.metrics.energy_efficiency_gain;
    assert!(
        planned_score >= naive_score - 0.05,
        "planned {planned_score:.3} vs naive {naive_score:.3}"
    );
}

#[test]
fn scheduling_is_deterministic() {
    let device = device();
    let queue = mixed_queue();
    let profiles = profiles_for(&device, &queue);
    let planner = Planner::new(device.clone(), MetricPriority::Throughput);
    let plan_a = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
    let plan_b = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
    assert_eq!(plan_a, plan_b);

    let executor = Executor::new(ExecutorConfig::new(device));
    let a = executor.run_plan(&queue, &plan_a).unwrap();
    let b = executor.run_plan(&queue, &plan_b).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.energy, b.energy);
}

#[test]
fn profile_store_reuse_across_queues() {
    let device = device();
    let mut store = ProfileStore::new();
    let q1 = vec![WorkflowSpec::uniform(
        BenchmarkKind::Kripke,
        ProblemSize::X1,
        2,
    )];
    let q2 = vec![
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 9),
        WorkflowSpec::uniform(BenchmarkKind::WarpX, ProblemSize::X1, 1),
    ];
    assert_eq!(store.profile_workflows(&device, &q1).unwrap(), 1);
    // Kripke 1x is already profiled; only WarpX should run.
    assert_eq!(store.profile_workflows(&device, &q2).unwrap(), 1);
    assert_eq!(store.len(), 2);
}
