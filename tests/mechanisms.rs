//! Cross-mechanism integration: the §II-B taxonomy holds end-to-end, on
//! generated queues as well as hand-picked pairs.

use mpshare::gpusim::DeviceSpec;
use mpshare::mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};
use mpshare::types::IdAllocator;
use mpshare::workloads::{BenchmarkKind, ProblemSize, QueueGenerator, WorkflowSpec};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn programs(device: &DeviceSpec, specs: &[WorkflowSpec]) -> Vec<mpshare::gpusim::ClientProgram> {
    let mut ids = IdAllocator::new();
    specs
        .iter()
        .map(|w| w.to_client_program(device, &mut ids).unwrap())
        .collect()
}

/// Streams (fused process) never lose to MPS on the same inputs: MPS adds
/// client pressure and power peaks on top of the same resource contention.
#[test]
fn streams_dominate_mps_on_generated_pairs() {
    let d = device();
    let runner = GpuRunner::new(d.clone());
    let mut generator = QueueGenerator::new(42);
    generator.weights[1] = 0.0; // Epsilon: too long for a unit test
    for trial in 0..5 {
        let specs = generator.sample_queue(2);
        let mps = runner
            .run(&GpuSharing::mps_default(2), programs(&d, &specs))
            .unwrap();
        let streams = runner
            .run(&GpuSharing::Streams, programs(&d, &specs))
            .unwrap();
        assert_eq!(mps.tasks_completed, streams.tasks_completed);
        assert!(
            streams.makespan.value() <= mps.makespan.value() + 1e-6,
            "trial {trial}: streams {} > mps {}",
            streams.makespan,
            mps.makespan
        );
    }
}

/// Every mechanism conserves tasks and energy bookkeeping on a mixed
/// 4-workflow queue.
#[test]
fn all_mechanisms_conserve_tasks_and_integrate_energy() {
    let d = device();
    let runner = GpuRunner::new(d.clone());
    // Exclude WarpX (its 60 GiB footprint cannot fit a MIG 4g slice) and
    // Epsilon (an hour-long task makes the time-sliced run slow in tests).
    let mut generator = QueueGenerator::new(7);
    generator.weights[1] = 0.0; // Epsilon
    generator.weights[6] = 0.0; // WarpX
    let specs = generator.sample_queue(4);
    let expected_tasks: usize = specs.iter().map(|w| w.task_count()).sum();

    let mechanisms: Vec<GpuSharing> = vec![
        GpuSharing::Sequential,
        GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
        GpuSharing::Streams,
        GpuSharing::mps_default(4),
        GpuSharing::Mig {
            layout: MigLayout::new(&d, &[MigProfile::FourSlice, MigProfile::ThreeSlice]).unwrap(),
            assignment: vec![0, 1, 0, 1],
        },
    ];
    for sharing in mechanisms {
        let result = runner.run(&sharing, programs(&d, &specs)).unwrap();
        assert_eq!(result.tasks_completed, expected_tasks, "{sharing:?}");
        let integral: f64 = result
            .telemetry
            .segments()
            .iter()
            .map(|s| s.energy().joules())
            .sum();
        assert!(
            (integral - result.total_energy.joules()).abs() < 1e-3,
            "{sharing:?}: energy bookkeeping"
        );
        // The board never exceeds its cap under any mechanism.
        for s in result.telemetry.segments() {
            assert!(s.power.watts() <= 300.0 + 1e-9);
        }
    }
}

/// MIG isolation: a light workload keeps its solo pace on its own slice,
/// no matter how hot its neighbour is — the guarantee MPS cannot give.
#[test]
fn mig_isolates_a_victim_from_a_hot_neighbour() {
    let d = device();
    let runner = GpuRunner::new(d.clone());
    let victim = WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 10);
    let aggressor = WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1);

    // Victim alone on a 3-slice instance.
    let layout = MigLayout::new(&d, &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
    let solo_on_slice = runner
        .run(
            &GpuSharing::Mig {
                layout: layout.clone(),
                assignment: vec![0],
            },
            programs(&d, std::slice::from_ref(&victim)),
        )
        .unwrap();
    // Victim + aggressor on separate slices.
    let shared = runner
        .run(
            &GpuSharing::Mig {
                layout,
                assignment: vec![0, 1],
            },
            programs(&d, &[victim.clone(), aggressor.clone()]),
        )
        .unwrap();
    let victim_finish_solo = solo_on_slice.clients[0].finished;
    let victim_finish_shared = shared.clients[0].finished;
    assert!(
        (victim_finish_shared.value() - victim_finish_solo.value()).abs() < 1e-6,
        "MIG victim perturbed: {} vs {}",
        victim_finish_shared,
        victim_finish_solo
    );

    // Under MPS the same pairing perturbs the victim.
    let mps = runner
        .run(
            &GpuSharing::mps_default(2),
            programs(&d, &[victim.clone(), aggressor]),
        )
        .unwrap();
    let solo_full = runner
        .run(&GpuSharing::mps_default(1), programs(&d, &[victim]))
        .unwrap();
    assert!(mps.clients[0].finished.value() > solo_full.clients[0].finished.value() + 1e-6);
}

/// Time-slicing's context-switch overhead is visible: shrinking the
/// quantum (more switches) never speeds the same workload up.
#[test]
fn smaller_quanta_cost_more_switching() {
    let d = device();
    let runner = GpuRunner::new(d.clone());
    let specs = vec![
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 5),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 5),
    ];
    let run_with = |quantum_ms: f64| {
        let cfg = TimeSliceConfig::new(
            mpshare::types::Seconds::from_millis(quantum_ms),
            mpshare::types::Seconds::from_millis(0.1),
        )
        .unwrap();
        runner
            .run(&GpuSharing::TimeSliced(cfg), programs(&d, &specs))
            .unwrap()
            .makespan
            .value()
    };
    let coarse = run_with(50.0);
    let fine = run_with(1.0);
    assert!(
        fine >= coarse - 1e-6,
        "fine quanta should not be faster: fine {fine} coarse {coarse}"
    );
}
