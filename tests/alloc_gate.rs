//! Allocation gate: proves the perf contracts that the benches can only
//! suggest.
//!
//! * **Engine steady state is zero-alloc.** With a recycled
//!   [`EngineScratch`], every `step()` of a comparable run — contention
//!   re-solves, kernel boundaries, telemetry segments, timer churn —
//!   touches no heap. The only allowed allocations are the per-client
//!   task-completion records (whose buffers were moved into the previous
//!   run's result), so at most one allocating step per client. The same
//!   bound holds with the engine driven through the component/tick-heap
//!   core (`SimCore`) instead of the direct loop.
//! * **Warm planning allocates no more than cold planning.** A warm
//!   [`Planner::plan_warm`] call — memo translation included — must not
//!   out-allocate the cold `plan` call it replaces on the same queue.
//!
//! The assertions only fire in release builds: debug builds run the
//! engine's self-checking cross-validation paths, which allocate by
//! design. `make check` runs this gate with `--release`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use mpshare::core::{MetricPriority, PlanWarmState, Planner, PlannerStrategy, WorkflowProfile};
use mpshare::gpusim::{
    ClientProgram, DeviceSpec, Engine, EngineConfig, EngineScratch, SharingMode,
};
use mpshare::types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};
use mpshare::workloads::SyntheticSpec;

/// Passthrough to the system allocator that counts allocations (and
/// growth reallocations) while armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The two gates share the one global counter; the test harness runs
/// tests on separate threads, so measured regions must not overlap.
static GATE_LOCK: Mutex<()> = Mutex::new(());

fn measured<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst) - before)
}

const CLIENTS: usize = 8;

fn gate_config() -> EngineConfig {
    EngineConfig::new(
        DeviceSpec::a100x(),
        SharingMode::Mps {
            partitions: vec![Fraction::ONE; CLIENTS],
        },
    )
}

/// One single-task client per slot, many kernel boundaries each, duty
/// cycle < 1 so gap timers churn the resident set: every steady-state
/// engine path fires, but task completions only at each client's end.
fn gate_programs() -> Vec<ClientProgram> {
    let d = DeviceSpec::a100x();
    (0..CLIENTS)
        .map(|i| {
            SyntheticSpec {
                sm_demand: 0.08 + 0.07 * i as f64,
                bw_demand: 0.15,
                duty_cycle: 0.85,
                duration: 4.0,
                memory_mib: 1024,
                kernels: 64,
                cache_sensitivity: 0.3,
                client_sensitivity: 0.05,
            }
            .to_client_program(&d, 1, i as u64 * 100)
            .unwrap()
        })
        .collect()
}

#[test]
fn steady_state_advance_is_alloc_free() {
    let _serial = GATE_LOCK.lock().unwrap();

    // Warm-up run grows every scratch buffer to this roster's size and
    // records the telemetry segment count for the recycled run's hint.
    let warm_up = Engine::new_reusing(gate_config(), gate_programs(), EngineScratch::new())
        .unwrap()
        .run_reusing()
        .unwrap();
    let (reference, _, scratch) = warm_up;

    let mut engine = Engine::new_reusing(gate_config(), gate_programs(), scratch).unwrap();
    let mut per_step: Vec<u64> = Vec::with_capacity(1 << 16);
    loop {
        let (more, allocs) = measured(|| engine.step().unwrap());
        assert!(per_step.len() < per_step.capacity(), "step budget exceeded");
        per_step.push(allocs);
        if !more {
            break;
        }
    }
    let (result, _stats, _scratch) = engine.run_reusing().unwrap();
    assert_eq!(
        serde_json::to_string(&result).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "recycled run must be bit-identical to the warm-up run"
    );

    let total: u64 = per_step.iter().sum();
    let dirty_steps = per_step.iter().filter(|&&a| a > 0).count();
    mpshare::obs::counter_add(mpshare::obs::names::ENGINE_STEADY_STATE_ALLOCS, total);

    // Debug builds cross-validate the incremental solver against full
    // re-solves, which allocates by design; the gate proper is release.
    if cfg!(debug_assertions) {
        return;
    }
    assert!(
        dirty_steps <= CLIENTS,
        "expected ≤ {CLIENTS} allocating steps (one completion push per \
         client), found {dirty_steps} of {} (allocs per step: {:?})",
        per_step.len(),
        per_step.iter().filter(|&&a| a > 0).collect::<Vec<_>>()
    );
    assert!(
        total <= 2 * CLIENTS as u64,
        "steady-state run allocated {total} times (> {})",
        2 * CLIENTS
    );
}

/// The steady-state contract holds when the engine is driven through the
/// component/tick-heap core instead of the direct `step()` loop: a
/// single-component `SimCore` pops and re-pushes one heap entry per tick
/// (capacity 1, no stale accumulation), so `SimCore::step` adds zero
/// allocations on top of the engine's own.
#[test]
fn component_core_steady_state_is_alloc_free() {
    use mpshare::gpusim::{Component, SimCore};

    let _serial = GATE_LOCK.lock().unwrap();

    let warm_up = Engine::new_reusing(gate_config(), gate_programs(), EngineScratch::new())
        .unwrap()
        .run_reusing()
        .unwrap();
    let (reference, _, scratch) = warm_up;

    let mut engine = Engine::new_reusing(gate_config(), gate_programs(), scratch).unwrap();
    let mut core = SimCore::new(1);
    let mut per_step: Vec<u64> = Vec::with_capacity(1 << 16);
    {
        let mut comps: [&mut dyn Component; 1] = [&mut engine];
        // The initial arm pass plans the first horizon (unmeasured, like
        // the constructors above); every subsequent tick is measured.
        core.arm_all(&mut comps).unwrap();
        loop {
            let (more, allocs) = measured(|| core.step(&mut comps).unwrap());
            assert!(per_step.len() < per_step.capacity(), "step budget exceeded");
            per_step.push(allocs);
            if !more {
                break;
            }
        }
    }
    assert_eq!(core.stats().max_heap_depth, 1);
    assert_eq!(core.stats().ticks, per_step.len() as u64 - 1);

    let (result, stats, _scratch) = engine.run_reusing().unwrap();
    assert_eq!(
        stats.ticks,
        core.stats().ticks,
        "every engine event must have been dispatched as a component tick"
    );
    assert_eq!(
        serde_json::to_string(&result).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "component-core run must be bit-identical to the warm-up run"
    );

    if cfg!(debug_assertions) {
        return;
    }
    let total: u64 = per_step.iter().sum();
    let dirty_steps = per_step.iter().filter(|&&a| a > 0).count();
    assert!(
        dirty_steps <= CLIENTS,
        "expected ≤ {CLIENTS} allocating steps (one completion push per \
         client), found {dirty_steps} of {} (allocs per step: {:?})",
        per_step.len(),
        per_step.iter().filter(|&&a| a > 0).collect::<Vec<_>>()
    );
    assert!(
        total <= 2 * CLIENTS as u64,
        "component-core steady-state run allocated {total} times (> {})",
        2 * CLIENTS
    );
}

fn planner_profiles(generation: usize) -> Vec<WorkflowProfile> {
    (0..10)
        .map(|i| {
            let sm = 12.0 + 8.0 * ((i + 3 * generation) % 10) as f64;
            let power = 75.0 + 1.75 * sm + 10.0;
            WorkflowProfile {
                label: format!("wf-{generation}-{i}"),
                task_count: 4,
                avg_sm_util: Percent::new(sm),
                avg_bw_util: Percent::new(10.0),
                max_memory: MemBytes::from_gib(6 + (i % 4) as u64),
                duration: Seconds::new(40.0 + 5.0 * i as f64),
                energy: Energy::from_joules(power * (40.0 + 5.0 * i as f64)),
                avg_power: Power::from_watts(power),
                busy_fraction: 0.8,
                saturation_partition: Fraction::new(0.6),
            }
        })
        .collect()
}

#[test]
fn warm_planning_allocates_no_more_than_cold() {
    let _serial = GATE_LOCK.lock().unwrap();

    let planner = Planner::new(DeviceSpec::a100x(), MetricPriority::balanced_product());
    let mut state = PlanWarmState::new();

    // Round 0 (unmeasured): fills the warm state and spins up the
    // parallel worker pool so neither measured call pays first-use costs.
    let mut queue: Vec<(u64, WorkflowProfile)> = planner_profiles(0)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
    let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();
    planner
        .plan_warm(&profiles, &ids, PlannerStrategy::Exhaustive, &mut state)
        .unwrap();

    // One leave (front dispatched) + one join (fresh arrival): the
    // canonical online churn step.
    queue.remove(0);
    queue.push((100, planner_profiles(1).pop().unwrap()));
    let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
    let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();

    let (cold_plan, cold_allocs) = measured(|| {
        planner
            .plan(&profiles, PlannerStrategy::Exhaustive)
            .unwrap()
    });
    let (warm_plan, warm_allocs) = measured(|| {
        planner
            .plan_warm(&profiles, &ids, PlannerStrategy::Exhaustive, &mut state)
            .unwrap()
    });

    assert_eq!(state.warm_hits(), 1, "churn step must take the warm path");
    assert_eq!(
        serde_json::to_string(
            &warm_plan
                .groups
                .iter()
                .map(|g| &g.workflow_indices)
                .collect::<Vec<_>>()
        )
        .unwrap(),
        serde_json::to_string(
            &cold_plan
                .groups
                .iter()
                .map(|g| &g.workflow_indices)
                .collect::<Vec<_>>()
        )
        .unwrap(),
        "warm and cold plans must group identically"
    );

    if cfg!(debug_assertions) {
        return;
    }
    assert!(
        warm_allocs <= cold_allocs,
        "warm planning allocated {warm_allocs} times vs cold {cold_allocs}"
    );
}
