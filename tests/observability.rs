//! Cross-crate observability integration through the facade crate: the
//! recorder must be invisible to simulation results, and — when enabled —
//! must cover every control-plane track and the required metric series.

use mpshare::core::{
    ArrivingWorkflow, ExecutorConfig, MetricPriority, OnlineScheduler, Planner, PlannerStrategy,
};
use mpshare::gpusim::{DeviceSpec, Engine, EngineConfig, SharingMode};
use mpshare::obs;
use mpshare::profiler::ProfileStore;
use mpshare::types::{IdAllocator, Seconds};
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 20),
    ]
}

fn evaluate() -> String {
    let d = device();
    let specs = queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(&d, &specs).unwrap();
    let profiles: Vec<_> = specs
        .iter()
        .map(|w| mpshare::core::workflow_profile(&store, w).unwrap())
        .collect();
    let plan = Planner::new(d.clone(), MetricPriority::Throughput)
        .plan(&profiles, PlannerStrategy::Greedy)
        .unwrap();
    let executor = mpshare::core::Executor::new(ExecutorConfig::new(d));
    let report = executor.evaluate_plan(&specs, &plan).unwrap();
    serde_json::to_string(&report).unwrap()
}

/// The whole enabled-recorder story lives in one test: the global
/// recorder is process-wide, so splitting this into several #[test]
/// functions would race on the enabled flag.
#[test]
fn recording_is_invisible_to_results_and_covers_all_tracks() {
    // 1. Bit-identity: the exact same pipeline, recorded vs. not,
    //    serializes to the same bytes. Recording must observe, never
    //    perturb.
    let silent = evaluate();
    obs::set_enabled(true);
    obs::recorder().drain();
    let recorded = evaluate();
    assert_eq!(
        silent, recorded,
        "enabling the recorder changed simulation results"
    );

    // 2. Exercise the online scheduler so the Scheduler track and
    //    goodput gauge fill in too.
    let run_online = || {
        let d = device();
        let arrivals: Vec<ArrivingWorkflow> = queue()
            .into_iter()
            .map(|spec| ArrivingWorkflow {
                spec,
                arrival: Seconds::ZERO,
            })
            .collect();
        let mut store = ProfileStore::new();
        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        store.profile_workflows(&d, &specs).unwrap();
        let scheduler = OnlineScheduler::new(
            ExecutorConfig::new(d.clone()),
            Planner::new(d, MetricPriority::balanced_product()),
            PlannerStrategy::Auto,
        );
        scheduler.run(&arrivals, &store).unwrap()
    };
    let outcome = run_online();
    assert!(outcome.goodput > 0.0);

    // 3. Every control-plane track recorded something.
    let records = obs::recorder().drain();
    obs::set_enabled(false);
    for track in [
        obs::Track::Planner,
        obs::Track::Scheduler,
        obs::Track::Daemon,
        obs::Track::Executor,
    ] {
        assert!(
            records.iter().any(|r| r.track == track),
            "no records on the {track:?} track"
        );
    }
    // Plan-search spans carry decision audits.
    assert!(records
        .iter()
        .any(|r| r.name == "plan.candidate" && r.payload.get("accepted").is_some()));
    // The merged trace renders the control tracks under their pids.
    let trace = obs::merged_chrome_trace(None, &records);
    let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    for pid in [3u64, 4, 5, 6] {
        assert!(
            events
                .iter()
                .any(|e| e.get("pid").and_then(|p| p.as_u64()) == Some(pid)),
            "merged trace is missing pid {pid}"
        );
    }

    // 4. The metric families the paper's evaluation needs are populated.
    let metrics = obs::metrics();
    for counter in [
        obs::names::PROFILE_CACHE_HITS,
        obs::names::ENGINE_RUNS,
        obs::names::ENGINE_RATE_SOLVES,
        obs::names::PLAN_CALLS,
        obs::names::PLAN_CANDIDATES,
        obs::names::SCHED_DISPATCHES,
        obs::names::TASKS_COMPLETED,
    ] {
        assert!(
            metrics.counter_get(counter) > 0,
            "counter {counter} never incremented"
        );
    }
    assert!(metrics.gauge_get(obs::names::GOODPUT) > 0.0);
    assert!(metrics.gauge_get(obs::names::ENGINE_SIM_SECONDS) > 0.0);
    // Fault counters exist (zero here: nothing faulted) so dashboards
    // never see a missing series.
    let prom = metrics.to_prometheus();
    assert!(prom.contains(obs::names::FAULTS_INJECTED));
    assert!(prom.contains(obs::names::CLIENTS_FAILED));
    assert!(prom.contains(obs::names::GROUP_MAKESPAN_SECONDS));

    // 5. Timelines: the export is a pure function of the observation
    //    multiset, so the same pipeline run serially and with the
    //    worker pool serializes to byte-identical JSON.
    let timeline_json = |serial: bool| {
        mpshare::par::set_serial(serial);
        obs::set_enabled(true);
        obs::recorder().reset();
        let _ = evaluate();
        let _ = run_online();
        let json = serde_json::to_string(&obs::timelines().to_json()).unwrap();
        obs::set_enabled(false);
        mpshare::par::set_serial(false);
        json
    };
    let parallel = timeline_json(false);
    let serial = timeline_json(true);
    assert_eq!(
        serial, parallel,
        "timeline export depends on the worker schedule"
    );

    // The tracks the report and validate-obs consume are present, with
    // exact quantiles in percentile order.
    let parsed: serde_json::Value = serde_json::from_str(&serial).unwrap();
    let series = parsed.get("series").unwrap();
    for name in [
        obs::series::DEVICE_SM_UTIL,
        obs::series::DEVICE_BW_UTIL,
        obs::series::DEVICE_POWER_W,
        obs::series::SCHED_QUEUE_DEPTH,
    ] {
        assert!(series.get(name).is_some(), "missing timeline series {name}");
    }
    let quantiles = parsed.get("quantiles").unwrap();
    for name in [
        obs::series::SCHED_QUEUE_WAIT,
        obs::series::SCHED_TURNAROUND,
        obs::series::CLIENT_TURNAROUND,
    ] {
        let q = quantiles
            .get(name)
            .unwrap_or_else(|| panic!("missing quantile track {name}"));
        let p = |key: &str| q.get(key).and_then(|v| v.as_f64()).unwrap();
        assert!(
            p("p50") <= p("p90") && p("p90") <= p("p99") && p("p99") <= p("p999"),
            "quantile ordering violated for {name}"
        );
    }
}

#[test]
fn attribution_components_close_the_slowdown_identity() {
    // attribute() needs no recorder: it is a pure function of the run.
    let d = device();
    let mut ids = IdAllocator::new();
    let programs: Vec<_> = queue()
        .iter()
        .map(|w| w.to_client_program(&d, &mut ids).unwrap())
        .collect();
    let config = EngineConfig::new(d, SharingMode::mps_uniform(2)).with_event_log(true);
    let result = Engine::new(config.clone(), programs.clone())
        .unwrap()
        .run()
        .unwrap();
    let report = obs::attribute(&config, &programs, &result).unwrap();
    assert_eq!(report.clients.len(), 2);
    for c in &report.clients {
        assert!(c.exact);
        let total = c.sm_partition + c.bandwidth_contention + c.power_throttle + c.memory_wait;
        assert!(
            (c.excess - total).abs() < 1e-9,
            "client {}: residual {}",
            c.client,
            c.excess - total
        );
    }
}
