//! Scale smoke tests: the engine and scheduler at the limits the paper's
//! hardware imposes (48 MPS clients, hundreds of tasks), within a time
//! budget that keeps CI honest.

use mpshare::core::{
    workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::mps::{GpuRunner, GpuSharing};
use mpshare::profiler::ProfileStore;
use mpshare::types::IdAllocator;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
use std::time::Instant;

#[test]
fn forty_eight_clients_with_hundreds_of_tasks() {
    let device = DeviceSpec::a100x();
    // 48 AthenaPK 1x clients × 10 tasks = 480 tasks, ~3840 kernels.
    let specs: Vec<WorkflowSpec> = (0..48)
        .map(|_| WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 10))
        .collect();
    let mut ids = IdAllocator::new();
    let programs: Vec<_> = specs
        .iter()
        .map(|w| w.to_client_program(&device, &mut ids).unwrap())
        .collect();

    let started = Instant::now();
    let result = GpuRunner::new(device)
        .run(&GpuSharing::mps_default(48), programs)
        .unwrap();
    let elapsed = started.elapsed();

    assert_eq!(result.tasks_completed, 480);
    // Deep oversubscription must still finish *far* faster than 48 solo
    // runs back to back.
    let seq_estimate = 48.0 * 10.0 * 2.6;
    assert!(result.makespan.value() < seq_estimate);
    // And the simulation itself stays fast (piecewise-exact, not stepped).
    assert!(
        elapsed.as_secs() < 30,
        "48-client simulation took {elapsed:?}"
    );
}

#[test]
fn planner_scales_to_a_large_queue() {
    let device = DeviceSpec::a100x();
    // 64 mixed workflows; greedy + best-fit are O(n²)·estimator and must
    // stay interactive.
    let kinds = [
        BenchmarkKind::AthenaPk,
        BenchmarkKind::Kripke,
        BenchmarkKind::ChollaGravity,
        BenchmarkKind::Lammps,
    ];
    let specs: Vec<WorkflowSpec> = (0..64)
        .map(|i| WorkflowSpec::uniform(kinds[i % kinds.len()], ProblemSize::X1, 5))
        .collect();
    let mut store = ProfileStore::new();
    store.profile_workflows(&device, &specs).unwrap();
    let profiles: Vec<_> = specs
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();

    let started = Instant::now();
    let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
    let plan = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
    assert!(
        started.elapsed().as_millis() < 2_000,
        "planning 64 workflows took {:?}",
        started.elapsed()
    );
    plan.validate(&device, &profiles).unwrap();
    assert_eq!(plan.workflow_count(), 64);
    // No group may exceed the MPS client limit.
    assert!(plan.max_cardinality() <= 48);

    // The plan executes end to end.
    let executor = Executor::new(ExecutorConfig::new(device));
    let outcome = executor.run_plan(&specs, &plan).unwrap();
    assert_eq!(outcome.tasks, 64 * 5);
}

#[test]
fn long_timesliced_run_stays_bounded() {
    // Time slicing generates a quantum event every 2 ms of overlapped GPU
    // time; a multi-minute simulated run must complete without tripping
    // the engine's event guard.
    let device = DeviceSpec::a100x();
    let specs: Vec<WorkflowSpec> = (0..4)
        .map(|_| WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 20))
        .collect();
    let mut ids = IdAllocator::new();
    let programs: Vec<_> = specs
        .iter()
        .map(|w| w.to_client_program(&device, &mut ids).unwrap())
        .collect();
    let result = GpuRunner::new(device)
        .run(
            &GpuSharing::TimeSliced(mpshare::mps::TimeSliceConfig::driver_default()),
            programs,
        )
        .unwrap();
    assert_eq!(result.tasks_completed, 80);
    // GPU work serializes: makespan is at least the summed busy time.
    assert!(result.makespan.value() >= 4.0 * 20.0 * 3.1 * 0.55);
}
