//! Bitwise-equivalence properties for the engine and planner fast paths.
//!
//! The hot-path work in this repo — the incremental contention re-solve on
//! single join/leave, the branch-and-bound exhaustive plan search, and the
//! component/tick-heap engine core — is pure optimization or pure
//! restructuring: each must return *bit-identical* results to the
//! from-scratch path it replaces. These properties drive randomized
//! workloads (including fault-abort churn) through both paths and compare
//! the full outputs.

use mpshare::core::{MetricPriority, Planner, PlannerStrategy, WorkflowProfile};
use mpshare::gpusim::{
    ClientProgram, DeviceSpec, Engine, EngineConfig, EngineStats, FaultPlan, RunResult, SharingMode,
};
use mpshare::types::{Energy, MemBytes, Percent, Power, Seconds};
use mpshare::workloads::SyntheticSpec;
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

/// Strategy generating one synthetic workload spec (same envelope as
/// tests/invariants.rs, biased toward host gaps so clients join and leave
/// the resident set many times).
fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        0.02f64..=1.0, // sm_demand
        0.0f64..=0.6,  // bw_demand
        0.2f64..=0.9,  // duty cycle (< 1: every client has gaps)
        1.0f64..=10.0, // duration
        64u64..=4096,  // memory MiB
        2usize..=10,   // kernels
        0.0f64..=1.0,  // cache sensitivity
        0.0f64..=0.15, // client sensitivity
    )
        .prop_map(
            |(sm, bw, duty, duration, memory_mib, kernels, cache, client)| SyntheticSpec {
                sm_demand: sm,
                bw_demand: bw,
                duty_cycle: duty,
                duration,
                memory_mib,
                kernels,
                cache_sensitivity: cache,
                client_sensitivity: client,
            },
        )
}

fn programs_for(specs: &[SyntheticSpec]) -> Vec<ClientProgram> {
    let d = device();
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| s.to_client_program(&d, 1, i as u64 * 100).unwrap())
        .collect()
}

/// Runs the programs under the given sharing mode twice — incremental
/// re-solve allowed vs. forced full re-solve — and returns both outcomes.
fn run_both(
    mode: SharingMode,
    specs: &[SyntheticSpec],
    faults: &FaultPlan,
) -> ((RunResult, EngineStats), (RunResult, EngineStats)) {
    let run = |force: bool| {
        let config = EngineConfig::new(device(), mode.clone())
            .with_fault_plan(faults.clone())
            .with_forced_full_resolve(force);
        Engine::new(config, programs_for(specs))
            .unwrap()
            .run_with_stats()
            .unwrap()
    };
    (run(false), run(true))
}

/// Runs the programs under `mode` twice — the component/tick-heap core
/// (default) vs the historical direct `while step()` loop — and returns
/// both outcomes.
fn run_component_and_legacy(
    mode: SharingMode,
    specs: &[SyntheticSpec],
    faults: &FaultPlan,
) -> ((RunResult, EngineStats), (RunResult, EngineStats)) {
    let run = |legacy: bool| {
        let config = EngineConfig::new(device(), mode.clone())
            .with_fault_plan(faults.clone())
            .with_legacy_loop(legacy);
        Engine::new(config, programs_for(specs))
            .unwrap()
            .run_with_stats()
            .unwrap()
    };
    (run(false), run(true))
}

/// Random profile pool for the plan-search property: utilizations and
/// footprints wide enough that both saturated (SM/BW > 100%) and
/// memory-infeasible groupings occur.
fn profile_strategy() -> impl Strategy<Value = WorkflowProfile> {
    (
        1.0f64..=95.0, // avg sm %
        0.0f64..=70.0, // avg bw %
        1u64..=20,     // max memory GiB
        1.0f64..=30.0, // duration s
        1usize..=6,    // task count
    )
        .prop_map(|(sm, bw, mem_gib, duration, tasks)| {
            let power = 75.0 + 1.75 * sm + bw;
            WorkflowProfile {
                label: format!("prop-{sm:.0}-{bw:.0}"),
                task_count: tasks,
                avg_sm_util: Percent::new(sm),
                avg_bw_util: Percent::new(bw),
                max_memory: MemBytes::from_gib(mem_gib),
                duration: Seconds::new(duration),
                energy: Energy::from_joules(power * duration),
                avg_power: Power::from_watts(power),
                busy_fraction: 0.8,
                saturation_partition: mpshare::types::Fraction::new(0.9),
            }
        })
}

fn priority_strategy() -> impl Strategy<Value = MetricPriority> {
    (0usize..3).prop_map(|i| match i {
        0 => MetricPriority::Throughput,
        1 => MetricPriority::Energy,
        _ => MetricPriority::balanced_product(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental single-join/leave contention re-solve must be
    /// invisible: an engine run with the fast path enabled produces a
    /// `RunResult` bit-identical (via its serialized form — rates, power,
    /// clocks, energy, telemetry, event log) to one forced onto the full
    /// re-solve pipeline, across random join/leave/fault sequences.
    #[test]
    fn incremental_resolve_matches_full_resolve(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        fault_seed in 0u64..1000,
    ) {
        let horizons: Vec<Seconds> = programs_for(&specs)
            .iter()
            .map(|p| p.solo_wall_time())
            .collect();
        // Rate 0.5: roughly half the runs abort clients mid-flight,
        // exercising the PR 3 fault-abort leave path.
        let faults = FaultPlan::seeded(fault_seed, &horizons, 0.5).unwrap();
        let n = specs.len();
        let ((inc_result, inc_stats), (full_result, full_stats)) =
            run_both(SharingMode::mps_uniform(n), &specs, &faults);

        prop_assert_eq!(
            serde_json::to_string(&inc_result).unwrap(),
            serde_json::to_string(&full_result).unwrap(),
            "incremental vs full resolve diverged (stats {:?} vs {:?})",
            inc_stats,
            full_stats
        );
        // The forced path never takes the fast path; both account every
        // re-solve as exactly one of incremental or full.
        prop_assert_eq!(full_stats.incremental_solves, 0);
        prop_assert_eq!(
            inc_stats.incremental_solves + inc_stats.full_solves,
            inc_stats.rate_solves
        );
        prop_assert_eq!(full_stats.full_solves, full_stats.rate_solves);
        prop_assert_eq!(inc_stats.events, full_stats.events);
    }

    /// Same equivalence under fused streams (the other scheduled-resident
    /// mode the fast path serves).
    #[test]
    fn incremental_resolve_matches_full_resolve_streams(
        specs in prop::collection::vec(spec_strategy(), 1..5),
    ) {
        let ((inc_result, inc_stats), (full_result, full_stats)) =
            run_both(SharingMode::Streams, &specs, &FaultPlan::new());
        prop_assert_eq!(
            serde_json::to_string(&inc_result).unwrap(),
            serde_json::to_string(&full_result).unwrap(),
            "streams incremental vs full resolve diverged (stats {:?} vs {:?})",
            inc_stats,
            full_stats
        );
        prop_assert_eq!(full_stats.incremental_solves, 0);
    }

    /// The component/tick-heap core must be observationally invisible: an
    /// engine driven through `SimCore`'s global heap (the default loop)
    /// produces a `RunResult` bit-identical to the historical direct
    /// `while step()` loop, across random join/leave/fault sequences.
    #[test]
    fn component_core_matches_legacy_loop(
        specs in prop::collection::vec(spec_strategy(), 1..6),
        fault_seed in 0u64..1000,
    ) {
        let horizons: Vec<Seconds> = programs_for(&specs)
            .iter()
            .map(|p| p.solo_wall_time())
            .collect();
        let faults = FaultPlan::seeded(fault_seed, &horizons, 0.5).unwrap();
        let n = specs.len();
        let ((comp_result, comp_stats), (legacy_result, legacy_stats)) =
            run_component_and_legacy(SharingMode::mps_uniform(n), &specs, &faults);

        prop_assert_eq!(
            serde_json::to_string(&comp_result).unwrap(),
            serde_json::to_string(&legacy_result).unwrap(),
            "component core vs legacy loop diverged (stats {:?} vs {:?})",
            comp_stats,
            legacy_stats
        );
        // The component core ticks exactly once per engine event through
        // the global heap (one entry, re-armed after every tick); the
        // legacy loop never touches either counter.
        prop_assert_eq!(comp_stats.ticks, comp_stats.events);
        prop_assert_eq!(comp_stats.heap_max_depth, 1);
        prop_assert_eq!(legacy_stats.ticks, 0);
        prop_assert_eq!(legacy_stats.heap_max_depth, 0);
        prop_assert_eq!(comp_stats.events, legacy_stats.events);
    }

    /// Same pinning under time slicing, whose quantum-expiry events stress
    /// the plan/apply split (the planned rotation flag must survive the
    /// `next_tick`/`tick_to` handoff).
    #[test]
    fn component_core_matches_legacy_loop_timesliced(
        specs in prop::collection::vec(spec_strategy(), 2..5),
    ) {
        let ((comp_result, comp_stats), (legacy_result, legacy_stats)) =
            run_component_and_legacy(
                SharingMode::timesliced_default(),
                &specs,
                &FaultPlan::new(),
            );
        prop_assert_eq!(
            serde_json::to_string(&comp_result).unwrap(),
            serde_json::to_string(&legacy_result).unwrap(),
            "timesliced component core vs legacy loop diverged (stats {:?} vs {:?})",
            comp_stats,
            legacy_stats
        );
        prop_assert_eq!(comp_stats.events, legacy_stats.events);
    }

    /// Branch-and-bound exhaustive planning must return the *same plan* as
    /// the unpruned enumeration — not just an equally-scored one — on
    /// random workloads up to n = 10, across every metric priority.
    #[test]
    fn pruned_exhaustive_matches_brute_force(
        profiles in prop::collection::vec(profile_strategy(), 2..8),
        priority in priority_strategy(),
    ) {
        let pruned = Planner::new(device(), priority);
        let brute = pruned.clone().with_exhaustive_pruning(false);
        let fast = pruned.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
        let slow = brute.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
        prop_assert_eq!(fast, slow);
    }
}

/// One deterministic full-width case at the n = 10 support boundary
/// (Bell(10) = 115 975 partitions), kept out of the randomized loop so the
/// suite's runtime stays bounded.
#[test]
fn pruned_exhaustive_matches_brute_force_n10() {
    let mk = |i: u64| {
        let sm = 10.0 + (i as f64 * 13.7) % 85.0;
        let bw = (i as f64 * 7.3) % 60.0;
        let duration = 2.0 + (i as f64 * 3.1) % 20.0;
        let power = 75.0 + 1.75 * sm + bw;
        WorkflowProfile {
            label: format!("n10-{i}"),
            task_count: 1 + (i as usize % 4),
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(bw),
            max_memory: MemBytes::from_gib(1 + i % 16),
            duration: Seconds::new(duration),
            energy: Energy::from_joules(power * duration),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.8,
            saturation_partition: mpshare::types::Fraction::new(0.9),
        }
    };
    let profiles: Vec<WorkflowProfile> = (0..10).map(mk).collect();
    for priority in [
        MetricPriority::Throughput,
        MetricPriority::Energy,
        MetricPriority::balanced_product(),
    ] {
        let pruned = Planner::new(device(), priority);
        let brute = pruned.clone().with_exhaustive_pruning(false);
        let fast = pruned.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
        let slow = brute.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
        assert_eq!(fast, slow, "priority {priority:?}");
    }
}

/// One deterministic sweep across every sharing mechanism the runner
/// supports — Sequential, TimeSliced, MPS, Streams, MIG — fault-free and
/// with a mid-run client fault, pinning the component core against the
/// legacy loop at the `GpuRunner` level. MIG matters here: it runs one
/// engine per instance and merges, so the loop choice threads through the
/// per-instance configs.
#[test]
fn gpu_runner_component_core_matches_legacy_for_all_mechanisms() {
    use mpshare::mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};

    let d = device();
    let specs: Vec<SyntheticSpec> = (0..4)
        .map(|i| SyntheticSpec {
            sm_demand: 0.2 + 0.15 * i as f64,
            bw_demand: 0.05 * i as f64,
            duty_cycle: 0.7,
            duration: 1.0 + 0.3 * i as f64,
            memory_mib: 256,
            kernels: 3,
            cache_sensitivity: 0.2,
            client_sensitivity: 0.05,
        })
        .collect();
    let programs = programs_for(&specs);
    let mut faults = FaultPlan::new();
    faults.push_client_fault(Seconds::new(0.9), 1);

    let layout = MigLayout::new(&d, &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
    let mechanisms: Vec<(&str, GpuSharing)> = vec![
        ("sequential", GpuSharing::Sequential),
        (
            "timesliced",
            GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
        ),
        ("mps", GpuSharing::mps_default(4)),
        ("streams", GpuSharing::Streams),
        (
            "mig",
            GpuSharing::Mig {
                layout,
                assignment: vec![0, 1, 0, 1],
            },
        ),
    ];
    for (name, sharing) in &mechanisms {
        for faulty in [false, true] {
            let plan = if faulty {
                faults.clone()
            } else {
                FaultPlan::new()
            };
            let component = GpuRunner::new(d.clone())
                .with_event_log(true)
                .run_with_faults(sharing, programs.clone(), &plan)
                .unwrap();
            let legacy = GpuRunner::new(d.clone())
                .with_event_log(true)
                .with_legacy_loop(true)
                .run_with_faults(sharing, programs.clone(), &plan)
                .unwrap();
            assert_eq!(
                serde_json::to_string(&component).unwrap(),
                serde_json::to_string(&legacy).unwrap(),
                "mechanism {name} (faulty={faulty}) diverged between loops"
            );
        }
    }
}
