//! End-to-end checks that the paper's headline qualitative results hold —
//! the "shape" criteria recorded in EXPERIMENTS.md, exercised through the
//! public API rather than the harness internals.

use mpshare::core::{Executor, ExecutorConfig};
use mpshare::gpusim::{ClientProgram, DeviceSpec};
use mpshare::mps::{GpuRunner, GpuSharing};
use mpshare::profiler::profile_task;
use mpshare::types::{Fraction, TaskId};
use mpshare::workloads::{benchmark, build_task, BenchmarkKind, ProblemSize, WorkflowSpec};

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

/// Paper abstract: "choosing the right arrangement of workflows to
/// collocate can increase throughput by as much as 2x and energy
/// efficiency by 1.6x".
#[test]
fn headline_gains_are_reachable() {
    let d = device();
    let executor = Executor::new(ExecutorConfig::new(d.clone()));
    // Low-utilization pairs are the paper's best case.
    let queue: Vec<WorkflowSpec> = (0..2)
        .map(|_| WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 4))
        .collect();
    let seq = executor.run_sequential(&queue).unwrap();
    let mps = executor.run_mps_naive(&queue).unwrap();
    let report = executor.report(mps, seq);
    assert!(
        report.metrics.throughput_gain > 1.7,
        "throughput gain {}",
        report.metrics.throughput_gain
    );
    assert!(
        report.metrics.energy_efficiency_gain > 1.4,
        "efficiency gain {}",
        report.metrics.energy_efficiency_gain
    );
}

/// Paper takeaway 1: sharing between low-utilization applications yields
/// greater benefit than between high-utilization applications.
#[test]
fn low_utilization_pairs_benefit_more_than_high() {
    let d = device();
    let executor = Executor::new(ExecutorConfig::new(d.clone()));
    let gain_for = |kind: BenchmarkKind| {
        let queue: Vec<WorkflowSpec> = (0..2)
            .map(|_| WorkflowSpec::uniform(kind, ProblemSize::X4, 2))
            .collect();
        let seq = executor.run_sequential(&queue).unwrap();
        let mps = executor.run_mps_naive(&queue).unwrap();
        executor.report(mps, seq).metrics.throughput_gain
    };
    let low = gain_for(BenchmarkKind::AthenaPk);
    let high = gain_for(BenchmarkKind::Lammps);
    assert!(
        low > high + 0.5,
        "low-util gain {low} should far exceed high-util gain {high}"
    );
    assert!(high < 1.1, "LAMMPS-with-LAMMPS must not pay: {high}");
}

/// §III / Table I: LAMMPS uses >90% of its theoretical warps and is
/// "unsuited to GPU sharing with MPS".
#[test]
fn lammps_occupancy_marks_it_unsuited_to_sharing() {
    let d = device();
    let model = benchmark(BenchmarkKind::Lammps);
    let task = build_task(&d, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
    let p = profile_task(&d, &task).unwrap();
    assert!(p.occupancy.achieved_ratio() > 0.9);
}

/// Figure 1's granularity insight through the public API: a partition at
/// the measured saturation point keeps ~full throughput, and a much
/// smaller one costs real performance.
#[test]
fn saturation_partition_is_the_granularity_sweet_spot() {
    let d = device();
    let model = benchmark(BenchmarkKind::BerkeleyGwEpsilon);
    let task = build_task(&d, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
    let profile = profile_task(&d, &task).unwrap();
    let saturation = profile.saturation_partition;
    assert!(saturation.value() < 1.0, "Epsilon must saturate below 100%");

    let runner = GpuRunner::new(d.clone());
    let run_at = |partition: Fraction| {
        let mut program = ClientProgram::new("eps");
        program.push_task(task.clone());
        runner
            .run(
                &GpuSharing::Mps {
                    partitions: vec![partition],
                },
                vec![program],
            )
            .unwrap()
            .makespan
            .value()
    };
    let full = run_at(Fraction::ONE);
    let at_saturation = run_at(saturation);
    let starved = run_at(Fraction::new(0.10));
    assert!(full / at_saturation >= 0.95 - 1e-9);
    assert!(full / starved < 0.5, "a 10% partition must hurt badly");
}

/// §V-C: power capping engages under MPS co-scheduling of hot workloads,
/// and throughput is not simply anti-correlated with capping time.
#[test]
fn hot_coscheduling_trips_the_power_cap() {
    let d = device();
    let executor = Executor::new(ExecutorConfig::new(d.clone()));
    let queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
    ];
    let seq = executor.run_sequential(&queue).unwrap();
    let mps = executor.run_mps_naive(&queue).unwrap();
    assert_eq!(seq.capped_fraction, 0.0, "solo runs stay under the cap");
    assert!(
        mps.capped_fraction > 0.3,
        "concurrent MHD+LAMMPS must cap ({})",
        mps.capped_fraction
    );
    // Capped power never exceeds the device limit.
    assert!(mps.avg_power.watts() <= 300.0);
}

/// Table II's per-benchmark energy spread survives end-to-end: Epsilon is
/// the most energy-hungry task, AthenaPK 1x the least.
#[test]
fn energy_ordering_matches_table2() {
    let d = device();
    let energy_of = |kind: BenchmarkKind, size: ProblemSize| {
        let model = benchmark(kind);
        let task = build_task(&d, &model, size, TaskId::new(0)).unwrap();
        profile_task(&d, &task).unwrap().energy.joules()
    };
    let athena = energy_of(BenchmarkKind::AthenaPk, ProblemSize::X1);
    let kripke = energy_of(BenchmarkKind::Kripke, ProblemSize::X1);
    let epsilon = energy_of(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1);
    assert!(athena < kripke && kripke < epsilon);
    assert!(
        epsilon / athena > 1000.0,
        "Epsilon dwarfs AthenaPK by 3 orders"
    );
}

/// The scheduler's cardinality recommendation (conclusions, item 1):
/// groups of 2-3 low-utilization workflows maximize throughput; going very
/// wide costs throughput relative to the small-group peak.
#[test]
fn small_groups_beat_wide_groups_for_throughput() {
    let d = device();
    let executor = Executor::new(ExecutorConfig::new(d.clone()));
    let gain_at = |n: usize| {
        let queue: Vec<WorkflowSpec> = (0..n)
            .map(|_| WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2))
            .collect();
        let seq = executor.run_sequential(&queue).unwrap();
        let mps = executor.run_mps_naive(&queue).unwrap();
        executor.report(mps, seq).metrics.throughput_gain
    };
    let small = gain_at(2).max(gain_at(3));
    let wide = gain_at(12);
    assert!(
        small > wide,
        "small-group gain {small} should beat 12-wide gain {wide}"
    );
}
