//! Zoo regression gate as a tier-1 test: every pinned scenario under
//! `configs/zoo/` must replay with zero invariant violations and its
//! exact pinned output digest. The zoo holds shrunk repros of past bugs
//! (e.g. `mig-fault.json`, which caught MIG dropping its per-instance
//! event logs on merge) plus curated coverage of every sharing
//! mechanism, memory pressure, tight power caps, and online fault
//! recovery — so this test is the replay half of the fuzz harness, with
//! `mpshare-fuzz run` as the exploration half.

use mpshare::fuzz::{check_scenario, replay_zoo, Scenario};
use std::path::Path;

fn zoo_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("configs/zoo")
}

#[test]
fn every_zoo_scenario_replays_clean_with_pinned_digest() {
    let outcomes = replay_zoo(&zoo_dir()).expect("zoo directory replays");
    assert!(
        outcomes.len() >= 10,
        "zoo shrank to {} scenarios",
        outcomes.len()
    );
    for (path, outcome) in &outcomes {
        assert!(
            outcome.is_clean(),
            "{}:\n{}",
            path.display(),
            outcome.describe()
        );
        assert!(
            outcome.expected_digest.is_some(),
            "{}: zoo scenarios must pin a digest",
            path.display()
        );
    }
}

/// The zoo must keep covering the mechanism space — a curation mistake
/// that drops (say) the only MIG scenario would silently weaken the
/// gate.
#[test]
fn zoo_covers_every_mechanism_and_the_online_path() {
    let outcomes = replay_zoo(&zoo_dir()).expect("zoo directory replays");
    let names: Vec<&str> = outcomes.iter().map(|(_, o)| o.name.as_str()).collect();
    for needle in ["mps", "mig", "ts", "seq", "streams", "online"] {
        assert!(
            names.iter().any(|n| n.contains(needle)),
            "no zoo scenario covers {needle:?}: {names:?}"
        );
    }
}

/// Digest pinning detects drift: flipping a pinned digest must make the
/// replay report unclean (this is what failing `make fuzz-smoke` after a
/// behaviour change looks like).
#[test]
fn digest_drift_is_detected() {
    let (path, _) = &replay_zoo(&zoo_dir()).expect("zoo directory replays")[0];
    let body = std::fs::read_to_string(path).unwrap();
    let mut scenario = Scenario::from_json(&body).unwrap();
    scenario.expected_digest = Some("0000000000000000".into());
    let report = check_scenario(&scenario).unwrap();
    assert!(report.violations.is_empty());
    assert_ne!(report.digest, "0000000000000000");
}
