# Offline quality gate for the mpshare workspace.
#
# Everything here runs without network access: all external crates are
# vendored as API-compatible stand-ins under vendor/ and wired in via
# workspace path dependencies. Do NOT `cargo add` registry dependencies.

CARGO ?= cargo

.PHONY: check build test test-all fmt clippy bench clean

# The full tier-1 gate: release build, tests, formatting, lints.
check: build test fmt clippy

build:
	$(CARGO) build --release

# Tier-1 tests: the root package's suites (lib, integration, doc-tests).
test:
	$(CARGO) test -q

# Every crate in the workspace, including the vendored-stand-in consumers.
test-all:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Engine + plan-search hot-path benchmarks; per-scenario medians (ns) are
# written to BENCH_engine.json by the vendored criterion stand-in.
bench:
	MPSHARE_BENCH_JSON=$(CURDIR)/BENCH_engine.json \
		$(CARGO) bench -p mpshare-bench --bench engine_performance

clean:
	$(CARGO) clean
