# Offline quality gate for the mpshare workspace.
#
# Everything here runs without network access: all external crates are
# vendored as API-compatible stand-ins under vendor/ and wired in via
# workspace path dependencies. Do NOT `cargo add` registry dependencies.

CARGO ?= cargo

.PHONY: check build test test-all fmt clippy alloc-gate bench bench-gate fault-smoke trace-smoke fuzz-smoke component-smoke clean

# The full tier-1 gate: release build, tests, formatting, lints, the
# allocation gate, the fault-, trace-, fuzz-, and component-core smoke
# runs, and the bench regression gate.
check: build test fmt clippy alloc-gate fault-smoke trace-smoke fuzz-smoke component-smoke bench-gate

# --workspace so member binaries (mpshare-repro, mpshare-sched,
# mpshare-fuzz, bench_gate) exist for the smoke gates below even from a
# clean target dir.
build:
	$(CARGO) build --release --workspace

# Tier-1 tests: the root package's suites (lib, integration, doc-tests).
test:
	$(CARGO) test -q

# Every crate in the workspace, including the vendored-stand-in consumers.
test-all:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Allocation gate (tests/alloc_gate.rs): a counting global allocator
# proves the steady-state engine contract (zero heap allocations per
# `step()` with recycled scratch) and the warm-planner bound (a warm
# `plan_warm` call allocates no more than the cold `plan` it replaces).
# Release mode is required: debug builds run the engine's self-checking
# cross-validation paths, which allocate by design.
alloc-gate:
	$(CARGO) test -q --release --test alloc_gate

# Engine + plan-search hot-path benchmarks; per-scenario medians (ns) are
# written to BENCH_engine.json by the vendored criterion stand-in. A prior
# BENCH_engine.json is optional: when present it is kept as
# BENCH_engine.prev.json for comparison, when absent this run records the
# baseline.
bench:
	@if [ -f $(CURDIR)/BENCH_engine.json ]; then \
		cp $(CURDIR)/BENCH_engine.json $(CURDIR)/BENCH_engine.prev.json; \
		echo "previous medians kept in BENCH_engine.prev.json"; \
	else \
		echo "no prior BENCH_engine.json; this run records the baseline"; \
	fi
	MPSHARE_BENCH_JSON=$(CURDIR)/BENCH_engine.json \
		$(CARGO) bench -p mpshare-bench --bench engine_performance

# Bench regression gate: re-measures the engine benchmarks into a scratch
# summary and compares per-scenario medians against the committed
# BENCH_engine.json. Any scenario present in both that regressed by more
# than 25% fails the gate; scenarios present in only one file (added,
# renamed, or retired benchmarks) are tolerated. Skipped with a note when
# no baseline has been committed yet.
bench-gate: build
	@if [ ! -f $(CURDIR)/BENCH_engine.json ]; then \
		echo "bench-gate: no BENCH_engine.json baseline; run 'make bench' to record one"; \
	else \
		rm -f $(CURDIR)/.bench-gate.json && \
		MPSHARE_BENCH_JSON=$(CURDIR)/.bench-gate.json \
			$(CARGO) bench -p mpshare-bench --bench engine_performance && \
		./target/release/bench_gate $(CURDIR)/BENCH_engine.json \
			$(CURDIR)/.bench-gate.json --max-regression 0.25 && \
		rm -f $(CURDIR)/.bench-gate.json && \
		echo "bench regression gate passed"; \
	fi

# Fault-injection determinism gate: the seeded ext_faults experiment must
# be bit-identical run-to-run and across serial vs. parallel execution.
fault-smoke: build
	@rm -rf .fault-smoke
	@mkdir -p .fault-smoke
	./target/release/mpshare-repro ext_faults --out .fault-smoke/a >/dev/null
	./target/release/mpshare-repro ext_faults --out .fault-smoke/b >/dev/null
	./target/release/mpshare-repro ext_faults --out .fault-smoke/c --serial >/dev/null
	cmp .fault-smoke/a/ext_faults.json .fault-smoke/b/ext_faults.json
	cmp .fault-smoke/a/ext_faults.json .fault-smoke/c/ext_faults.json
	@rm -rf .fault-smoke
	@echo "fault-determinism smoke gate passed"

# Observability determinism gate: two recorded serial runs must produce
# byte-identical trace, metrics, and timeline artifacts (the recorder
# uses simulated time and sequence numbers only — no wall clocks), and a
# recorded parallel run must produce the byte-identical timeline export
# (it is a pure function of the observation multiset) and still carry
# every required track, metric family, and timeline invariant
# (validate-obs). Experiment outputs must be unaffected by recording.
trace-smoke: build
	@rm -rf .trace-smoke
	@mkdir -p .trace-smoke
	./target/release/mpshare-repro ext_online --out .trace-smoke/a --serial \
		--trace-out .trace-smoke/a-trace.json --metrics-out .trace-smoke/a-metrics.json \
		--timeline-out .trace-smoke/a-timeline.json >/dev/null 2>&1
	./target/release/mpshare-repro ext_online --out .trace-smoke/b --serial \
		--trace-out .trace-smoke/b-trace.json --metrics-out .trace-smoke/b-metrics.json \
		--timeline-out .trace-smoke/b-timeline.json >/dev/null 2>&1
	cmp .trace-smoke/a-trace.json .trace-smoke/b-trace.json
	cmp .trace-smoke/a-metrics.json .trace-smoke/b-metrics.json
	cmp .trace-smoke/a-metrics.json.prom .trace-smoke/b-metrics.json.prom
	cmp .trace-smoke/a-timeline.json .trace-smoke/b-timeline.json
	./target/release/mpshare-repro ext_online --out .trace-smoke/c \
		--trace-out .trace-smoke/c-trace.json --metrics-out .trace-smoke/c-metrics.json \
		--timeline-out .trace-smoke/c-timeline.json >/dev/null 2>&1
	cmp .trace-smoke/a-timeline.json .trace-smoke/c-timeline.json
	./target/release/mpshare-repro validate-obs \
		--trace-out .trace-smoke/c-trace.json --metrics-out .trace-smoke/c-metrics.json \
		--timeline-out .trace-smoke/c-timeline.json
	cmp .trace-smoke/a/ext_online.json .trace-smoke/c/ext_online.json
	@rm -rf .trace-smoke
	@echo "trace-determinism smoke gate passed"

# Fuzz smoke gate: a fixed-seed 500-scenario campaign must be clean and
# byte-identical serial vs. parallel (the generator, oracle, and report
# are pure functions of the seed block), and every pinned scenario in
# configs/zoo/ — shrunk repros of past bugs plus mechanism coverage —
# must replay with zero violations and its exact pinned digest.
fuzz-smoke: build
	@rm -rf .fuzz-smoke
	@mkdir -p .fuzz-smoke
	./target/release/mpshare-fuzz run --count 500 --base 0 --out .fuzz-smoke/par.txt
	./target/release/mpshare-fuzz run --count 500 --base 0 --serial --out .fuzz-smoke/ser.txt
	cmp .fuzz-smoke/par.txt .fuzz-smoke/ser.txt
	./target/release/mpshare-fuzz zoo configs/zoo
	@rm -rf .fuzz-smoke
	@echo "fuzz smoke gate passed"

# Component-core smoke gate: every pinned zoo scenario must replay with
# zero violations and its exact pinned digest under the component/
# tick-heap core (the default engine loop; the oracle additionally
# cross-checks each scenario against the legacy `while step()` loop
# byte-for-byte), the zero-alloc steady-state contract must hold with the
# engine driven through `SimCore`, and the two-GPU + interconnect
# composition must run end-to-end with its metrics exported.
component-smoke: build
	./target/release/mpshare-fuzz zoo configs/zoo
	$(CARGO) test -q --release --test alloc_gate component_core_steady_state_is_alloc_free
	$(CARGO) test -q --release --test component_core
	@echo "component-core smoke gate passed"

clean:
	$(CARGO) clean
