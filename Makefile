# Offline quality gate for the mpshare workspace.
#
# Everything here runs without network access: all external crates are
# vendored as API-compatible stand-ins under vendor/ and wired in via
# workspace path dependencies. Do NOT `cargo add` registry dependencies.

CARGO ?= cargo

.PHONY: check build test test-all fmt clippy bench fault-smoke clean

# The full tier-1 gate: release build, tests, formatting, lints, and the
# fault-determinism smoke run.
check: build test fmt clippy fault-smoke

build:
	$(CARGO) build --release

# Tier-1 tests: the root package's suites (lib, integration, doc-tests).
test:
	$(CARGO) test -q

# Every crate in the workspace, including the vendored-stand-in consumers.
test-all:
	$(CARGO) test -q --workspace

fmt:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Engine + plan-search hot-path benchmarks; per-scenario medians (ns) are
# written to BENCH_engine.json by the vendored criterion stand-in. A prior
# BENCH_engine.json is optional: when present it is kept as
# BENCH_engine.prev.json for comparison, when absent this run records the
# baseline.
bench:
	@if [ -f $(CURDIR)/BENCH_engine.json ]; then \
		cp $(CURDIR)/BENCH_engine.json $(CURDIR)/BENCH_engine.prev.json; \
		echo "previous medians kept in BENCH_engine.prev.json"; \
	else \
		echo "no prior BENCH_engine.json; this run records the baseline"; \
	fi
	MPSHARE_BENCH_JSON=$(CURDIR)/BENCH_engine.json \
		$(CARGO) bench -p mpshare-bench --bench engine_performance

# Fault-injection determinism gate: the seeded ext_faults experiment must
# be bit-identical run-to-run and across serial vs. parallel execution.
fault-smoke: build
	@rm -rf .fault-smoke
	@mkdir -p .fault-smoke
	./target/release/mpshare-repro ext_faults --out .fault-smoke/a >/dev/null
	./target/release/mpshare-repro ext_faults --out .fault-smoke/b >/dev/null
	./target/release/mpshare-repro ext_faults --out .fault-smoke/c --serial >/dev/null
	cmp .fault-smoke/a/ext_faults.json .fault-smoke/b/ext_faults.json
	cmp .fault-smoke/a/ext_faults.json .fault-smoke/c/ext_faults.json
	@rm -rf .fault-smoke
	@echo "fault-determinism smoke gate passed"

clean:
	$(CARGO) clean
