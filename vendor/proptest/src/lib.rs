//! Offline stand-in for `proptest`.
//!
//! Deterministic randomized property testing covering the API surface this
//! workspace uses: range strategies, tuple strategies, `prop_map`,
//! `prop::collection::vec`, the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! - No shrinking: a failing case panics with the full generated input.
//! - `*.proptest-regressions` files are not replayed (their `cc` hashes are
//!   meaningless to this generator); pin regressions as explicit unit tests
//!   instead (see `tests/invariants.rs` for the pattern).
//! - Case streams are seeded from the test name, so runs are reproducible
//!   across processes and thread counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert!` and friends inside a test case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// Marker for a discarded (assumption-failed) case.
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError(format!("rejected: {msg}"))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Drive `config.cases` generated inputs through a test body, panicking on
/// the first failure with the offending input. Called by the [`proptest!`]
/// macro; the generic signature also gives the body closure its concrete
/// argument type (closure parameter inference does not flow backwards from
/// later call sites).
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = rng_for(name);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!(
                "proptest case {}/{} of `{name}` failed: {e}\ninput: {shown}",
                case + 1,
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specifier for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` prelude module.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::{prop, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::__proptest_impl;
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Discard the case by treating it as a vacuous pass.
            return ::std::result::Result::Ok(());
        }
    };
}

/// Deterministic property-test runner. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` (the attribute is written by the caller, as with real
/// proptest) that runs `config.cases` generated inputs and panics on the
/// first failing one, printing the input.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    &__config,
                    stringify!($name),
                    ($($strat,)+),
                    |($($pat,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
