//! Offline stand-in for `rand` 0.9.
//!
//! Exposes the slice of the API this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random` / `random_range` — backed by a
//! deterministic xoshiro256++ generator seeded via SplitMix64. Streams differ
//! from the real `rand` crate, but every consumer in this repository seeds
//! explicitly and only relies on determinism, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator: produces raw 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full standard distribution
    /// (`f64` in `[0, 1)`, integers over their whole range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (f64::sample(self)) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::sample(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0
                .wrapping_add(*s3)
                .rotate_left(23)
                .wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

/// Thread-local convenience generator (deterministic here, unlike real rand).
pub fn rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5eed_0000_dead_beef)
}
