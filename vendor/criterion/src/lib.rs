//! Offline stand-in for `criterion`.
//!
//! Real measurement, simple statistics: each benchmark runs a warmup pass,
//! then a fixed number of timed iterations, and prints median / mean /
//! min / max iteration time. No HTML reports, no outlier analysis — just
//! enough to compare hot paths before and after a change (e.g. the serial
//! vs parallel sweep fan-out).
//!
//! When the `MPSHARE_BENCH_JSON` environment variable names a path, the
//! `criterion_main!`-generated `main` additionally writes every
//! benchmark's summary (median / mean / trimmed mean / p10 / p90 /
//! min / max nanoseconds per iteration) to that path as JSON, so
//! `make bench` can commit machine-readable numbers and `make bench-gate`
//! can compare them against the committed baseline.

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: usize = 3;
const MEASURE_ITERS: usize = 10;

/// One benchmark's aggregate, collected for the JSON summary.
struct Summary {
    name: String,
    median_ns: u128,
    mean_ns: u128,
    trimmed_mean_ns: u128,
    p10_ns: u128,
    p90_ns: u128,
    min_ns: u128,
    max_ns: u128,
    iters: usize,
}

fn summaries() -> &'static Mutex<Vec<Summary>> {
    static STORE: OnceLock<Mutex<Vec<Summary>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

fn median(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Mean with the single smallest and largest sample dropped (plain mean
/// when fewer than three samples): one bad outlier can't move it.
fn trimmed_mean(sorted: &[Duration]) -> Duration {
    let trimmed = if sorted.len() >= 3 {
        &sorted[1..sorted.len() - 1]
    } else {
        sorted
    };
    let total: Duration = trimmed.iter().sum();
    total / trimmed.len() as u32
}

/// Nearest-rank percentile (`p` in 0..=100) of pre-sorted samples.
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let n = sorted.len();
    let rank = (p * n).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Measures a single benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let med = median(&sorted);
    let trimmed = trimmed_mean(&sorted);
    let p10 = percentile(&sorted, 10);
    let p90 = percentile(&sorted, 90);
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{name}: median {med:?}  mean {mean:?}  trimmed {trimmed:?}  p10 {p10:?}  p90 {p90:?}  min {min:?}  max {max:?}  ({} iters)",
        samples.len()
    );
    summaries().lock().expect("summary store poisoned").push(Summary {
        name: name.to_string(),
        median_ns: med.as_nanos(),
        mean_ns: mean.as_nanos(),
        trimmed_mean_ns: trimmed.as_nanos(),
        p10_ns: p10.as_nanos(),
        p90_ns: p90.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        iters: samples.len(),
    });
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes the collected summaries to the path named by the
/// `MPSHARE_BENCH_JSON` environment variable, if set. Called by the
/// `criterion_main!`-generated `main` after all groups have run.
pub fn write_summary_json() {
    let Some(path) = std::env::var_os("MPSHARE_BENCH_JSON") else {
        return;
    };
    let store = summaries().lock().expect("summary store poisoned");
    let mut out = String::from("{\n  \"unit\": \"ns_per_iter\",\n  \"scenarios\": [\n");
    for (i, s) in store.iter().enumerate() {
        let comma = if i + 1 < store.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"mean_ns\": {}, \"trimmed_mean_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}}}{comma}\n",
            json_escape(&s.name),
            s.median_ns,
            s.mean_ns,
            s.trimmed_mean_ns,
            s.p10_ns,
            s.p90_ns,
            s.min_ns,
            s.max_ns,
            s.iters
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench summary written to {}", path.to_string_lossy()),
        Err(e) => eprintln!(
            "failed to write bench summary {}: {e}",
            path.to_string_lossy()
        ),
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    report(name, &bencher.samples);
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Declared throughput of a benchmark (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {}

impl Criterion {
    /// Accepted and ignored: the stand-in always runs a fixed iteration count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted and ignored: the stand-in always runs a fixed iteration count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored: the stand-in always runs a fixed warmup count.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {}
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (
        name = $group:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_summary_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ns: u64) -> Duration {
        Duration::from_nanos(ns)
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let sorted = [d(10), d(20), d(30), d(1000)];
        assert_eq!(trimmed_mean(&sorted), d(25));
        // Too few samples to trim: plain mean.
        assert_eq!(trimmed_mean(&[d(10), d(30)]), d(20));
        assert_eq!(trimmed_mean(&[d(7)]), d(7));
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<Duration> = (1..=10).map(|i| d(i * 100)).collect();
        assert_eq!(percentile(&sorted, 10), d(100));
        assert_eq!(percentile(&sorted, 50), d(500));
        assert_eq!(percentile(&sorted, 90), d(900));
        assert_eq!(percentile(&sorted, 100), d(1000));
        assert_eq!(percentile(&[d(42)], 90), d(42));
    }
}
