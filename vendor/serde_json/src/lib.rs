//! Offline stand-in for `serde_json`.
//!
//! Serializes the owned `serde::Content` tree to JSON text and parses JSON
//! text back. Covers the API surface this workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, [`Value`] with indexing/accessors, and the
//! [`json!`] macro.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Owned JSON value, mirroring `serde::Content` with JSON-flavored naming.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn to_content_inner(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content_inner).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content_inner()))
                    .collect(),
            ),
        }
    }

    fn from_content_inner(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::U64(*v),
            Content::I64(v) => Value::I64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content_inner).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content_inner(v)))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_inner()
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, serde::Error> {
        Ok(Value::from_content_inner(c))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            #[allow(clippy::cast_lossless)]
            fn eq(&self, other: &$t) -> bool {
                match self.as_f64() {
                    Some(v) => v == *other as f64,
                    None => false,
                }
            }
        }
        impl PartialEq<$t> for &Value {
            #[allow(clippy::cast_lossless)]
            fn eq(&self, other: &$t) -> bool {
                <Value as PartialEq<$t>>::eq(self, other)
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_content(&self.to_content_inner(), None))
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    Value::from_content_inner(&value.to_content())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if v.fract() == 0.0 && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(out: &mut String, c: &Content, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (level + 1)),
            " ".repeat(width * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(out, k);
                out.push_str(colon);
                write_value(out, v, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

fn write_content(c: &Content, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, c, indent, 0);
    out
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    Ok(write_content(&value.to_content(), None))
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    Ok(write_content(&value.to_content(), Some(2)))
}

pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: copy the unescaped run in one shot
                    // instead of validating the remaining input per byte.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
                Some(b) => {
                    // Multi-byte character: the leading byte encodes its
                    // length, so validate only that bounded slice.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let rest = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser::new(input);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_content(&content).map_err(Error::from)
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_content(&value.to_content_inner()).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal, interpolating expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_internal_array!([] $($elems)*) };
    ({ $($entries:tt)* }) => { $crate::json_internal_object!([] () $($entries)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: accumulate array elements. `[done so far] rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    // End of input.
    ([ $($done:expr,)* ]) => { $crate::Value::Array(vec![ $($done,)* ]) };
    // Next element is a nested array / object / null (tt-shaped).
    ([ $($done:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    ([ $($done:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    // Next element is a plain expression.
    ([ $($done:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!([ $($done,)* $crate::to_value(&$next), ] $($($rest)*)?)
    };
}

/// Internal: accumulate object entries. `[done so far] (key tts) rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    // End of input, no pending key.
    ([ $($done:expr,)* ] ()) => { $crate::Value::Object(vec![ $($done,)* ]) };
    // Key finished, value is null / nested array / nested object.
    ([ $($done:expr,)* ] ($($key:tt)+) : null $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($done,)* ($crate::json_key!($($key)+), $crate::Value::Null), ]
            () $($($rest)*)?
        )
    };
    ([ $($done:expr,)* ] ($($key:tt)+) : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($done,)* ($crate::json_key!($($key)+), $crate::json!([ $($inner)* ])), ]
            () $($($rest)*)?
        )
    };
    ([ $($done:expr,)* ] ($($key:tt)+) : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($done,)* ($crate::json_key!($($key)+), $crate::json!({ $($inner)* })), ]
            () $($($rest)*)?
        )
    };
    // Key finished, value is a plain expression.
    ([ $($done:expr,)* ] ($($key:tt)+) : $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            [ $($done,)* ($crate::json_key!($($key)+), $crate::to_value(&$value)), ]
            () $($($rest)*)?
        )
    };
    // Munch one token into the pending key.
    ([ $($done:expr,)* ] ($($key:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal_object!([ $($done,)* ] ($($key)* $next) $($rest)*)
    };
}

/// Internal: turn object-key tokens into a `String`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($($key:tt)+) => { ::std::string::ToString::to_string(&($($key)+)) };
}
