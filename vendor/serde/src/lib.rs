//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible-enough replacement. Instead
//! of serde's visitor-based zero-copy model, values round-trip through a
//! small owned [`Content`] tree (the same shape as a JSON document). The
//! companion `serde_derive` proc-macro generates `to_content`/`from_content`
//! implementations for the derive attribute surface this repository actually
//! uses (`transparent`, `untagged`, `default`, `skip_serializing_if`,
//! `from`/`into` surrogates).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Owned, self-describing value tree — the interchange format between
/// `Serialize`/`Deserialize` impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }
}

/// Error produced while converting a [`Content`] tree into a typed value.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialization from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

fn type_mismatch(expected: &str, got: &Content) -> Error {
    Error(format!("invalid type: expected {expected}, got {got:?}"))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_u64().ok_or_else(|| type_mismatch("unsigned integer", c))?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c.as_i64().ok_or_else(|| type_mismatch("integer", c))?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| type_mismatch("float", c))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().map(|v| v as f32).ok_or_else(|| type_mismatch("float", c))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_mismatch("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(type_mismatch("sequence", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let items = Vec::<T>::from_content(c)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(type_mismatch("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(type_mismatch("map", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_content(
                                it.next().ok_or_else(|| Error("tuple too short".into()))?
                            )?,
                        )+))
                    }
                    other => Err(type_mismatch("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

/// Namespace mirroring `serde::de` far enough for common error paths.
pub mod de {
    pub use super::Error;
}

/// Namespace mirroring `serde::ser` far enough for common error paths.
pub mod ser {
    pub use super::Error;
}
