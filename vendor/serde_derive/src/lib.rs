//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls over the owned
//! `serde::Content` tree. Implemented directly on `proc_macro` (no `syn` /
//! `quote` — the build environment is offline), so it parses exactly the item
//! shapes and `#[serde(...)]` attributes this workspace uses and rejects
//! anything else loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Default, Debug)]
struct ContainerAttrs {
    transparent: bool,
    untagged: bool,
    from: Option<String>,
    into: Option<String>,
}

#[derive(Default, Debug)]
struct FieldAttrs {
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: ContainerAttrs,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }
}

/// Parse one `#[...]` attribute body (the bracket group's stream), folding any
/// `serde(...)` entries into the provided collectors.
fn parse_attr(
    stream: TokenStream,
    mut container: Option<&mut ContainerAttrs>,
    mut field: Option<&mut FieldAttrs>,
) {
    let mut cur = Cursor::new(stream);
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return,
    };
    if name != "serde" {
        return; // doc comments, cfg, derive, etc.
    }
    let inner = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde derive: malformed #[serde] attribute: {other:?}"),
    };
    let mut cur = Cursor::new(inner);
    while cur.peek().is_some() {
        let key = cur.expect_ident("serde attribute name");
        let value = if cur.eat_punct('=') {
            match cur.next() {
                Some(TokenTree::Literal(l)) => {
                    let s = l.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde derive: expected literal after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), container.is_some(), field.is_some()) {
            ("transparent", true, _) => container.as_mut().unwrap().transparent = true,
            ("untagged", true, _) => container.as_mut().unwrap().untagged = true,
            ("from", true, _) => container.as_mut().unwrap().from = value.clone(),
            ("into", true, _) => container.as_mut().unwrap().into = value.clone(),
            ("default", _, true) => field.as_mut().unwrap().default = true,
            ("skip_serializing_if", _, true) => {
                field.as_mut().unwrap().skip_serializing_if = value.clone()
            }
            (other, _, _) => panic!(
                "serde derive (offline stand-in): unsupported serde attribute `{other}` — \
                 extend vendor/serde_derive if the real attribute is needed"
            ),
        }
        cur.eat_punct(',');
    }
}

/// Skip a `pub` / `pub(crate)` visibility prefix if present.
fn skip_visibility(cur: &mut Cursor) {
    if let Some(TokenTree::Ident(i)) = cur.peek() {
        if i.to_string() == "pub" {
            cur.pos += 1;
            if let Some(TokenTree::Group(g)) = cur.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    cur.pos += 1;
                }
            }
        }
    }
}

/// Skip tokens that make up a type (or expression) until a top-level comma,
/// tracking `<...>` nesting since angle brackets are not token groups.
fn skip_until_top_level_comma(cur: &mut Cursor) {
    let mut angle_depth: i64 = 0;
    while let Some(t) = cur.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        cur.pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        while cur.eat_punct('#') {
            match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr(g.stream(), None, Some(&mut attrs));
                }
                other => panic!("serde derive: malformed attribute on field: {other:?}"),
            }
        }
        skip_visibility(&mut cur);
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("serde derive: expected `:` after field `{name}`");
        }
        skip_until_top_level_comma(&mut cur);
        cur.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while cur.peek().is_some() {
        while cur.eat_punct('#') {
            cur.next();
        }
        skip_visibility(&mut cur);
        if cur.peek().is_none() {
            break;
        }
        skip_until_top_level_comma(&mut cur);
        cur.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        while cur.eat_punct('#') {
            cur.next(); // tolerate (and ignore) doc comments / cfg on variants
        }
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if cur.eat_punct('=') {
            skip_until_top_level_comma(&mut cur);
        }
        cur.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let mut attrs = ContainerAttrs::default();

    // Leading attributes + visibility.
    loop {
        if cur.eat_punct('#') {
            match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_attr(g.stream(), Some(&mut attrs), None);
                }
                other => panic!("serde derive: malformed attribute: {other:?}"),
            }
            continue;
        }
        break;
    }
    skip_visibility(&mut cur);

    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde derive (offline stand-in): generic type `{name}` is not supported — \
                 extend vendor/serde_derive if needed"
            );
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, got `{other}`"),
    };

    Item { name, attrs, kind }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_named_fields_ser(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str(
        "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let access = format!("{}{}", access_prefix, f.name);
        let push = format!(
            "__entries.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_content(&{access})));\n",
            name = f.name,
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}(&{access}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
        }
    }
    out.push_str("::serde::Content::Map(__entries)\n");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let __surrogate: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&__surrogate)"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                if item.attrs.transparent {
                    assert!(
                        fields.len() == 1,
                        "serde derive: #[serde(transparent)] requires exactly one field"
                    );
                    format!("::serde::Serialize::to_content(&self.{})", fields[0].name)
                } else {
                    gen_named_fields_ser(fields, "self.")
                }
            }
            ItemKind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
            ItemKind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            }
            ItemKind::UnitStruct => "::serde::Content::Null".to_string(),
            ItemKind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            let value = if item.attrs.untagged {
                                "::serde::Content::Null".to_string()
                            } else {
                                format!(
                                    "::serde::Content::Str(::std::string::String::from(\"{vname}\"))"
                                )
                            };
                            arms.push_str(&format!("{name}::{vname} => {value},\n"));
                        }
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_content(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                            };
                            let value = if item.attrs.untagged {
                                inner
                            } else {
                                format!(
                                    "::serde::Content::Map(vec![(::std::string::String::from(\"{vname}\"), {inner})])"
                                )
                            };
                            arms.push_str(&format!(
                                "{name}::{vname}({}) => {value},\n",
                                binders.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = format!(
                                "{{ {} }}",
                                gen_named_fields_ser(fields, "*")
                                    .replace("&*", "") // bind-by-ref fields are already references
                            );
                            let value = if item.attrs.untagged {
                                inner
                            } else {
                                format!(
                                    "::serde::Content::Map(vec![(::std::string::String::from(\"{vname}\"), {inner})])"
                                )
                            };
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {} }} => {value},\n",
                                binders.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}\n}}")
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Generate the struct-literal body deserializing named `fields` out of the
/// map `__content` (an expression of type `&serde::Content`).
fn gen_named_fields_de(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let fallback = if f.attrs.default {
            "::std::default::Default::default()".to_string()
        } else {
            // Option<T> deserializes Null to None; everything else reports a
            // missing-field error (mirrors serde's missing_field fallback).
            format!(
                "::serde::Deserialize::from_content(&::serde::Content::Null).map_err(|_| \
                 ::serde::Error::custom(format!(\"missing field `{fname}`\")))?"
            )
        };
        out.push_str(&format!(
            "{fname}: match __content.get(\"{fname}\") {{\n\
             Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
             None => {fallback},\n\
             }},\n"
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.attrs.from {
        format!(
            "let __surrogate: {from} = ::serde::Deserialize::from_content(__content)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__surrogate))"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                if item.attrs.transparent {
                    format!(
                        "::std::result::Result::Ok({name} {{ {fname}: \
                         ::serde::Deserialize::from_content(__content)? }})",
                        fname = fields[0].name
                    )
                } else {
                    format!(
                        "match __content {{\n\
                         ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{\n{fields}\n}}),\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected map for {name}, got {{:?}}\", __other))),\n\
                         }}",
                        fields = gen_named_fields_de(fields)
                    )
                }
            }
            ItemKind::TupleStruct(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))")
            }
            ItemKind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_content(__items.get({i}).ok_or_else(|| \
                             ::serde::Error::custom(\"sequence too short for {name}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match __content {{\n\
                     ::serde::Content::Seq(__items) => ::std::result::Result::Ok({name}({items})),\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"expected sequence for {name}, got {{:?}}\", __other))),\n\
                     }}",
                    items = items.join(", ")
                )
            }
            ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
            ItemKind::Enum(variants) if item.attrs.untagged => {
                let mut attempts = String::new();
                for v in variants {
                    let vname = &v.name;
                    let attempt = match &v.kind {
                        VariantKind::Unit => format!(
                            "if matches!(__content, ::serde::Content::Null) {{ \
                             return ::std::result::Result::Ok({name}::{vname}); }}"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "if let ::std::result::Result::Ok(__v) = \
                             ::serde::Deserialize::from_content(__content) {{ \
                             return ::std::result::Result::Ok({name}::{vname}(__v)); }}"
                        ),
                        VariantKind::Tuple(_) => panic!(
                            "serde derive: untagged multi-field tuple variants unsupported"
                        ),
                        VariantKind::Named(fields) => {
                            // Require every non-defaulted field key to be
                            // present so overlapping variants stay distinct.
                            let try_body = format!(
                                "(|| -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{fields}\n}})\n\
                                 }})()",
                                fields = gen_named_fields_de(fields)
                            );
                            format!(
                                "if matches!(__content, ::serde::Content::Map(_)) {{\n\
                                 if let ::std::result::Result::Ok(__v) = {try_body} {{\n\
                                 return ::std::result::Result::Ok(__v); }}\n}}"
                            )
                        }
                    };
                    attempts.push_str(&attempt);
                    attempts.push('\n');
                }
                format!(
                    "{attempts}\n::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"data did not match any untagged variant of {name}: {{:?}}\", __content)))"
                )
            }
            ItemKind::Enum(variants) => {
                let mut str_arms = String::new();
                let mut map_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            str_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                            ));
                        }
                        VariantKind::Tuple(1) => {
                            map_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_content(__v)?)),\n"
                            ));
                        }
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_content(__items.get({i}).ok_or_else(|| \
                                         ::serde::Error::custom(\"variant sequence too short\"))?)?"
                                    )
                                })
                                .collect();
                            map_arms.push_str(&format!(
                                "\"{vname}\" => match __v {{\n\
                                 ::serde::Content::Seq(__items) => \
                                 ::std::result::Result::Ok({name}::{vname}({items})),\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected sequence for variant {vname}, got {{:?}}\", __other))),\n\
                                 }},\n",
                                items = items.join(", ")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            map_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __content = __v;\n\
                                 match __content {{\n\
                                 ::serde::Content::Map(_) => ::std::result::Result::Ok({name}::{vname} {{\n{fields}\n}}),\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected map for variant {vname}, got {{:?}}\", __other))),\n\
                                 }}\n}},\n",
                                fields = gen_named_fields_de(fields)
                            ));
                        }
                    }
                }
                format!(
                    "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n{str_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __v) = &__entries[0];\n\
                     match __k.as_str() {{\n{map_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }}\n}},\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"invalid enum representation for {name}: {{:?}}\", __other))),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
