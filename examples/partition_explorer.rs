//! Partition explorer: the paper's Figure 1 for any benchmark and size.
//!
//! Sweeps the MPS active-thread-percentage from 10 % to 100 %, prints the
//! throughput curve as an ASCII plot, and marks the saturation partition
//! (the paper's "green circle" — the smallest partition that keeps ≥ 95 %
//! of full-partition throughput).
//!
//! ```text
//! cargo run --release --example partition_explorer -- kripke 4
//! cargo run --release --example partition_explorer            # all benchmarks, 1x
//! ```

use mpshare::gpusim::{ClientProgram, DeviceSpec};
use mpshare::mps::{GpuRunner, GpuSharing};
use mpshare::profiler::profile_task;
use mpshare::types::{Fraction, TaskId};
use mpshare::workloads::{benchmark, build_task, BenchmarkKind, ProblemSize};

fn parse_kind(name: &str) -> Option<BenchmarkKind> {
    BenchmarkKind::ALL
        .into_iter()
        .find(|k| k.name().to_lowercase().contains(&name.to_lowercase()))
}

fn explore(
    device: &DeviceSpec,
    kind: BenchmarkKind,
    size: ProblemSize,
) -> mpshare::types::Result<()> {
    let model = benchmark(kind);
    let task = build_task(device, &model, size, TaskId::new(0))?;
    let profile = profile_task(device, &task)?;

    println!("\n== {} {} ==", kind, size);
    println!(
        "solo: duration {}  SM {}  BW {}  saturation partition {}%",
        profile.duration,
        profile.avg_sm_util,
        profile.avg_bw_util,
        (profile.saturation_partition.value() * 100.0).round()
    );

    let runner = GpuRunner::new(device.clone());
    let full = {
        let mut p = ClientProgram::new(task.label.clone());
        p.push_task(task.clone());
        runner
            .run(&GpuSharing::mps_default(1), vec![p])?
            .makespan
            .value()
    };

    println!("partition  rel-throughput");
    for pct in (10..=100).step_by(10) {
        let mut program = ClientProgram::new(task.label.clone());
        program.push_task(task.clone());
        let sharing = GpuSharing::Mps {
            partitions: vec![Fraction::new(pct as f64 / 100.0)],
        };
        let makespan = runner.run(&sharing, vec![program])?.makespan.value();
        let rel = full / makespan;
        let bar = "#".repeat((rel * 40.0).round() as usize);
        let marker = if (profile.saturation_partition.value() * 100.0 - pct as f64).abs() < 5.0 {
            "  <- saturation"
        } else {
            ""
        };
        println!("{pct:>8}%  {rel:>6.3} {bar}{marker}");
    }
    Ok(())
}

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first() {
        Some(name) => {
            let Some(kind) = parse_kind(name) else {
                eprintln!("unknown benchmark {name:?}; one of:");
                for k in BenchmarkKind::ALL {
                    eprintln!("  {k}");
                }
                std::process::exit(2);
            };
            let size = args
                .get(1)
                .map(|s| ProblemSize::new(s.parse::<f64>().expect("numeric size factor")))
                .unwrap_or(ProblemSize::X1);
            explore(&device, kind, size)
        }
        None => {
            for kind in BenchmarkKind::ALL {
                explore(&device, kind, ProblemSize::X1)?;
            }
            Ok(())
        }
    }
}
