//! A dependent simulation campaign: workflows feed each other, so the
//! planner must respect data dependencies (paper §IV-B: "an entire queue
//! of workflow tasks as well as data dependencies between them is known
//! before workflow execution").
//!
//! The campaign: two molecular-dynamics runs (LAMMPS) produce structures;
//! a BerkeleyGW-Epsilon run consumes them; independent astro workflows
//! (AthenaPK, Kripke, Cholla-Gravity) fill the gaps wherever the
//! dependency structure leaves room.
//!
//! ```text
//! cargo run --release --example dependency_pipeline
//! ```

use mpshare::core::{
    advise, plan_with_dependencies, validate_dependencies, workflow_profile, Dependency, Executor,
    ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();

    // The queue (indices matter for the dependency edges below).
    let queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 40), // 0: MD stage A
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 40), // 1: MD stage B
        WorkflowSpec::uniform(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 1), // 2: GW
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 10), // 3: filler
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X2, 20), // 4: filler
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 3), // 5: filler
    ];
    // Epsilon (2) consumes both MD outputs (0, 1).
    let deps = vec![Dependency::new(0, 2), Dependency::new(1, 2)];

    let mut store = ProfileStore::new();
    store.profile_workflows(&device, &queue)?;
    let profiles: Vec<_> = queue
        .iter()
        .map(|w| workflow_profile(&store, w))
        .collect::<mpshare::types::Result<Vec<_>>>()?;

    println!("advice for this queue:");
    for item in advise(&device, &profiles) {
        println!("  - {item}");
    }

    let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
    let plan = plan_with_dependencies(&planner, &profiles, &deps, PlannerStrategy::Auto)?;
    validate_dependencies(&plan, &deps)?;

    println!("\ndependency-respecting plan:");
    for (i, g) in plan.groups.iter().enumerate() {
        let members: Vec<&str> = g
            .workflow_indices
            .iter()
            .map(|&w| profiles[w].label.as_str())
            .collect();
        println!("  phase {}: {}", i + 1, members.join("  |  "));
    }

    let executor = Executor::new(ExecutorConfig::new(device));
    let report = executor.evaluate_plan(&queue, &plan)?;
    println!(
        "\nvs sequential: throughput {:.2}x, energy efficiency {:.2}x",
        report.metrics.throughput_gain, report.metrics.energy_efficiency_gain
    );
    println!(
        "worst per-workflow slowdown {:.2}x (mean {:.2}x) — the latency cost of sharing",
        report.max_slowdown(),
        report.mean_slowdown()
    );
    Ok(())
}
