//! A production-shaped scenario: an HPC center's queue of simulation
//! workflows, scheduled under three different metric priorities.
//!
//! Shows the paper's central trade-off: the throughput-first plan uses
//! pairs, the energy-first plan packs wide, and the product metric lands
//! in between. Every plan is executed on the simulator and compared
//! against sequential scheduling and a naive (FIFO, profile-blind) MPS
//! packer.
//!
//! ```text
//! cargo run --release --example workflow_queue
//! ```

use mpshare::core::{
    fifo_plan, workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec, WorkflowTask};

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();

    // The queue: a materials-science campaign (LAMMPS + BerkeleyGW), two
    // astrophysics campaigns (AthenaPK, Cholla), and transport sweeps
    // (Kripke) — mirroring the workflow mixes of the paper's Table III.
    let queue = vec![
        WorkflowSpec::new(vec![
            WorkflowTask::new(BenchmarkKind::Lammps, ProblemSize::X4, 2),
            WorkflowTask::new(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 1),
        ]),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 20),
        WorkflowSpec::new(vec![
            WorkflowTask::new(BenchmarkKind::ChollaGravity, ProblemSize::X4, 4),
            WorkflowTask::new(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
        ]),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X2, 30),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 8),
        WorkflowSpec::uniform(BenchmarkKind::WarpX, ProblemSize::X2, 4),
    ];

    let mut store = ProfileStore::new();
    store.profile_workflows(&device, &queue)?;
    let profiles: Vec<_> = queue
        .iter()
        .map(|w| workflow_profile(&store, w))
        .collect::<mpshare::types::Result<Vec<_>>>()?;

    let executor = Executor::new(ExecutorConfig::new(device.clone()));
    let seq = executor.run_sequential(&queue)?;
    println!(
        "queue: {} workflows, {} tasks; sequential makespan {} / energy {}\n",
        queue.len(),
        profiles.iter().map(|p| p.task_count).sum::<usize>(),
        seq.makespan,
        seq.energy
    );

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "policy", "groups", "throughput", "energy eff", "T*E"
    );
    for (name, priority, strategy) in [
        (
            "throughput-first",
            MetricPriority::Throughput,
            PlannerStrategy::Greedy,
        ),
        (
            "energy-first",
            MetricPriority::Energy,
            PlannerStrategy::Greedy,
        ),
        (
            "balanced product",
            MetricPriority::balanced_product(),
            PlannerStrategy::Greedy,
        ),
        (
            "throughput^2 product",
            MetricPriority::throughput_leaning_product(),
            PlannerStrategy::Greedy,
        ),
        (
            "auto (greedy+bestfit)",
            MetricPriority::balanced_product(),
            PlannerStrategy::Auto,
        ),
    ] {
        let planner = Planner::new(device.clone(), priority);
        let plan = planner.plan(&profiles, strategy)?;
        let report = executor.evaluate_plan(&queue, &plan)?;
        println!(
            "{:<22} {:>8} {:>11.2}x {:>11.2}x {:>10.2}",
            name,
            plan.groups.len(),
            report.metrics.throughput_gain,
            report.metrics.energy_efficiency_gain,
            report.metrics.throughput_gain * report.metrics.energy_efficiency_gain,
        );
    }

    // The ablation the paper motivates: what does profile-blind packing cost?
    let naive = fifo_plan(queue.len(), 2);
    let naive_report = executor.evaluate_plan(&queue, &naive)?;
    println!(
        "{:<22} {:>8} {:>11.2}x {:>11.2}x {:>10.2}   (interference-blind baseline)",
        "naive FIFO pairs",
        naive.groups.len(),
        naive_report.metrics.throughput_gain,
        naive_report.metrics.energy_efficiency_gain,
        naive_report.metrics.throughput_gain * naive_report.metrics.energy_efficiency_gain,
    );
    Ok(())
}
