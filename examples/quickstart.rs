//! Quickstart: profile a queue of workflows, plan an interference-aware
//! collocation, execute it, and compare against sequential scheduling.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpshare::core::{
    workflow_profile, Executor, ExecutorConfig, MetricPriority, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();
    println!(
        "device: {} ({} SMs, {} memory)",
        device.name, device.num_sms, device.memory_capacity
    );

    // A queue of four workflows with mixed utilization profiles.
    let queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 3),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 40),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 2),
    ];

    // 1. Offline profiling (paper §IV-A): one solo run per distinct task.
    let mut store = ProfileStore::new();
    let runs = store.profile_workflows(&device, &queue)?;
    println!("profiled {runs} distinct (benchmark, size) pairs\n");

    let profiles: Vec<_> = queue
        .iter()
        .map(|w| workflow_profile(&store, w))
        .collect::<mpshare::types::Result<Vec<_>>>()?;
    for p in &profiles {
        println!(
            "  {:<28} SM {:>6}  BW {:>6}  mem {:>9}  solo {:>9}",
            p.label, p.avg_sm_util, p.avg_bw_util, p.max_memory, p.duration
        );
    }

    // 2. Plan (paper §IV-B): lowest-utilization-first greedy grouping under
    //    the interference rule, partitions right-sized to saturation.
    let planner = Planner::new(device.clone(), MetricPriority::Throughput);
    let plan = planner.plan(&profiles, PlannerStrategy::Greedy)?;
    println!("\nplan ({} groups):", plan.groups.len());
    for (i, g) in plan.groups.iter().enumerate() {
        let members: Vec<String> = g
            .workflow_indices
            .iter()
            .zip(&g.partitions)
            .map(|(&w, p)| format!("{} @{}%", profiles[w].label, (p.value() * 100.0).round()))
            .collect();
        println!("  group {}: {}", i + 1, members.join("  |  "));
    }

    // 3. Execute and evaluate against the sequential baseline (§IV-C).
    let executor = Executor::new(ExecutorConfig::new(device));
    let report = executor.evaluate_plan(&queue, &plan)?;
    println!(
        "\nsequential: makespan {}  energy {}",
        report.sequential.makespan, report.sequential.energy
    );
    println!(
        "planned MPS: makespan {}  energy {}",
        report.shared.makespan, report.shared.energy
    );
    println!(
        "\nthroughput gain: {:.2}x   energy-efficiency gain: {:.2}x",
        report.metrics.throughput_gain, report.metrics.energy_efficiency_gain
    );
    Ok(())
}
