//! Compares every GPU sharing mechanism the paper describes (§II-B) on the
//! same pair of workloads: sequential, the default time-sliced scheduler,
//! CUDA Streams (fused process), CUDA MPS (default and right-sized
//! partitions), and MIG.
//!
//! ```text
//! cargo run --release --example sharing_mechanisms
//! ```

use mpshare::gpusim::DeviceSpec;
use mpshare::mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};
use mpshare::types::{Fraction, IdAllocator};
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();
    let runner = GpuRunner::new(device.clone());

    // Two medium-utilization workflows of comparable length.
    let workflows = [
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 1),
    ];
    let programs = || -> mpshare::types::Result<Vec<_>> {
        let mut ids = IdAllocator::new();
        workflows
            .iter()
            .map(|w| w.to_client_program(&device, &mut ids))
            .collect()
    };

    let mechanisms: Vec<(&str, GpuSharing)> = vec![
        ("sequential", GpuSharing::Sequential),
        (
            "time-sliced",
            GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
        ),
        ("CUDA streams", GpuSharing::Streams),
        ("MPS (100%/100%)", GpuSharing::mps_default(2)),
        (
            "MPS (70%/40%)",
            GpuSharing::Mps {
                partitions: vec![Fraction::new(0.70), Fraction::new(0.40)],
            },
        ),
        (
            "MIG (4g + 3g)",
            GpuSharing::Mig {
                layout: MigLayout::new(&device, &[MigProfile::FourSlice, MigProfile::ThreeSlice])?,
                assignment: vec![0, 1],
            },
        ),
    ];

    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>9} {:>8}",
        "mechanism", "makespan", "energy", "avg power", "SM util", "capped"
    );
    let mut baseline: Option<(f64, f64)> = None;
    for (name, sharing) in mechanisms {
        let result = runner.run(&sharing, programs()?)?;
        let t = &result.telemetry;
        let (seq_time, seq_energy) =
            *baseline.get_or_insert((result.makespan.value(), result.total_energy.joules()));
        println!(
            "{:<18} {:>9.1}s {:>11.0}J {:>9.1}W {:>9} {:>7.1}%   (T {:.2}x, E {:.2}x)",
            name,
            result.makespan.value(),
            result.total_energy.joules(),
            t.avg_power().watts(),
            t.avg_sm_util().to_string(),
            t.capped_fraction() * 100.0,
            seq_time / result.makespan.value(),
            seq_energy / result.total_energy.joules(),
        );
    }
    println!("\n(T/E = throughput and energy-efficiency gains over sequential)");
    Ok(())
}
