//! Online scheduling: workflows arrive over time (the paper assumes a
//! pre-existing queue; this is the "comprehensive scheduling framework"
//! its future-work section sketches). The dispatcher replans whenever the
//! GPU frees and is compared against a FIFO one-at-a-time baseline.
//!
//! ```text
//! cargo run --release --example online_dispatch
//! ```

use mpshare::core::{
    ArrivingWorkflow, ExecutorConfig, MetricPriority, OnlineScheduler, Planner, PlannerStrategy,
};
use mpshare::gpusim::DeviceSpec;
use mpshare::profiler::ProfileStore;
use mpshare::types::Seconds;
use mpshare::workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> mpshare::types::Result<()> {
    let device = DeviceSpec::a100x();

    // A bursty arrival process: campaigns submit batches of workflows
    // faster than a lone GPU can drain them, so a queue builds and the
    // dispatcher has real collocation choices.
    let mut rng = StdRng::seed_from_u64(2024);
    let population = [
        (BenchmarkKind::AthenaPk, ProblemSize::X4, 6),
        (BenchmarkKind::Kripke, ProblemSize::X1, 80),
        (BenchmarkKind::Kripke, ProblemSize::X2, 12),
        (BenchmarkKind::ChollaGravity, ProblemSize::X4, 2),
        (BenchmarkKind::Lammps, ProblemSize::X1, 60),
        (BenchmarkKind::WarpX, ProblemSize::X1, 8),
    ];
    let mut now = 0.0;
    let mut arrivals = Vec::new();
    for batch in 0..4 {
        for _ in 0..4 {
            let (kind, size, iters) = population[rng.random_range(0..population.len())];
            arrivals.push(ArrivingWorkflow {
                spec: WorkflowSpec::uniform(kind, size, iters),
                arrival: Seconds::new(now),
            });
        }
        if batch < 3 {
            now += rng.random_range(120.0..300.0);
        }
    }

    // Offline profiling pass over the distinct task kinds.
    let mut store = ProfileStore::new();
    let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
    store.profile_workflows(&device, &specs)?;

    let scheduler = OnlineScheduler::new(
        ExecutorConfig::new(device.clone()),
        Planner::new(device, MetricPriority::balanced_product()),
        PlannerStrategy::Auto,
    );

    let online = scheduler.run(&arrivals, &store)?;
    let fifo = scheduler.run_fifo(&arrivals, &store)?;

    println!(
        "{} workflows arriving over {:.0} min\n",
        arrivals.len(),
        now / 60.0
    );
    println!("dispatch log (interference-aware):");
    for d in &online.decisions {
        let members: Vec<String> = d
            .workflows
            .iter()
            .map(|&w| arrivals[w].spec.label())
            .collect();
        println!(
            "  t={:>7.1}s  ({:>6.1}s)  {}",
            d.at.value(),
            d.duration.value(),
            members.join("  |  ")
        );
    }
    println!(
        "\n{:<22} {:>12} {:>14} {:>12}",
        "policy", "makespan", "energy", "mean wait"
    );
    for (name, o) in [
        ("interference-aware", &online),
        ("FIFO one-at-a-time", &fifo),
    ] {
        println!(
            "{:<22} {:>11.1}s {:>13.0}J {:>11.1}s",
            name,
            o.makespan.value(),
            o.energy.joules(),
            o.mean_wait.value()
        );
    }
    println!(
        "\nonline gains: throughput {:.2}x, energy {:.2}x, wait {:.2}x shorter",
        fifo.makespan / online.makespan,
        fifo.energy.joules() / online.energy.joules(),
        fifo.mean_wait.value() / online.mean_wait.value().max(1e-9),
    );
    Ok(())
}
