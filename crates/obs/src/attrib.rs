//! Interference attribution: exact per-client slowdown decomposition.
//!
//! For a shared [`RunResult`] recorded with an event log, this module
//! decomposes each client's *excess turnaround* (shared turnaround minus
//! solo turnaround) into four physically meaningful components, the way
//! the paper's Tables I–III decompose co-run slowdowns:
//!
//! * **SM partition** — time lost because the client ran at a restricted
//!   MPS partition instead of the full device (granularity cost, present
//!   even with idle co-runners).
//! * **Bandwidth contention** — time lost to resource contention with
//!   resident co-runners: memory-bandwidth arbitration, SM
//!   oversubscription, cache/client pressure, and the device sharing
//!   overhead (everything the contention solver charges beyond the
//!   client's own partition response).
//! * **Power throttle** — time lost to the SW power cap's clock scaling,
//!   net of any throttling the client would have suffered running solo.
//! * **Memory wait** — time spent blocked waiting for device memory held
//!   by co-runners, net of solo memory waits.
//!
//! The decomposition is computed *exactly* from the piecewise-constant
//! segments and the event log — no sampling, no fitting. Within each
//! telemetry segment the resident kernel set is fixed (residency changes
//! always cut a segment boundary), so re-solving the contention model for
//! that set reproduces the engine's rates bit-for-bit, and the per-segment
//! integrands below are constants:
//!
//! ```text
//! 1 − r_b·c/r_s  =  (1 − r_p/r_s)  +  (r_p − r_b)/r_s  +  r_b·(1 − c)/r_s
//!     excess          SM partition      contention          throttle
//! ```
//!
//! where `r_s` is the kernel's solo rate (full partition), `r_p` its
//! rate alone at its *shared* partition, `r_b` its re-solved contention
//! rate in the resident set, and `c` the segment's clock factor. Summing
//! over a kernel's residency gives its span excess over `W/r_s`; the solo
//! engine run supplies the matching solo spans (whose own excess over
//! `W/r_s` is pure solo throttle), so for every completed client
//!
//! ```text
//! excess = sm_partition + bandwidth_contention + power_throttle + memory_wait
//! ```
//!
//! holds to floating-point roundoff (pinned at 1e-9 by tests). Clients
//! aborted by faults get `exact: false`: their shared turnaround ends at
//! the abort, so comparing it against a full solo run is not an identity —
//! but their resident kernels still participate in their victims'
//! contention terms, which stay exact.
//!
//! Supported sharing modes: [`SharingMode::Mps`] and
//! [`SharingMode::Streams`] (concurrent residency). Sequential and
//! time-sliced runs interleave clients in time, where "interference" is
//! queueing, not contention — attribution rejects them.

use mpshare_gpusim::{
    ClientProgram, ContentionSolver, Engine, EngineConfig, EventKind, PreparedContender, RunResult,
    SharingMode, SolveScratch,
};
use mpshare_types::{Error, Fraction, Result, TaskId};
use serde_json::Value;
use std::collections::HashMap;

/// One client's slowdown decomposition, all components in seconds of
/// turnaround time (divide by `solo_turnaround` for slowdown units).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientAttribution {
    pub client: usize,
    pub label: String,
    /// False when the client was aborted by a fault.
    pub completed: bool,
    /// Turnaround of the client running alone on the same device
    /// (computed by an actual solo engine run, not an estimate).
    pub solo_turnaround: f64,
    /// Turnaround observed in the shared run (`finished - started`).
    pub shared_turnaround: f64,
    /// `shared_turnaround - solo_turnaround`.
    pub excess: f64,
    /// `shared_turnaround / solo_turnaround`.
    pub slowdown: f64,
    pub sm_partition: f64,
    pub bandwidth_contention: f64,
    pub power_throttle: f64,
    pub memory_wait: f64,
    /// `excess - Σ components`; ~0 (|residual| < 1e-9) when `exact`.
    pub residual: f64,
    /// Whether the identity `excess = Σ components` is guaranteed (true
    /// exactly for completed clients).
    pub exact: bool,
}

/// The full report for one shared run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Sharing-mode name the run used (`"mps"` or `"streams"`).
    pub mode: String,
    pub clients: Vec<ClientAttribution>,
}

impl AttributionReport {
    /// JSON artifact (deterministic field order).
    pub fn to_json(&self) -> Value {
        let clients = self
            .clients
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("client".to_string(), Value::U64(c.client as u64)),
                    ("label".to_string(), Value::String(c.label.clone())),
                    ("completed".to_string(), Value::Bool(c.completed)),
                    (
                        "solo_turnaround_s".to_string(),
                        Value::F64(c.solo_turnaround),
                    ),
                    (
                        "shared_turnaround_s".to_string(),
                        Value::F64(c.shared_turnaround),
                    ),
                    ("excess_s".to_string(), Value::F64(c.excess)),
                    ("slowdown".to_string(), Value::F64(c.slowdown)),
                    ("sm_partition_s".to_string(), Value::F64(c.sm_partition)),
                    (
                        "bandwidth_contention_s".to_string(),
                        Value::F64(c.bandwidth_contention),
                    ),
                    ("power_throttle_s".to_string(), Value::F64(c.power_throttle)),
                    ("memory_wait_s".to_string(), Value::F64(c.memory_wait)),
                    ("residual_s".to_string(), Value::F64(c.residual)),
                    ("exact".to_string(), Value::Bool(c.exact)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("mode".to_string(), Value::String(self.mode.clone())),
            ("clients".to_string(), Value::Array(clients)),
        ])
    }

    /// Plain-text table (one row per client).
    pub fn render_table(&self) -> String {
        let mut out = String::from(
            "client  label                     slowdown  excess_s  sm_part  contention  throttle  mem_wait  residual\n",
        );
        for c in &self.clients {
            out.push_str(&format!(
                "{:<6}  {:<24}  {:>8.4}  {:>8.4}  {:>7.4}  {:>10.4}  {:>8.4}  {:>8.4}  {:>8.1e}{}\n",
                c.client,
                truncate(&c.label, 24),
                c.slowdown,
                c.excess,
                c.sm_partition,
                c.bandwidth_contention,
                c.power_throttle,
                c.memory_wait,
                c.residual,
                if c.exact { "" } else { "  (inexact: aborted)" },
            ));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s.chars().take(n).collect()
    }
}

/// One contiguous residency of a kernel on the GPU (aborted clients'
/// in-flight kernels are closed at the abort time: they contended until
/// the moment they died).
struct ResidencySpan {
    client: usize,
    start: f64,
    end: f64,
    prepared: PreparedContender,
    /// Solo rate at full partition (the profile baseline's rate).
    r_solo: f64,
    /// Rate running alone at the client's *shared* partition.
    r_part: f64,
}

/// Decomposes each client's slowdown in `result` against its solo
/// profile. `config` and `programs` must be exactly the ones the shared
/// run used; `result` must carry an event log
/// (`EngineConfig::record_events`).
pub fn attribute(
    config: &EngineConfig,
    programs: &[ClientProgram],
    result: &RunResult,
) -> Result<AttributionReport> {
    let (mode_name, partition_of): (&str, Box<dyn Fn(usize) -> Fraction>) = match &config.mode {
        SharingMode::Mps { partitions } => {
            if partitions.len() != programs.len() {
                return Err(Error::InvalidConfig(format!(
                    "{} partitions for {} programs",
                    partitions.len(),
                    programs.len()
                )));
            }
            let parts = partitions.clone();
            ("mps", Box::new(move |i| parts[i]))
        }
        SharingMode::Streams => ("streams", Box::new(|_| Fraction::ONE)),
        other => {
            return Err(Error::InvalidConfig(format!(
                "attribution requires concurrent residency (MPS or Streams); run used {other:?}"
            )));
        }
    };
    if result.events.is_empty() {
        return Err(Error::InvalidConfig(
            "attribution requires an event log: run with EngineConfig::record_events".into(),
        ));
    }
    if result.clients.len() != programs.len() {
        return Err(Error::InvalidConfig(format!(
            "{} programs for {} client outcomes",
            programs.len(),
            result.clients.len()
        )));
    }

    let same_process = matches!(config.mode, SharingMode::Streams);
    let solver = ContentionSolver::new(config.device.clone(), config.sharing_overhead)
        .with_same_process(same_process);
    let mut scratch = SolveScratch::default();
    let mut allocs = Vec::new();
    let mut solve_single = |p: PreparedContender| -> f64 {
        solver.solve_prepared_into(&[p], &mut scratch, &mut allocs);
        allocs[0].rate
    };

    // Reconstruct residency spans from the event log, closing aborted
    // clients' in-flight kernels at their fault time.
    let kernel_of = |client: usize, task: TaskId, kernel_index: usize| {
        programs[client]
            .tasks
            .iter()
            .find(|t| t.id == task)
            .and_then(|t| t.kernels.get(kernel_index))
            .ok_or_else(|| {
                Error::InvalidConfig(format!(
                    "event log references unknown kernel {kernel_index} of task {task} on client {client}"
                ))
            })
    };
    let mut spans: Vec<ResidencySpan> = Vec::new();
    let mut open: HashMap<(usize, TaskId, usize), usize> = HashMap::new();
    // Memory-wait bookkeeping: blocked time per client.
    let mut mem_wait = vec![0.0f64; programs.len()];
    let mut blocked_since: Vec<Option<f64>> = vec![None; programs.len()];
    for event in result.events.events() {
        let at = event.at.value();
        match &event.kind {
            EventKind::KernelStart { task, kernel_index } => {
                let kernel = kernel_of(event.client, *task, *kernel_index)?;
                let partition = partition_of(event.client);
                let prepared = PreparedContender::new(&config.device, kernel, partition);
                let prepared_solo = PreparedContender::new(&config.device, kernel, Fraction::ONE);
                let r_part = solve_single(prepared);
                let r_solo = solve_single(prepared_solo);
                open.insert((event.client, *task, *kernel_index), spans.len());
                spans.push(ResidencySpan {
                    client: event.client,
                    start: at,
                    end: f64::INFINITY,
                    prepared,
                    r_solo,
                    r_part,
                });
            }
            EventKind::KernelEnd { task, kernel_index } => {
                if let Some(idx) = open.remove(&(event.client, *task, *kernel_index)) {
                    spans[idx].end = at;
                }
            }
            EventKind::MemoryBlocked { .. } => {
                blocked_since[event.client] = Some(at);
            }
            EventKind::MemoryGranted { .. } => {
                if let Some(since) = blocked_since[event.client].take() {
                    mem_wait[event.client] += at - since;
                }
            }
            EventKind::ClientFault { .. } => {
                // The abort removes the client's kernel from the GPU and
                // ends any memory wait.
                open.retain(|&(client, _, _), &mut idx| {
                    if client == event.client {
                        spans[idx].end = at;
                        false
                    } else {
                        true
                    }
                });
                if let Some(since) = blocked_since[event.client].take() {
                    mem_wait[event.client] += at - since;
                }
            }
            _ => {}
        }
    }
    for (_, idx) in open {
        // Unterminated span (log capacity overflow): close at makespan so
        // the integrals stay finite; exactness for its client is already
        // void in that case.
        spans[idx].end = result.makespan.value();
    }

    // Integrate the decomposition over every (segment × resident span)
    // cell. Resident sets are constant within a segment, so one solve per
    // distinct set (memoized) covers all its cells.
    let mut sm_partition = vec![0.0f64; programs.len()];
    let mut contention = vec![0.0f64; programs.len()];
    let mut throttle_shared = vec![0.0f64; programs.len()];
    let mut solved: HashMap<Vec<usize>, Vec<f64>> = HashMap::new();
    for segment in result.telemetry.segments() {
        let (s0, s1) = (segment.start.value(), segment.end.value());
        // Spans resident during this segment (positive overlap implies
        // whole-segment residency: residency changes cut segments).
        let mut resident: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, sp)| sp.start < s1 && sp.end > s0)
            .map(|(i, _)| i)
            .collect();
        if resident.is_empty() {
            continue;
        }
        // The engine schedules running clients in ascending index order;
        // replicate it so the solve is bit-identical.
        resident.sort_by_key(|&i| spans[i].client);
        let rates = solved.entry(resident.clone()).or_insert_with(|| {
            let prepared: Vec<PreparedContender> =
                resident.iter().map(|&i| spans[i].prepared).collect();
            solver.solve_prepared_into(&prepared, &mut scratch, &mut allocs);
            allocs.iter().map(|a| a.rate).collect()
        });
        for (slot, &i) in resident.iter().enumerate() {
            let span = &spans[i];
            let dt = span.end.min(s1) - span.start.max(s0);
            if dt <= 0.0 {
                continue;
            }
            let r_b = rates[slot];
            let c = span.client;
            sm_partition[c] += dt * (1.0 - span.r_part / span.r_solo);
            contention[c] += dt * (span.r_part - r_b) / span.r_solo;
            throttle_shared[c] += dt * r_b * (1.0 - segment.clock_factor) / span.r_solo;
        }
    }

    // Solo baselines: actually run each client alone (same device, full
    // partition, no faults) and measure its turnaround, throttle time and
    // memory waits from its own log and segments.
    let mut clients = Vec::with_capacity(programs.len());
    for (i, program) in programs.iter().enumerate() {
        let mut solo_config = EngineConfig::new(config.device.clone(), SharingMode::mps_uniform(1))
            .with_sharing_overhead(config.sharing_overhead)
            .with_event_log(true);
        solo_config.max_events = config.max_events;
        let solo = Engine::new(solo_config, vec![program.clone()])?.run()?;
        let solo_client = &solo.clients[0];
        let solo_turnaround = (solo_client.finished - solo_client.started).value();

        // Solo throttle: Σ over solo kernel residency of (1 − clock')·dt.
        let mut solo_throttle = 0.0f64;
        for (_, _, _, start, end) in solo.events.kernel_spans() {
            let (k0, k1) = (start.value(), end.value());
            for segment in solo.telemetry.segments() {
                let dt = segment.end.value().min(k1) - segment.start.value().max(k0);
                if dt > 0.0 {
                    solo_throttle += dt * (1.0 - segment.clock_factor);
                }
            }
        }
        // Solo memory waits (a client can self-block only if a task barely
        // fits; include it for completeness).
        let mut solo_mem_wait = 0.0f64;
        let mut since: Option<f64> = None;
        for event in solo.events.events() {
            match event.kind {
                EventKind::MemoryBlocked { .. } => since = Some(event.at.value()),
                EventKind::MemoryGranted { .. } => {
                    if let Some(s) = since.take() {
                        solo_mem_wait += event.at.value() - s;
                    }
                }
                _ => {}
            }
        }

        let outcome = &result.clients[i];
        let shared_turnaround = (outcome.finished - outcome.started).value();
        let excess = shared_turnaround - solo_turnaround;
        let power_throttle = throttle_shared[i] - solo_throttle;
        let memory_wait = mem_wait[i] - solo_mem_wait;
        let total = sm_partition[i] + contention[i] + power_throttle + memory_wait;
        let completed = !outcome.failed;
        clients.push(ClientAttribution {
            client: i,
            label: outcome.label.clone(),
            completed,
            solo_turnaround,
            shared_turnaround,
            excess,
            slowdown: if solo_turnaround > 0.0 {
                shared_turnaround / solo_turnaround
            } else {
                1.0
            },
            sm_partition: sm_partition[i],
            bandwidth_contention: contention[i],
            power_throttle,
            memory_wait,
            residual: excess - total,
            exact: completed,
        });
    }

    Ok(AttributionReport {
        mode: mode_name.to_string(),
        clients,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::{DeviceSpec, FaultPlan, KernelSpec, LaunchConfig, TaskProgram};
    use mpshare_types::{MemBytes, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn kernel(dur: f64, sm: f64, bw: f64) -> KernelSpec {
        KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 64, 1024),
            Seconds::new(dur),
        )
        .with_sm_demand(Fraction::new(sm))
        .with_bw_demand(Fraction::new(bw))
    }

    fn program(label: &str, id: u64, kernels: Vec<KernelSpec>, memory: MemBytes) -> ClientProgram {
        let mut task = TaskProgram::new(mpshare_types::TaskId::new(id), label, memory)
            .with_setup(Seconds::new(0.5));
        for k in kernels {
            task.push_kernel(k);
        }
        let mut p = ClientProgram::new(label);
        p.push_task(task);
        p
    }

    fn shared_run(config: &EngineConfig, programs: &[ClientProgram]) -> RunResult {
        Engine::new(config.clone(), programs.to_vec())
            .unwrap()
            .run()
            .unwrap()
    }

    fn assert_exact(report: &AttributionReport) {
        for c in &report.clients {
            assert!(c.exact, "client {} should be exact", c.client);
            assert!(
                c.residual.abs() < 1e-9,
                "client {}: residual {} (excess {}, components {} {} {} {})",
                c.client,
                c.residual,
                c.excess,
                c.sm_partition,
                c.bandwidth_contention,
                c.power_throttle,
                c.memory_wait
            );
        }
    }

    #[test]
    fn contention_heavy_pair_decomposes_exactly() {
        let programs = vec![
            program(
                "bw-hog-a",
                1,
                vec![kernel(4.0, 0.4, 0.8); 3],
                MemBytes::from_gib(2),
            ),
            program(
                "bw-hog-b",
                2,
                vec![kernel(3.0, 0.5, 0.7); 4],
                MemBytes::from_gib(2),
            ),
        ];
        let config = EngineConfig::new(
            dev(),
            SharingMode::Mps {
                partitions: vec![Fraction::new(0.5), Fraction::new(0.5)],
            },
        )
        .with_sharing_overhead(0.002)
        .with_event_log(true);
        let result = shared_run(&config, &programs);
        let report = attribute(&config, &programs, &result).unwrap();
        assert_exact(&report);
        for c in &report.clients {
            assert!(c.slowdown > 1.0, "co-run must slow client {}", c.client);
            assert!(c.sm_partition > 0.0, "half partitions cost time");
            assert!(
                c.bandwidth_contention > 0.0,
                "oversubscribed bandwidth must show up as contention"
            );
        }
    }

    #[test]
    fn throttled_run_attributes_power_component() {
        // High power-scale kernels push the board past the cap only when
        // co-resident: the throttle component is pure sharing cost.
        let hot = |dur: f64| kernel(dur, 0.45, 0.2).with_power_scale(1.6);
        let programs = vec![
            program("hot-a", 1, vec![hot(5.0); 2], MemBytes::from_gib(2)),
            program("hot-b", 2, vec![hot(4.0); 3], MemBytes::from_gib(2)),
        ];
        let config = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_event_log(true);
        let result = shared_run(&config, &programs);
        assert!(
            result.telemetry.capped_time().value() > 0.0,
            "test needs an actually-throttled shared run"
        );
        let report = attribute(&config, &programs, &result).unwrap();
        assert_exact(&report);
        assert!(
            report.clients.iter().any(|c| c.power_throttle > 1e-6),
            "throttled segments must surface as a power component"
        );
    }

    #[test]
    fn memory_blocked_client_attributes_wait() {
        // Each task wants 60% of device memory: the second client must
        // wait for the first to finish.
        let big = MemBytes::from_gib(48);
        let programs = vec![
            program("mem-a", 1, vec![kernel(3.0, 0.3, 0.2); 2], big),
            program("mem-b", 2, vec![kernel(3.0, 0.3, 0.2); 2], big),
        ];
        let config = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_event_log(true);
        let result = shared_run(&config, &programs);
        let report = attribute(&config, &programs, &result).unwrap();
        assert_exact(&report);
        assert!(
            report.clients[1].memory_wait > 1.0,
            "blocked client must report memory wait, got {}",
            report.clients[1].memory_wait
        );
        assert!(report.clients[0].memory_wait.abs() < 1e-9);
    }

    #[test]
    fn survivors_stay_exact_when_a_corunner_is_aborted() {
        let programs = vec![
            program(
                "victim",
                1,
                vec![kernel(4.0, 0.4, 0.8); 3],
                MemBytes::from_gib(2),
            ),
            program(
                "survivor",
                2,
                vec![kernel(3.0, 0.5, 0.7); 4],
                MemBytes::from_gib(2),
            ),
        ];
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(5.0), 0);
        let config = EngineConfig::new(dev(), SharingMode::mps_uniform(2))
            .with_event_log(true)
            .with_fault_plan(faults);
        let result = shared_run(&config, &programs);
        assert!(result.clients[0].failed && !result.clients[1].failed);
        let report = attribute(&config, &programs, &result).unwrap();
        assert!(
            !report.clients[0].exact,
            "aborted client is flagged inexact"
        );
        let survivor = &report.clients[1];
        assert!(survivor.exact);
        assert!(
            survivor.residual.abs() < 1e-9,
            "survivor residual {} — aborted co-runner's residency must still count",
            survivor.residual
        );
    }

    #[test]
    fn rejects_unsupported_modes_and_missing_logs() {
        let programs = vec![program(
            "solo",
            1,
            vec![kernel(1.0, 0.3, 0.2)],
            MemBytes::from_gib(1),
        )];
        let ts = EngineConfig::new(dev(), SharingMode::timesliced_default()).with_event_log(true);
        let result = shared_run(&ts, &programs);
        assert!(attribute(&ts, &programs, &result).is_err());

        let mps = EngineConfig::new(dev(), SharingMode::mps_uniform(1));
        let result = shared_run(&mps, &programs);
        // No event log recorded -> rejected.
        assert!(attribute(&mps, &programs, &result).is_err());
    }

    #[test]
    fn report_serializes_and_renders() {
        let programs = vec![
            program(
                "a",
                1,
                vec![kernel(2.0, 0.4, 0.5); 2],
                MemBytes::from_gib(1),
            ),
            program(
                "b",
                2,
                vec![kernel(2.0, 0.4, 0.5); 2],
                MemBytes::from_gib(1),
            ),
        ];
        let config = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_event_log(true);
        let result = shared_run(&config, &programs);
        let report = attribute(&config, &programs, &result).unwrap();
        let json = serde_json::to_string(&report.to_json()).unwrap();
        let parsed: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.get("clients").unwrap().as_array().unwrap().len(), 2);
        assert!(json.contains("bandwidth_contention_s"));
        let table = report.render_table();
        assert!(table.contains("slowdown"));
        assert_eq!(table.lines().count(), 3, "header + one row per client");
    }
}
