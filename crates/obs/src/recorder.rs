//! The span/event recorder: structured control-plane telemetry.
//!
//! Every layer above the engine (planner, anneal, online scheduler, MPS
//! daemon/server/runner, executor, harness) emits [`ObsRecord`]s into one
//! process-wide [`Recorder`]. The design constraints, in order:
//!
//! * **Zero-cost when disabled.** Recording is off by default; the only
//!   cost on a hot path is one relaxed atomic load, and payload
//!   construction is behind a closure that never runs while disabled.
//!   Simulation outputs are bit-identical either way — the recorder
//!   observes, it never participates.
//! * **Deterministic.** No wall-clock reads anywhere: records carry the
//!   *simulated* time of the subsystem that emitted them (when one
//!   exists) and a process-wide monotonic sequence number. Under
//!   `mpshare_par::set_serial(true)` two identical runs produce
//!   byte-identical drains; under parallel execution only the sequence
//!   interleaving varies, never the set of records.
//! * **Std-only and sharded**, like `mpshare-profiler`'s `ProfileCache`:
//!   records land in one of 16 mutex-guarded shards selected by sequence
//!   number, so concurrent emitters rarely contend; [`Recorder::drain`]
//!   restores the global order by sequence number.

use crate::metrics::MetricsRegistry;
use crate::timeline::TimelineStore;
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which control-plane subsystem a record belongs to. Tracks map 1:1 to
/// Perfetto process tracks in the merged export (see [`crate::perfetto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Collocation plan search: greedy/best-fit/exhaustive/anneal decision
    /// audits.
    Planner,
    /// The online dispatcher: dispatch, retry, backoff.
    Scheduler,
    /// The MPS control plane: server spawn/reap, crashes, fault-domain
    /// rewrites.
    Daemon,
    /// Plan execution legs and harness experiment phases.
    Executor,
}

impl Track {
    /// Stable display name (also the Perfetto process name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Planner => "planner",
            Track::Scheduler => "scheduler",
            Track::Daemon => "daemon",
            Track::Executor => "executor",
        }
    }

    /// The pid of this track in the merged Perfetto export. Pids 0–2 are
    /// taken by the engine timeline (device counters, task spans, kernel
    /// spans).
    pub fn pid(self) -> u64 {
        match self {
            Track::Planner => 3,
            Track::Scheduler => 4,
            Track::Daemon => 5,
            Track::Executor => 6,
        }
    }
}

/// One recorded span or point event.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRecord {
    /// Process-wide monotonic sequence number (drain order).
    pub seq: u64,
    pub track: Track,
    /// Dotted event name, e.g. `"plan.candidate"` or `"sched.dispatch"`.
    pub name: String,
    /// Simulated time in seconds, when the emitting subsystem has one
    /// (the online scheduler, the engine-facing runner). `None` for
    /// offline work such as plan search.
    pub sim_start: Option<f64>,
    /// Simulated duration in seconds; `Some` makes this a span, `None` a
    /// point event.
    pub sim_dur: Option<f64>,
    /// Structured payload — the decision audit, queue state, etc.
    pub payload: Value,
}

const SHARDS: usize = 16;
/// Per-shard record cap: bounds recorder memory like `EventLog`'s
/// capacity bounds the engine log (records past the cap are counted and
/// dropped).
const SHARD_CAPACITY: usize = 1 << 16;

/// The sharded recorder. One process-wide instance lives behind
/// [`global`]; tests may construct private ones.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    seq: AtomicU64,
    shards: [Mutex<Vec<ObsRecord>>; SHARDS],
    dropped: AtomicU64,
    metrics: MetricsRegistry,
    timelines: TimelineStore,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            dropped: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            timelines: TimelineStore::new(),
        }
    }

    /// The single relaxed load every instrumentation site pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Enabling also registers the default
    /// metric families so exports always carry the full series set (at
    /// zero) even when a code path never ran.
    pub fn set_enabled(&self, on: bool) {
        if on {
            self.metrics.register_defaults();
        }
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The metrics registry that shares this recorder's lifecycle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The timeline store (simulated-time series and exact quantile
    /// tracks) that shares this recorder's lifecycle.
    pub fn timelines(&self) -> &TimelineStore {
        &self.timelines
    }

    /// Emits one record (no-op while disabled). The payload closure only
    /// runs when recording is on, so call sites pay nothing to build
    /// decision audits on the disabled path.
    pub fn emit(
        &self,
        track: Track,
        name: &str,
        sim_start: Option<f64>,
        sim_dur: Option<f64>,
        payload: impl FnOnce() -> Value,
    ) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = ObsRecord {
            seq,
            track,
            name: name.to_string(),
            sim_start,
            sim_dur,
            payload: payload(),
        };
        let mut shard = self.shards[(seq as usize) % SHARDS]
            .lock()
            .expect("recorder shard poisoned");
        if shard.len() >= SHARD_CAPACITY {
            drop(shard);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shard.push(record);
    }

    /// Records dropped after a shard hit its capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Takes every record out of the shards, restoring the global
    /// sequence order.
    pub fn drain(&self) -> Vec<ObsRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().expect("recorder shard poisoned"));
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Copies every record without removing them (sequence-ordered).
    pub fn snapshot(&self) -> Vec<ObsRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .expect("recorder shard poisoned")
                    .iter()
                    .cloned(),
            );
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("recorder shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears all records, the sequence counter, the drop counter, and
    /// the metrics registry — a fresh start for tests and repeated
    /// harness invocations.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().expect("recorder shard poisoned").clear();
        }
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.metrics.reset();
        self.timelines.reset();
        if self.is_enabled() {
            self.metrics.register_defaults();
        }
    }
}

/// The process-wide recorder every crate emits into.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn disabled_recorder_ignores_emits() {
        let r = Recorder::new();
        let mut built = false;
        r.emit(Track::Planner, "x", None, None, || {
            built = true;
            Value::Null
        });
        assert!(!built, "payload closure must not run while disabled");
        assert!(r.is_empty());
    }

    #[test]
    fn records_drain_in_sequence_order() {
        let r = Recorder::new();
        r.set_enabled(true);
        for i in 0..100 {
            r.emit(
                Track::Scheduler,
                "e",
                Some(i as f64),
                None,
                || json!({"i": i}),
            );
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 100);
        for (i, rec) in drained.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.sim_start, Some(i as f64));
        }
        assert!(r.is_empty(), "drain removes everything");
    }

    #[test]
    fn snapshot_keeps_records() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.emit(Track::Daemon, "a", None, None, || Value::Null);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.len(), 1);
        r.reset();
        assert!(r.is_empty());
    }

    #[test]
    fn spans_and_instants_are_distinguished() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.emit(Track::Executor, "span", Some(1.0), Some(2.0), || {
            Value::Null
        });
        r.emit(Track::Executor, "instant", Some(3.0), None, || Value::Null);
        let d = r.drain();
        assert_eq!(d[0].sim_dur, Some(2.0));
        assert_eq!(d[1].sim_dur, None);
    }

    #[test]
    fn concurrent_emitters_never_lose_records() {
        let r = Recorder::new();
        r.set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..200 {
                        r.emit(Track::Planner, "p", None, None, || json!({"t": t, "i": i}));
                    }
                });
            }
        });
        let drained = r.drain();
        assert_eq!(drained.len(), 8 * 200);
        // Sequence numbers are exactly 0..n after a drain.
        for (i, rec) in drained.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
        }
    }

    #[test]
    fn capacity_drops_are_counted() {
        let r = Recorder::new();
        r.set_enabled(true);
        // One shard fills after SHARD_CAPACITY records land in it; with
        // sequence-striped sharding that takes 16 * capacity emits total.
        for _ in 0..(SHARDS * SHARD_CAPACITY + SHARDS) {
            r.emit(Track::Planner, "x", None, None, || Value::Null);
        }
        assert_eq!(r.dropped(), SHARDS as u64);
        assert_eq!(r.len(), SHARDS * SHARD_CAPACITY);
    }

    #[test]
    fn track_names_and_pids_are_stable() {
        assert_eq!(Track::Planner.pid(), 3);
        assert_eq!(Track::Scheduler.pid(), 4);
        assert_eq!(Track::Daemon.pid(), 5);
        assert_eq!(Track::Executor.pid(), 6);
        assert_eq!(Track::Daemon.name(), "daemon");
    }
}
