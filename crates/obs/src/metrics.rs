//! Metrics registry: counters, gauges, and fixed-bucket histograms with
//! Prometheus text exposition and JSON export.
//!
//! Every value here is deterministic: counters count simulation facts
//! (cache hits, rate solves, faults), gauges hold simulation-derived
//! values (goodput), and histograms observe *simulated* durations — never
//! wall-clock readings, which are banned by the recorder's determinism
//! rules (DESIGN.md "Observability"). Exports iterate `BTreeMap`s, so two
//! identical runs render byte-identical artifacts.

use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Canonical metric names. Instrumentation sites and the trace-smoke
/// validator both reference these constants so they cannot drift apart.
pub mod names {
    // Cache hit rates.
    pub const PROFILE_CACHE_HITS: &str = "mpshare_profile_cache_hits_total";
    pub const PROFILE_CACHE_MISSES: &str = "mpshare_profile_cache_misses_total";
    pub const ESTIMATE_MEMO_HITS: &str = "mpshare_estimate_memo_hits_total";
    pub const ESTIMATE_MEMO_MISSES: &str = "mpshare_estimate_memo_misses_total";
    // Engine hot-path counters (from `EngineStats`).
    pub const ENGINE_RUNS: &str = "mpshare_engine_runs_total";
    pub const ENGINE_EVENTS: &str = "mpshare_engine_events_total";
    pub const ENGINE_RATE_SOLVES: &str = "mpshare_engine_rate_solves_total";
    pub const ENGINE_INCREMENTAL_SOLVES: &str = "mpshare_engine_incremental_solves_total";
    pub const ENGINE_FULL_SOLVES: &str = "mpshare_engine_full_solves_total";
    pub const ENGINE_RESIDENT_CHANGES: &str = "mpshare_engine_resident_changes_total";
    /// Heap allocations observed during a measured steady-state engine
    /// window (reported by the counting-allocator gate; pinned to 0).
    pub const ENGINE_STEADY_STATE_ALLOCS: &str = "mpshare_engine_steady_state_allocs_total";
    pub const ENGINE_SIM_SECONDS: &str = "mpshare_engine_sim_seconds_total";
    /// Global tick-heap pops dispatched to engines by the component core
    /// (zero for legacy-loop runs; see `mpshare-gpusim`'s component module).
    pub const ENGINE_COMPONENT_TICKS: &str = "mpshare_engine_component_ticks_total";
    // Fault / recovery accounting.
    pub const FAULTS_INJECTED: &str = "mpshare_faults_injected_total";
    pub const CLIENTS_FAILED: &str = "mpshare_clients_failed_total";
    pub const TASKS_COMPLETED: &str = "mpshare_tasks_completed_total";
    pub const TASKS_FAILED: &str = "mpshare_tasks_failed_total";
    pub const SCHED_DISPATCHES: &str = "mpshare_scheduler_dispatches_total";
    pub const SCHED_RETRIES: &str = "mpshare_scheduler_retries_total";
    pub const SCHED_FAULTS: &str = "mpshare_scheduler_faults_total";
    pub const SCHED_ABANDONED: &str = "mpshare_scheduler_abandoned_total";
    // Plan search.
    pub const PLAN_CALLS: &str = "mpshare_plan_calls_total";
    /// Planning calls that reused the previous call's translated estimate
    /// memo and incumbent (see `Planner::plan_warm`).
    pub const PLAN_WARM_START_HITS: &str = "mpshare_plan_warm_start_hits_total";
    pub const PLAN_CANDIDATES: &str = "mpshare_plan_candidates_total";
    pub const PLAN_REJECTS: &str = "mpshare_plan_rejects_total";
    pub const ANNEAL_ACCEPTED: &str = "mpshare_anneal_accepted_total";
    pub const ANNEAL_REJECTED: &str = "mpshare_anneal_rejected_total";
    // Control plane.
    pub const SERVER_SPAWNS: &str = "mpshare_daemon_server_spawns_total";
    pub const SERVER_REAPS: &str = "mpshare_daemon_server_reaps_total";
    pub const SERVER_CRASHES: &str = "mpshare_server_crashes_total";
    pub const FAULT_DOMAIN_REWRITES: &str = "mpshare_fault_domain_rewrites_total";
    // Gauges.
    pub const GOODPUT: &str = "mpshare_goodput";
    pub const WASTED_ENERGY_JOULES: &str = "mpshare_wasted_energy_joules";
    // Histograms (simulated seconds / dimensionless).
    pub const GROUP_MAKESPAN_SECONDS: &str = "mpshare_group_makespan_sim_seconds";
    pub const QUEUE_DEPTH: &str = "mpshare_scheduler_queue_depth";
    pub const ENGINE_QUEUE_DEPTH: &str = "mpshare_engine_event_queue_depth";
    /// Max live component tick-heap depth per run (one entry per component:
    /// 1 for a solo engine, more under multi-component compositions).
    pub const ENGINE_HEAP_DEPTH: &str = "mpshare_engine_tick_heap_depth";
    pub const PHASE_SIM_SECONDS: &str = "mpshare_experiment_phase_sim_seconds";
}

/// Fixed bucket layout for simulated-duration histograms (seconds).
pub const SIM_SECONDS_BUCKETS: [f64; 8] = [0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0];
/// Fixed bucket layout for small cardinalities (queue depth, group size).
pub const DEPTH_BUCKETS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 48.0];

/// One fixed-bucket histogram: `counts[i]` observes `v <= bounds[i]`
/// cumulative-style at render time; the final implicit bucket is `+Inf`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len() + 1`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    /// Non-finite observations rejected by [`Histogram::observe`].
    dropped: u64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            dropped: 0,
        }
    }

    /// The bucket bounds this histogram was created with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Observes one value. Non-finite values are rejected and counted in
    /// [`Histogram::dropped`]: a NaN would otherwise land in the `+Inf`
    /// bucket (every `v <= b` comparison is false) and poison `sum`
    /// forever, and ±Inf would poison `sum` the same way.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Non-finite observations rejected (never counted in `count`/`sum`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cumulative counts per bound, Prometheus `le` semantics (the
    /// trailing `+Inf` bucket equals `count`).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        for (i, &b) in self.bounds.iter().enumerate() {
            acc += self.counts[i];
            out.push((b, acc));
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry. All methods are cheap no-ops in the sense that callers
/// guard them behind `obs::enabled()`; the registry itself is always
/// willing to record.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers every known metric family at zero so exports are
    /// complete (and byte-stable) even when a subsystem never ran.
    pub fn register_defaults(&self) {
        use names::*;
        let mut inner = self.inner.lock().expect("metrics poisoned");
        for name in [
            PROFILE_CACHE_HITS,
            PROFILE_CACHE_MISSES,
            ESTIMATE_MEMO_HITS,
            ESTIMATE_MEMO_MISSES,
            ENGINE_RUNS,
            ENGINE_EVENTS,
            ENGINE_RATE_SOLVES,
            ENGINE_INCREMENTAL_SOLVES,
            ENGINE_FULL_SOLVES,
            ENGINE_RESIDENT_CHANGES,
            ENGINE_STEADY_STATE_ALLOCS,
            ENGINE_COMPONENT_TICKS,
            FAULTS_INJECTED,
            CLIENTS_FAILED,
            TASKS_COMPLETED,
            TASKS_FAILED,
            SCHED_DISPATCHES,
            SCHED_RETRIES,
            SCHED_FAULTS,
            SCHED_ABANDONED,
            PLAN_CALLS,
            PLAN_WARM_START_HITS,
            PLAN_CANDIDATES,
            PLAN_REJECTS,
            ANNEAL_ACCEPTED,
            ANNEAL_REJECTED,
            SERVER_SPAWNS,
            SERVER_REAPS,
            SERVER_CRASHES,
            FAULT_DOMAIN_REWRITES,
        ] {
            inner.counters.entry(name.to_string()).or_insert(0);
        }
        inner.gauges.entry(GOODPUT.to_string()).or_insert(0.0);
        inner
            .gauges
            .entry(WASTED_ENERGY_JOULES.to_string())
            .or_insert(0.0);
        // Simulated-seconds counter is a float series, kept with gauges
        // for rendering but documented as a counter.
        inner
            .gauges
            .entry(ENGINE_SIM_SECONDS.to_string())
            .or_insert(0.0);
        for (name, bounds) in [
            (GROUP_MAKESPAN_SECONDS, &SIM_SECONDS_BUCKETS[..]),
            (PHASE_SIM_SECONDS, &SIM_SECONDS_BUCKETS[..]),
            (QUEUE_DEPTH, &DEPTH_BUCKETS[..]),
            (ENGINE_QUEUE_DEPTH, &DEPTH_BUCKETS[..]),
            (ENGINE_HEAP_DEPTH, &DEPTH_BUCKETS[..]),
        ] {
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds));
        }
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn counter_get(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.gauges.insert(name.to_string(), v);
    }

    pub fn gauge_add(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.gauges.entry(name.to_string()).or_insert(0.0) += v;
    }

    pub fn gauge_get(&self, name: &str) -> f64 {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Observes into a histogram, creating it with `bounds` on first use.
    ///
    /// Layouts are fixed at creation — **first wins**: a later call with
    /// different `bounds` for the same name observes into the original
    /// layout (the passed bounds are ignored). Disagreeing layouts are a
    /// call-site bug — two sites sharing a name must share a `names`-style
    /// bounds constant — so debug builds assert the layouts agree.
    pub fn histogram_observe(&self, name: &str, bounds: &[f64], v: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        debug_assert_eq!(
            h.bounds(),
            bounds,
            "histogram {name:?} observed with a different bucket layout \
             than it was created with (first layout wins)"
        );
        h.observe(v);
    }

    pub fn histogram_count(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.histograms.get(name).map(|h| h.count()).unwrap_or(0)
    }

    /// Non-finite observations rejected by the named histogram.
    pub fn histogram_dropped(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics poisoned");
        inner.histograms.get(name).map(|h| h.dropped()).unwrap_or(0)
    }

    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner = Inner::default();
    }

    /// Prometheus text exposition (version 0.0.4). Deterministic: metric
    /// families render in name order, floats in shortest-roundtrip form.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (le, c) in h.cumulative() {
                if le.is_infinite() {
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {c}\n"));
                } else {
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {c}\n"));
                }
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_dropped {}\n", h.dropped()));
        }
        out
    }

    /// JSON export: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {"buckets": [[le, cum], ...], "sum", "count"}}}`.
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock().expect("metrics poisoned");
        let counters = Value::Object(
            inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::U64(v)))
                .collect(),
        );
        let gauges = Value::Object(
            inner
                .gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::F64(v)))
                .collect(),
        );
        let histograms = Value::Object(
            inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Array(
                        h.cumulative()
                            .into_iter()
                            .map(|(le, c)| {
                                Value::Array(vec![
                                    if le.is_infinite() {
                                        Value::String("+Inf".to_string())
                                    } else {
                                        Value::F64(le)
                                    },
                                    Value::U64(c),
                                ])
                            })
                            .collect(),
                    );
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("buckets".to_string(), buckets),
                            ("sum".to_string(), Value::F64(h.sum())),
                            ("count".to_string(), Value::U64(h.count())),
                            ("dropped".to_string(), Value::U64(h.dropped())),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = MetricsRegistry::new();
        m.counter_add("a_total", 2);
        m.counter_add("a_total", 3);
        assert_eq!(m.counter_get("a_total"), 5);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 5"));
    }

    #[test]
    fn gauges_set_and_add() {
        let m = MetricsRegistry::new();
        m.gauge_set("g", 1.5);
        m.gauge_add("g", 0.25);
        assert_eq!(m.gauge_get("g"), 1.75);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let cum = h.cumulative();
        assert_eq!(cum[0], (1.0, 1));
        assert_eq!(cum[1], (10.0, 2));
        assert!(cum[2].0.is_infinite());
        assert_eq!(cum[2].1, 3);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 105.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn histogram_rejects_non_finite_observations() {
        // Regression: a NaN used to land in the +Inf bucket and poison
        // `sum` forever (NaN `<=` anything is false); ±Inf poisoned `sum`
        // the same way.
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.dropped(), 3);
        assert_eq!(
            h.cumulative().last().unwrap().1,
            0,
            "+Inf bucket stays empty"
        );
        h.observe(5.0);
        assert_eq!(h.count(), 1);
        assert!(h.sum().is_finite());
        assert_eq!(h.dropped(), 3);
    }

    #[test]
    fn registry_counts_histogram_drops() {
        let m = MetricsRegistry::new();
        m.histogram_observe("h", &[1.0], f64::NAN);
        m.histogram_observe("h", &[1.0], 0.5);
        assert_eq!(m.histogram_count("h"), 1);
        assert_eq!(m.histogram_dropped("h"), 1);
        let text = m.to_prometheus();
        assert!(text.contains("h_dropped 1"));
        let json = serde_json::to_string(&m.to_json()).unwrap();
        assert!(json.contains("\"dropped\":1"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different bucket layout")]
    fn histogram_bounds_mismatch_asserts_in_debug() {
        let m = MetricsRegistry::new();
        m.histogram_observe("h", &[1.0, 2.0], 0.5);
        m.histogram_observe("h", &[5.0], 0.5);
    }

    #[test]
    fn histogram_first_bounds_win() {
        // Release-mode semantics of a layout mismatch: the creating
        // call's bounds stay authoritative.
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.5);
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        assert_eq!(h.cumulative()[1], (2.0, 1));
    }

    #[test]
    fn register_defaults_exposes_all_required_series() {
        let m = MetricsRegistry::new();
        m.register_defaults();
        let text = m.to_prometheus();
        for required in [
            names::PROFILE_CACHE_HITS,
            names::ESTIMATE_MEMO_HITS,
            names::ENGINE_RATE_SOLVES,
            names::FAULTS_INJECTED,
            names::SCHED_RETRIES,
            names::GOODPUT,
            names::GROUP_MAKESPAN_SECONDS,
        ] {
            assert!(text.contains(required), "missing {required}");
        }
        let json = serde_json::to_string(&m.to_json()).unwrap();
        assert!(json.contains(names::GOODPUT));
        assert!(json.contains(names::QUEUE_DEPTH));
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let m = MetricsRegistry::new();
            m.register_defaults();
            m.counter_add(names::ENGINE_RUNS, 7);
            m.gauge_set(names::GOODPUT, 0.321);
            m.histogram_observe(names::QUEUE_DEPTH, &DEPTH_BUCKETS, 3.0);
            (
                m.to_prometheus(),
                serde_json::to_string(&m.to_json()).unwrap(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn json_parses_back() {
        let m = MetricsRegistry::new();
        m.register_defaults();
        let s = serde_json::to_string(&m.to_json()).unwrap();
        let v: Value = serde_json::from_str(&s).unwrap();
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }
}
