//! `mpshare-obs` — cross-layer observability for the mpshare simulator.
//!
//! The paper's evaluation is built on *measurement*: Nsight timelines,
//! `nvidia-smi` power/utilization logs, and per-client slowdown
//! decompositions. This crate is the simulator-side equivalent, threaded
//! through every layer above the engine:
//!
//! * [`recorder`] — a process-wide structured span/event recorder the
//!   planner, annealer, online scheduler, MPS daemon/server/runner,
//!   executor and harness emit into. Zero-cost when disabled (one relaxed
//!   atomic load; payloads behind closures), deterministic when enabled
//!   (simulated time + monotonic sequence numbers, never wall clocks).
//! * [`metrics`] — a counters/gauges/histograms registry exported as
//!   Prometheus text exposition and JSON.
//! * [`perfetto`] — Chrome-tracing / Perfetto export: the engine kernel
//!   timeline, and a merged trace that adds planner/scheduler/daemon/
//!   executor process tracks so one artifact answers "why was this group
//!   formed and what did it do to the GPU?".
//! * [`attrib`] — exact interference attribution: decomposes each
//!   client's co-run slowdown into SM-partition, bandwidth-contention,
//!   power-throttle and memory-wait seconds from the piecewise segments
//!   and event log.
//!
//! # Determinism rules
//!
//! Everything recorded here must be a pure function of the simulation:
//! no wall-clock reads, no host randomness. "Timing" metrics are
//! *simulated* seconds. Under serial execution two identical runs produce
//! byte-identical trace and metrics artifacts (the trace-smoke gate in
//! `make check` pins this); parallel execution varies only the sequence
//! interleaving, never the set of records or any metric value.
//!
//! # Convenience layer
//!
//! The free functions below proxy the global recorder so instrumentation
//! sites need a single import:
//!
//! ```
//! use mpshare_obs as obs;
//! obs::emit(obs::Track::Planner, "plan.call", None, None, || {
//!     serde_json::json!({ "strategy": "greedy" })
//! });
//! obs::counter_add(obs::names::PLAN_CALLS, 1);
//! ```

pub mod attrib;
pub mod metrics;
pub mod perfetto;
pub mod recorder;
pub mod timeline;

pub use attrib::{attribute, AttributionReport, ClientAttribution};
pub use metrics::{names, Histogram, MetricsRegistry, DEPTH_BUCKETS, SIM_SECONDS_BUCKETS};
pub use perfetto::{chrome_trace, control_events, engine_events, merged_chrome_trace, TraceEvent};
pub use recorder::{global as recorder, ObsRecord, Recorder, Track};
pub use timeline::{
    series, Interp, QuantileTrack, Sample, TimeSeries, TimelineStore, WindowStat,
    WindowedAggregator,
};

use serde_json::Value;

/// Is global recording enabled? The one branch every instrumentation
/// site pays on the disabled path.
#[inline]
pub fn enabled() -> bool {
    recorder().is_enabled()
}

/// Enables or disables global recording (and default metric families).
pub fn set_enabled(on: bool) {
    recorder().set_enabled(on);
}

/// The global metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    recorder().metrics()
}

/// Emits a record into the global recorder (no-op while disabled).
#[inline]
pub fn emit(
    track: Track,
    name: &str,
    sim_start: Option<f64>,
    sim_dur: Option<f64>,
    payload: impl FnOnce() -> Value,
) {
    recorder().emit(track, name, sim_start, sim_dur, payload);
}

/// Adds to a counter in the global registry (no-op while disabled).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        metrics().counter_add(name, delta);
    }
}

/// Sets a gauge in the global registry (no-op while disabled).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        metrics().gauge_set(name, value);
    }
}

/// Adds to a float series in the global registry (no-op while disabled).
#[inline]
pub fn gauge_add(name: &str, value: f64) {
    if enabled() {
        metrics().gauge_add(name, value);
    }
}

/// Observes into a histogram in the global registry (no-op while
/// disabled).
#[inline]
pub fn observe(name: &str, bounds: &[f64], value: f64) {
    if enabled() {
        metrics().histogram_observe(name, bounds, value);
    }
}

/// The global timeline store (simulated-time series + exact quantiles).
pub fn timelines() -> &'static TimelineStore {
    recorder().timelines()
}

/// Records an instantaneous timeline sample (no-op while disabled).
#[inline]
pub fn series_push(name: &str, t: f64, v: f64) {
    if enabled() {
        timelines().series_push(name, t, v);
    }
}

/// Records a span timeline sample: `v` holding from `t` for `dur`
/// simulated seconds (no-op while disabled).
#[inline]
pub fn series_push_span(name: &str, t: f64, dur: f64, v: f64) {
    if enabled() {
        timelines().series_push_span(name, t, dur, v);
    }
}

/// Records an observation into a named exact-quantile track (no-op while
/// disabled).
#[inline]
pub fn quantile_observe(name: &str, v: f64) {
    if enabled() {
        timelines().quantile_observe(name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_layer_is_noop_while_disabled() {
        // The global recorder starts disabled; a fresh private registry
        // check would race other tests, so just verify the guard logic
        // via a private recorder.
        let r = Recorder::new();
        assert!(!r.is_enabled());
        r.emit(Track::Executor, "x", None, None, || {
            panic!("payload must not be built while disabled")
        });
        assert!(r.is_empty());
    }
}
