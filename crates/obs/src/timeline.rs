//! Deterministic timeline metrics: simulated-time series, exact
//! quantiles, and utilization CDFs.
//!
//! The counters and fixed-bucket histograms in [`crate::metrics`] answer
//! "how much, in total"; this layer answers the time-resolved questions
//! the paper's interference argument (§IV) is built on — what did
//! utilization look like *over time*, what is the exact p99/p999
//! turnaround, how much capacity was stranded. Three building blocks:
//!
//! * [`TimeSeries`] — values sampled against **simulated** time (the same
//!   no-wall-clocks discipline as the recorder). Samples carry an explicit
//!   duration, because the simulation's state is piecewise-constant: a
//!   telemetry segment becomes one span sample, and time integrals,
//!   time-weighted means and utilization CDFs are then *exact* sums, never
//!   sampling approximations. Point samples (`dur == 0`) are supported for
//!   instantaneous observations such as queue depth.
//! * [`WindowedAggregator`] — fixed-window roll-ups (count/mean/min/max/
//!   sum) over a series, for dashboard-style downsampling.
//! * [`QuantileTrack`] — *exact* quantiles: every observation is kept and
//!   sorted-merge-consolidated on demand, so `p50/p90/p99/p999` are true
//!   order statistics, bit-identical to a naive sort of the same
//!   observations (pinned by property tests in `tests/observability.rs`).
//!
//! # Determinism rules
//!
//! Everything here must be a pure function of the *multiset* of
//! observations: worker count and insertion order must not matter. Series
//! samples are canonically sorted by `(t, dur, v)` before any read, and
//! quantile tracks keep a sorted multiset, so serial and parallel runs
//! export byte-identical JSON (the trace-smoke gate `cmp`s a serial
//! against a parallel timeline artifact). Sums (integrals, window sums)
//! are always folded over the canonical order.
//!
//! # Cost and the alloc-gate
//!
//! Nothing in this module is on an engine hot path. Instrumentation sites
//! (the runner, the online scheduler) feed the store *after* a run from
//! the immutable [`RunResult`](mpshare_gpusim::RunResult), behind
//! [`crate::enabled()`]; buffers live in the recorder-side
//! [`TimelineStore`], never in `EngineScratch`, so the zero-alloc
//! steady-state contract (`make alloc-gate`) is untouched. All buffers are
//! capacity-capped with dropped-sample accounting, like the recorder's
//! shards.

use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Canonical series and quantile-track names. Instrumentation sites, the
/// report renderer, and `validate-obs` share these so they cannot drift.
pub mod series {
    /// Device SM-throughput utilization in `[0, 1]`, one span per
    /// telemetry segment, aggregated over every recorded engine run.
    pub const DEVICE_SM_UTIL: &str = "device.sm_util";
    /// Device memory-bandwidth utilization in `[0, 1]`.
    pub const DEVICE_BW_UTIL: &str = "device.bw_util";
    /// Board power draw in watts.
    pub const DEVICE_POWER_W: &str = "device.power_w";
    /// Online-scheduler pending-queue depth at each dispatch (points).
    pub const SCHED_QUEUE_DEPTH: &str = "sched.queue_depth";
    /// Queue-wait seconds per workflow, observed at first dispatch.
    pub const SCHED_QUEUE_WAIT: &str = "sched.queue_wait_s";
    /// Turnaround seconds per completed workflow (completion − arrival).
    pub const SCHED_TURNAROUND: &str = "sched.turnaround_s";
    /// Turnaround seconds per completed client, across all mechanisms.
    pub const CLIENT_TURNAROUND: &str = "client.turnaround_s";

    /// Per-mechanism occupancy series (`occupancy.mps`, …): the device
    /// SM utilization of every run executed under that mechanism.
    pub fn occupancy(mechanism: &str) -> String {
        format!("occupancy.{mechanism}")
    }

    /// Per-mechanism turnaround quantile track (`turnaround.mps_s`, …).
    pub fn mechanism_turnaround(mechanism: &str) -> String {
        format!("turnaround.{mechanism}_s")
    }

    /// Per-client-label series (`client.<label>.resident`, `.sm_share`,
    /// `.dyn_power_w`). Labels recur across runs of the same workload
    /// class; their spans accumulate into one per-class distribution.
    pub fn client(label: &str, metric: &str) -> String {
        format!("client.{label}.{metric}")
    }
}

/// Interpolation mode for [`TimeSeries::value_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interp {
    /// The value of the last sample starting at or before `t`.
    Step,
    /// Linear interpolation between the starts of the two samples
    /// bracketing `t` (clamped to the first/last value outside the span).
    Linear,
}

/// One sample: a value `v` holding from `t` for `dur` simulated seconds
/// (`dur == 0` marks an instantaneous point observation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub t: f64,
    pub dur: f64,
    pub v: f64,
}

fn sample_key(s: &Sample) -> (u64, u64, u64) {
    // total_cmp-compatible ordering keys: all fields are finite and
    // non-negative durations by construction, but map through the IEEE
    // total order anyway so the sort is unconditionally well-defined.
    (total_bits(s.t), total_bits(s.dur), total_bits(s.v))
}

fn total_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | 1 << 63
    } else {
        !bits
    }
}

/// Per-series sample cap: bounds store memory like the recorder's shard
/// capacity (samples past the cap are counted and dropped).
const SERIES_CAPACITY: usize = 1 << 18;

/// A series of values against simulated time. Observation order is
/// irrelevant: samples are canonically sorted by `(t, dur, v)` before any
/// read, so every derived quantity is a pure function of the sample
/// multiset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    /// True while `samples` is known to be canonically sorted.
    sorted: bool,
    dropped: u64,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries {
            samples: Vec::new(),
            sorted: true,
            dropped: 0,
        }
    }

    /// Records an instantaneous observation. Non-finite times or values
    /// are rejected and counted in [`TimeSeries::dropped`] (the same
    /// poisoning guard as `Histogram::observe`).
    pub fn push(&mut self, t: f64, v: f64) {
        self.push_span(t, 0.0, v);
    }

    /// Records `v` holding from `t` for `dur` seconds. Rejects non-finite
    /// fields and negative durations (counted as dropped).
    pub fn push_span(&mut self, t: f64, dur: f64, v: f64) {
        if !t.is_finite() || !dur.is_finite() || !v.is_finite() || dur < 0.0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() >= SERIES_CAPACITY {
            self.dropped += 1;
            return;
        }
        let sample = Sample { t, dur, v };
        if let Some(last) = self.samples.last() {
            if sample_key(last) > sample_key(&sample) {
                self.sorted = false;
            }
        }
        self.samples.push(sample);
    }

    fn finalize(&mut self) {
        if !self.sorted {
            self.samples.sort_by_key(sample_key);
            self.sorted = true;
        }
    }

    /// The samples in canonical `(t, dur, v)` order.
    pub fn samples(&mut self) -> &[Sample] {
        self.finalize();
        &self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Observations rejected (non-finite / negative duration) or past the
    /// capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `(earliest start, latest end)` over all samples.
    pub fn span(&mut self) -> Option<(f64, f64)> {
        self.finalize();
        let first = *self.samples.first()?;
        let end = self
            .samples
            .iter()
            .map(|s| s.t + s.dur)
            .fold(f64::NEG_INFINITY, f64::max);
        Some((first.t, end))
    }

    /// Total covered time `Σ dur` (point samples contribute nothing).
    pub fn covered(&mut self) -> f64 {
        self.finalize();
        self.samples.iter().map(|s| s.dur).sum()
    }

    /// Exact time integral `Σ v·dur`.
    pub fn integral(&mut self) -> f64 {
        self.finalize();
        self.samples.iter().map(|s| s.v * s.dur).sum()
    }

    /// `integral / covered`; `None` when no time is covered.
    pub fn time_weighted_mean(&mut self) -> Option<f64> {
        let covered = self.covered();
        if covered > 0.0 {
            Some(self.integral() / covered)
        } else {
            None
        }
    }

    /// The series value at time `t` under the given interpolation, or
    /// `None` for an empty series or `t` before the first sample.
    pub fn value_at(&mut self, t: f64, interp: Interp) -> Option<f64> {
        self.finalize();
        if self.samples.is_empty() || t < self.samples[0].t {
            return None;
        }
        // Last sample with start <= t.
        let idx = self.samples.partition_point(|s| s.t <= t) - 1;
        match interp {
            Interp::Step => Some(self.samples[idx].v),
            Interp::Linear => {
                let a = self.samples[idx];
                match self.samples.get(idx + 1) {
                    Some(b) if b.t > a.t => {
                        let frac = (t - a.t) / (b.t - a.t);
                        Some(a.v + (b.v - a.v) * frac)
                    }
                    _ => Some(a.v),
                }
            }
        }
    }

    /// Fixed-window roll-ups: one [`WindowStat`] per `window`-second
    /// bucket (keyed by the sample *start*), in time order. Windows with
    /// no samples are omitted. Deterministic: folded over the canonical
    /// sample order.
    pub fn rollup(&mut self, window: f64) -> Vec<WindowStat> {
        assert!(
            window.is_finite() && window > 0.0,
            "rollup window must be positive"
        );
        self.finalize();
        let mut out: Vec<WindowStat> = Vec::new();
        for s in &self.samples {
            let bucket = (s.t / window).floor();
            let start = bucket * window;
            match out.last_mut() {
                Some(last) if last.start == start => last.fold(s),
                _ => out.push(WindowStat::seed(start, start + window, s)),
            }
        }
        out
    }

    /// Time-weighted cumulative distribution of the series value: for
    /// each distinct value `v` (ascending), the fraction of covered time
    /// spent at a value `<= v`. Exact, because samples are
    /// piecewise-constant. Point-only series fall back to equal weights
    /// per sample. Empty for an empty series.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        self.finalize();
        if self.samples.is_empty() {
            return Vec::new();
        }
        let covered: f64 = self.samples.iter().map(|s| s.dur).sum();
        let mut weighted: Vec<(f64, f64)> = self
            .samples
            .iter()
            .map(|s| (s.v, if covered > 0.0 { s.dur } else { 1.0 }))
            .collect();
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = weighted.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut acc = 0.0;
        for (v, w) in weighted {
            acc += w;
            match out.last_mut() {
                // Equal values collapse to one CDF step.
                Some(last) if last.0 == v => last.1 = acc / total,
                _ => out.push((v, acc / total)),
            }
        }
        out
    }

    /// Stranded-capacity integral: `Σ max(0, capacity − v)·dur` — the
    /// capacity-seconds left unused against a ceiling of `capacity`
    /// (1.0 for utilization series).
    pub fn stranded(&mut self, capacity: f64) -> f64 {
        self.finalize();
        self.samples
            .iter()
            .map(|s| (capacity - s.v).max(0.0) * s.dur)
            .sum()
    }
}

/// One fixed-window aggregate of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    pub start: f64,
    pub end: f64,
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    /// Sample mean (`sum / count`).
    pub mean: f64,
}

impl WindowStat {
    fn seed(start: f64, end: f64, s: &Sample) -> Self {
        WindowStat {
            start,
            end,
            count: 1,
            min: s.v,
            max: s.v,
            sum: s.v,
            mean: s.v,
        }
    }

    fn fold(&mut self, s: &Sample) {
        self.count += 1;
        self.min = self.min.min(s.v);
        self.max = self.max.max(s.v);
        self.sum += s.v;
        self.mean = self.sum / self.count as f64;
    }
}

/// A [`TimeSeries`] paired with a fixed roll-up window: observe values
/// against simulated time, read back windowed aggregates.
#[derive(Debug, Clone)]
pub struct WindowedAggregator {
    window: f64,
    series: TimeSeries,
}

impl WindowedAggregator {
    pub fn new(window: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "aggregation window must be positive"
        );
        WindowedAggregator {
            window,
            series: TimeSeries::new(),
        }
    }

    pub fn observe(&mut self, t: f64, v: f64) {
        self.series.push(t, v);
    }

    pub fn observe_span(&mut self, t: f64, dur: f64, v: f64) {
        self.series.push_span(t, dur, v);
    }

    pub fn window(&self) -> f64 {
        self.window
    }

    pub fn series(&mut self) -> &mut TimeSeries {
        &mut self.series
    }

    pub fn windows(&mut self) -> Vec<WindowStat> {
        self.series.rollup(self.window)
    }
}

/// Per-track observation cap (far above any current producer; turnaround
/// observations arrive one per completed client/workflow).
const QUANTILE_CAPACITY: usize = 1 << 18;

/// Exact quantiles over a multiset of observations. New observations land
/// in an unsorted pending buffer; any read sorts the pending run and
/// merges it into the sorted spine (a classic sorted-merge), so reads are
/// exact order statistics and amortize to `O(n log n)` total. Insertion
/// order and worker interleaving cannot matter: the sorted multiset is
/// the only state reads see.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileTrack {
    sorted: Vec<f64>,
    pending: Vec<f64>,
    dropped: u64,
}

impl QuantileTrack {
    pub fn new() -> Self {
        QuantileTrack::default()
    }

    /// Records one observation. Non-finite values are rejected and
    /// counted as dropped — a NaN must never poison the order statistics.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || self.len() >= QUANTILE_CAPACITY {
            self.dropped += 1;
            return;
        }
        self.pending.push(v);
    }

    fn consolidate(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_by(f64::total_cmp);
        let old = std::mem::take(&mut self.sorted);
        let run = std::mem::take(&mut self.pending);
        self.sorted = Vec::with_capacity(old.len() + run.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < run.len() {
            if old[i].total_cmp(&run[j]).is_le() {
                self.sorted.push(old[i]);
                i += 1;
            } else {
                self.sorted.push(run[j]);
                j += 1;
            }
        }
        self.sorted.extend_from_slice(&old[i..]);
        self.sorted.extend_from_slice(&run[j..]);
    }

    pub fn len(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sorted multiset of observations.
    pub fn values(&mut self) -> &[f64] {
        self.consolidate();
        &self.sorted
    }

    /// Exact nearest-rank quantile for `q ∈ (0, 1]`: the
    /// `⌈q·n⌉`-th smallest observation. `None` while empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q) && q > 0.0, "q must be in (0, 1]");
        self.consolidate();
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, n) - 1])
    }

    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.50)
    }

    pub fn p90(&mut self) -> Option<f64> {
        self.quantile(0.90)
    }

    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    pub fn p999(&mut self) -> Option<f64> {
        self.quantile(0.999)
    }

    pub fn min(&mut self) -> Option<f64> {
        self.consolidate();
        self.sorted.first().copied()
    }

    pub fn max(&mut self) -> Option<f64> {
        self.consolidate();
        self.sorted.last().copied()
    }

    /// The empirical CDF: for each distinct observed value (ascending),
    /// the fraction of observations `<= v`. The last entry's fraction is
    /// exactly 1.
    pub fn cdf(&mut self) -> Vec<(f64, f64)> {
        self.consolidate();
        let n = self.sorted.len();
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n as f64;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }

    /// Fraction of observations `<= threshold` — SLO attainment at that
    /// deadline. `None` while empty.
    pub fn attainment(&mut self, threshold: f64) -> Option<f64> {
        self.consolidate();
        if self.sorted.is_empty() {
            return None;
        }
        let within = self.sorted.partition_point(|&v| v <= threshold);
        Some(within as f64 / self.sorted.len() as f64)
    }
}

/// Distinct named series / tracks cap: bounds the store against
/// label-cardinality explosions (new names past the cap are dropped and
/// counted).
const STORE_NAME_CAPACITY: usize = 512;

#[derive(Debug, Default)]
struct StoreInner {
    series: BTreeMap<String, TimeSeries>,
    quantiles: BTreeMap<String, QuantileTrack>,
    dropped_names: u64,
}

/// The process-wide home of every timeline: named series and quantile
/// tracks behind one mutex (feeding happens post-run, never on an engine
/// hot path). Owned by the [`Recorder`](crate::Recorder) so `reset()` and
/// lifecycle match the rest of the observability state.
#[derive(Debug, Default)]
pub struct TimelineStore {
    inner: Mutex<StoreInner>,
}

impl TimelineStore {
    pub fn new() -> Self {
        TimelineStore::default()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut StoreInner) -> R) -> R {
        f(&mut self.inner.lock().expect("timeline store poisoned"))
    }

    /// Records an instantaneous sample into the named series.
    pub fn series_push(&self, name: &str, t: f64, v: f64) {
        self.series_push_span(name, t, 0.0, v);
    }

    /// Records a span sample into the named series, creating it on first
    /// use.
    pub fn series_push_span(&self, name: &str, t: f64, dur: f64, v: f64) {
        self.with_inner(|inner| {
            if !inner.series.contains_key(name) && inner.series.len() >= STORE_NAME_CAPACITY {
                inner.dropped_names += 1;
                return;
            }
            inner
                .series
                .entry(name.to_string())
                .or_default()
                .push_span(t, dur, v);
        });
    }

    /// Records an observation into the named quantile track, creating it
    /// on first use.
    pub fn quantile_observe(&self, name: &str, v: f64) {
        self.with_inner(|inner| {
            if !inner.quantiles.contains_key(name) && inner.quantiles.len() >= STORE_NAME_CAPACITY {
                inner.dropped_names += 1;
                return;
            }
            inner
                .quantiles
                .entry(name.to_string())
                .or_default()
                .observe(v);
        });
    }

    /// Runs `f` over a clone of the named series (canonically sorted), or
    /// returns `None` if absent.
    pub fn with_series<R>(&self, name: &str, f: impl FnOnce(&mut TimeSeries) -> R) -> Option<R> {
        self.with_inner(|inner| inner.series.get(name).cloned())
            .map(|mut s| f(&mut s))
    }

    /// Runs `f` over a clone of the named quantile track, or `None` if
    /// absent.
    pub fn with_quantiles<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut QuantileTrack) -> R,
    ) -> Option<R> {
        self.with_inner(|inner| inner.quantiles.get(name).cloned())
            .map(|mut q| f(&mut q))
    }

    /// Names of all series, in canonical (BTreeMap) order.
    pub fn series_names(&self) -> Vec<String> {
        self.with_inner(|inner| inner.series.keys().cloned().collect())
    }

    /// Names of all quantile tracks, in canonical order.
    pub fn quantile_names(&self) -> Vec<String> {
        self.with_inner(|inner| inner.quantiles.keys().cloned().collect())
    }

    /// A canonically-sorted copy of every series (for the Perfetto
    /// counter-track export).
    pub fn series_snapshot(&self) -> Vec<(String, Vec<Sample>)> {
        self.with_inner(|inner| {
            inner
                .series
                .iter_mut()
                .map(|(name, series)| (name.clone(), series.samples().to_vec()))
                .collect()
        })
    }

    /// Names silently refused because the store already held
    /// [`STORE_NAME_CAPACITY`] distinct series or tracks.
    pub fn dropped_names(&self) -> u64 {
        self.with_inner(|inner| inner.dropped_names)
    }

    pub fn is_empty(&self) -> bool {
        self.with_inner(|inner| inner.series.is_empty() && inner.quantiles.is_empty())
    }

    pub fn reset(&self) {
        self.with_inner(|inner| *inner = StoreInner::default());
    }

    /// The full timeline export: every series (canonical sample order,
    /// integral, time-weighted mean, CDF) and every quantile track
    /// (count, p50/p90/p99/p999, full CDF). Deterministic: a pure
    /// function of the observation multisets, byte-identical across
    /// serial and parallel runs (`make check`'s trace-smoke gate pins
    /// this).
    pub fn to_json(&self) -> Value {
        self.with_inner(|inner| {
            let series = inner
                .series
                .iter_mut()
                .map(|(name, s)| (name.clone(), series_json(s)))
                .collect();
            let quantiles = inner
                .quantiles
                .iter_mut()
                .map(|(name, q)| (name.clone(), quantile_json(q)))
                .collect();
            Value::Object(vec![
                ("series".to_string(), Value::Object(series)),
                ("quantiles".to_string(), Value::Object(quantiles)),
                ("dropped_names".to_string(), Value::U64(inner.dropped_names)),
            ])
        })
    }
}

fn pairs_json(pairs: &[(f64, f64)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(a, b)| Value::Array(vec![Value::F64(a), Value::F64(b)]))
            .collect(),
    )
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::F64(x),
        None => Value::Null,
    }
}

fn series_json(s: &mut TimeSeries) -> Value {
    let samples = Value::Array(
        s.samples()
            .iter()
            .map(|smp| {
                Value::Array(vec![
                    Value::F64(smp.t),
                    Value::F64(smp.dur),
                    Value::F64(smp.v),
                ])
            })
            .collect(),
    );
    let span = match s.span() {
        Some((a, b)) => Value::Array(vec![Value::F64(a), Value::F64(b)]),
        None => Value::Null,
    };
    Value::Object(vec![
        ("count".to_string(), Value::U64(s.len() as u64)),
        ("dropped".to_string(), Value::U64(s.dropped())),
        ("span".to_string(), span),
        ("covered_s".to_string(), Value::F64(s.covered())),
        ("integral".to_string(), Value::F64(s.integral())),
        (
            "time_weighted_mean".to_string(),
            opt_f64(s.time_weighted_mean()),
        ),
        ("cdf".to_string(), pairs_json(&s.cdf())),
        ("samples".to_string(), samples),
    ])
}

fn quantile_json(q: &mut QuantileTrack) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::U64(q.len() as u64)),
        ("dropped".to_string(), Value::U64(q.dropped())),
        ("min".to_string(), opt_f64(q.min())),
        ("p50".to_string(), opt_f64(q.p50())),
        ("p90".to_string(), opt_f64(q.p90())),
        ("p99".to_string(), opt_f64(q.p99())),
        ("p999".to_string(), opt_f64(q.p999())),
        ("max".to_string(), opt_f64(q.max())),
        ("cdf".to_string(), pairs_json(&q.cdf())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the same keyed-draw idiom as `fault::unit_hash`, for
    /// seeded permutations without host randomness.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
        let mut out = items.to_vec();
        for i in (1..out.len()).rev() {
            let j = (mix(seed.wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
            out.swap(i, j);
        }
        out
    }

    #[test]
    fn series_integrals_and_means_are_exact() {
        let mut s = TimeSeries::new();
        s.push_span(0.0, 2.0, 0.5);
        s.push_span(2.0, 1.0, 1.0);
        s.push_span(3.0, 2.0, 0.0);
        assert_eq!(s.covered(), 5.0);
        assert_eq!(s.integral(), 2.0);
        assert_eq!(s.time_weighted_mean(), Some(0.4));
        assert_eq!(s.span(), Some((0.0, 5.0)));
        assert_eq!(s.stranded(1.0), 3.0);
    }

    #[test]
    fn series_canonical_order_is_insertion_invariant() {
        let samples: Vec<Sample> = (0..64)
            .map(|i| Sample {
                t: (mix(i) % 100) as f64 * 0.5,
                dur: (mix(i + 1000) % 10) as f64 * 0.1,
                v: (mix(i + 2000) % 1000) as f64 / 1000.0,
            })
            .collect();
        let build = |order: &[Sample]| {
            let mut s = TimeSeries::new();
            for smp in order {
                s.push_span(smp.t, smp.dur, smp.v);
            }
            (s.samples().to_vec(), s.integral(), s.cdf(), s.rollup(5.0))
        };
        let reference = build(&samples);
        for seed in 1..8u64 {
            assert_eq!(build(&shuffled(&samples, seed)), reference);
        }
    }

    #[test]
    fn series_rejects_non_finite_and_counts_drops() {
        let mut s = TimeSeries::new();
        s.push(f64::NAN, 1.0);
        s.push(1.0, f64::INFINITY);
        s.push_span(0.0, -1.0, 0.5);
        s.push_span(0.0, f64::NAN, 0.5);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 4);
        s.push(1.0, 2.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn value_at_step_and_linear() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        s.push(10.0, 3.0);
        assert_eq!(s.value_at(-1.0, Interp::Step), None);
        assert_eq!(s.value_at(0.0, Interp::Step), Some(1.0));
        assert_eq!(s.value_at(9.9, Interp::Step), Some(1.0));
        assert_eq!(s.value_at(10.0, Interp::Step), Some(3.0));
        assert_eq!(s.value_at(11.0, Interp::Step), Some(3.0));
        assert_eq!(s.value_at(5.0, Interp::Linear), Some(2.0));
        assert_eq!(s.value_at(11.0, Interp::Linear), Some(3.0));
    }

    #[test]
    fn rollups_fold_per_window() {
        let mut agg = WindowedAggregator::new(10.0);
        agg.observe(1.0, 2.0);
        agg.observe(2.0, 4.0);
        agg.observe(15.0, 10.0);
        let windows = agg.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start, 0.0);
        assert_eq!(windows[0].count, 2);
        assert_eq!(windows[0].min, 2.0);
        assert_eq!(windows[0].max, 4.0);
        assert_eq!(windows[0].sum, 6.0);
        assert_eq!(windows[0].mean, 3.0);
        assert_eq!(windows[1].start, 10.0);
        assert_eq!(windows[1].count, 1);
    }

    #[test]
    fn series_cdf_is_time_weighted_and_monotone() {
        let mut s = TimeSeries::new();
        s.push_span(0.0, 3.0, 0.2);
        s.push_span(3.0, 1.0, 0.8);
        s.push_span(4.0, 1.0, 0.2);
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0], (0.2, 0.8));
        assert_eq!(cdf[1], (0.8, 1.0));
    }

    #[test]
    fn quantiles_match_naive_sorted_reference_under_permutations() {
        let values: Vec<f64> = (0..257).map(|i| (mix(i) % 10_000) as f64 / 7.0).collect();
        let mut naive = values.clone();
        naive.sort_by(f64::total_cmp);
        let qs = [0.5, 0.9, 0.99, 0.999, 0.001, 1.0];
        for seed in 0..8u64 {
            let mut track = QuantileTrack::new();
            for v in shuffled(&values, seed) {
                track.observe(v);
            }
            for &q in &qs {
                let rank = ((q * naive.len() as f64).ceil() as usize).clamp(1, naive.len());
                assert_eq!(
                    track.quantile(q),
                    Some(naive[rank - 1]),
                    "q={q} seed={seed}"
                );
            }
            assert_eq!(track.min(), naive.first().copied());
            assert_eq!(track.max(), naive.last().copied());
        }
    }

    #[test]
    fn quantile_reads_interleave_with_observes() {
        // The sorted-merge consolidation must stay exact when reads and
        // writes interleave (pending runs merged into the spine).
        let mut track = QuantileTrack::new();
        let mut all = Vec::new();
        for i in 0..100u64 {
            let v = (mix(i) % 1000) as f64;
            track.observe(v);
            all.push(v);
            if i % 7 == 0 {
                let mut naive = all.clone();
                naive.sort_by(f64::total_cmp);
                let rank = ((0.9 * naive.len() as f64).ceil() as usize).clamp(1, naive.len());
                assert_eq!(track.p90(), Some(naive[rank - 1]));
            }
        }
    }

    #[test]
    fn quantile_track_rejects_non_finite() {
        let mut track = QuantileTrack::new();
        track.observe(f64::NAN);
        track.observe(f64::INFINITY);
        track.observe(f64::NEG_INFINITY);
        assert!(track.is_empty());
        assert_eq!(track.dropped(), 3);
        track.observe(1.0);
        assert_eq!(track.quantile(0.5), Some(1.0));
    }

    #[test]
    fn quantile_ordering_and_cdf_are_monotone() {
        let mut track = QuantileTrack::new();
        for i in 0..1000u64 {
            track.observe((mix(i) % 100_000) as f64 / 13.0);
        }
        let (p50, p90, p99, p999) = (
            track.p50().unwrap(),
            track.p90().unwrap(),
            track.p99().unwrap(),
            track.p999().unwrap(),
        );
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        let cdf = track.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "cdf values strictly ascending");
            assert!(w[0].1 <= w[1].1, "cdf fractions non-decreasing");
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        // Attainment agrees with the CDF at every knot.
        for &(v, frac) in &cdf {
            assert_eq!(track.attainment(v), Some(frac));
        }
    }

    #[test]
    fn store_exports_deterministically_across_insertion_orders() {
        let entries: Vec<(f64, f64)> = (0..50)
            .map(|i| ((mix(i) % 100) as f64, (mix(i + 99) % 50) as f64))
            .collect();
        let build = |seed: u64| {
            let store = TimelineStore::new();
            for (t, v) in shuffled(&entries, seed) {
                store.series_push_span(series::DEVICE_SM_UTIL, t, 1.0, v / 50.0);
                store.quantile_observe(series::SCHED_TURNAROUND, v);
            }
            serde_json::to_string(&store.to_json()).unwrap()
        };
        let reference = build(0);
        for seed in 1..4 {
            assert_eq!(build(seed), reference);
        }
        assert!(reference.contains("\"p99\""));
        assert!(reference.contains(series::DEVICE_SM_UTIL));
    }

    #[test]
    fn store_caps_distinct_names() {
        let store = TimelineStore::new();
        for i in 0..(STORE_NAME_CAPACITY + 5) {
            store.series_push(&format!("s{i}"), 0.0, 1.0);
        }
        assert_eq!(store.series_names().len(), STORE_NAME_CAPACITY);
        assert_eq!(store.dropped_names(), 5);
        store.reset();
        assert!(store.is_empty());
        assert_eq!(store.dropped_names(), 0);
    }

    #[test]
    fn store_reads_and_snapshot() {
        let store = TimelineStore::new();
        store.series_push_span("util", 0.0, 2.0, 0.5);
        store.series_push_span("util", 2.0, 2.0, 1.0);
        store.quantile_observe("lat", 3.0);
        assert_eq!(store.with_series("util", |s| s.integral()), Some(3.0));
        assert_eq!(store.with_quantiles("lat", |q| q.p50()), Some(Some(3.0)));
        assert_eq!(store.with_series("missing", |s| s.integral()), None);
        let snapshot = store.series_snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].1.len(), 2);
        assert_eq!(store.quantile_names(), vec!["lat".to_string()]);
    }
}
