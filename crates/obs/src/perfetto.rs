//! Unified Chrome-tracing / Perfetto export.
//!
//! This module owns the full timeline story: the engine-side export that
//! `mpshare_profiler::trace::chrome_trace` delegates to (pids 0–2: device
//! counters, task spans, kernel spans), and the merged export that adds
//! one process track per control-plane [`Track`] (pids 3–6) so a single
//! trace shows *why* a group was formed (planner decision audits), *how*
//! it was dispatched (scheduler/daemon spans), and *what* it did to the
//! GPU (kernel timeline + counters).
//!
//! Open either artifact at <https://ui.perfetto.dev> (drag-and-drop) or
//! `chrome://tracing`.
//!
//! Faulted work is rendered rather than dropped: a client aborted
//! mid-task gets a span for the in-flight work colored `terrible` (the
//! Chrome tracing red), each `ClientFault` becomes a thread-scoped
//! instant marker, and `ServerCrash` a global-scoped one.

use crate::recorder::{ObsRecord, Track};
use crate::timeline::TimelineStore;
use mpshare_gpusim::{EventKind, RunResult};
use serde::Serialize;
use serde_json::Value;

/// The pid of the timeline-store counter tracks in the merged export
/// (pids 0–2 are the engine timeline, 3–6 the control-plane tracks).
pub const TIMELINE_PID: u64 = 7;

/// One Chrome-tracing event (the subset of fields we emit). Field names
/// match the Chrome tracing JSON schema exactly (`cname` is the Chrome
/// color name, `s` the instant scope).
#[derive(Debug, Clone, Serialize)]
pub struct TraceEvent {
    pub name: String,
    pub ph: &'static str,
    /// Timestamp, microseconds.
    pub ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dur: Option<f64>,
    pub pid: u64,
    pub tid: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub args: Option<Value>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cname: Option<&'static str>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub s: Option<&'static str>,
}

const SECONDS_TO_US: f64 = 1e6;

impl TraceEvent {
    fn span(name: String, ts: f64, dur: f64, pid: u64, tid: u64, args: Option<Value>) -> Self {
        TraceEvent {
            name,
            ph: "X",
            ts,
            dur: Some(dur.max(0.0)),
            pid,
            tid,
            args,
            cname: None,
            s: None,
        }
    }

    fn meta(name: &'static str, pid: u64, tid: u64, value: &str) -> Self {
        TraceEvent {
            name: name.to_string(),
            ph: "M",
            ts: 0.0,
            dur: None,
            pid,
            tid,
            args: Some(serde_json::json!({ "name": value })),
            cname: None,
            s: None,
        }
    }
}

/// The engine timeline: device counters (pid 0), per-client task spans
/// (pid 1), kernel spans (pid 2), and — new in this layer — failed
/// in-flight work plus fault/crash instant markers.
pub fn engine_events(result: &RunResult) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = Vec::new();

    // Thread/track names.
    for (i, client) in result.clients.iter().enumerate() {
        events.push(TraceEvent::meta("thread_name", 1, i as u64, &client.label));
    }

    // Task spans, reconstructed from completion times: a task occupies the
    // client from its predecessor's completion (or the client's start).
    for (i, client) in result.clients.iter().enumerate() {
        let mut cursor = client.started;
        for completion in &client.completions {
            let start = cursor;
            let end = completion.at;
            events.push(TraceEvent::span(
                completion.label.clone(),
                start.value() * SECONDS_TO_US,
                (end.value() - start.value()) * SECONDS_TO_US,
                1,
                i as u64,
                Some(serde_json::json!({ "task": completion.task.to_string() })),
            ));
            cursor = end;
        }
        // An aborted client's in-flight task produced no completion but
        // did occupy the GPU until the abort: render the lost work as a
        // red span instead of leaving a timeline hole.
        if client.failed && client.finished > cursor {
            let mut span = TraceEvent::span(
                "aborted task".to_string(),
                cursor.value() * SECONDS_TO_US,
                (client.finished.value() - cursor.value()) * SECONDS_TO_US,
                1,
                i as u64,
                Some(serde_json::json!({
                    "failed": true,
                    "wasted_progress_s": client.wasted_progress.value(),
                })),
            );
            span.cname = Some("terrible");
            events.push(span);
        }
    }

    // Kernel-level spans (pid 2) when the run carried an event log.
    for (client, task, kernel_index, start, end) in result.events.kernel_spans() {
        events.push(TraceEvent::span(
            format!("kernel {kernel_index}"),
            start.value() * SECONDS_TO_US,
            (end.value() - start.value()) * SECONDS_TO_US,
            2,
            client as u64,
            Some(serde_json::json!({ "task": task.to_string() })),
        ));
    }

    // Fault instants from the event log: per-client faults are
    // thread-scoped markers on the client's track, server crashes are
    // global-scoped markers on the device track.
    for event in result.events.events() {
        match &event.kind {
            EventKind::ClientFault { origin } => {
                events.push(TraceEvent {
                    name: "client fault".to_string(),
                    ph: "i",
                    ts: event.at.value() * SECONDS_TO_US,
                    dur: None,
                    pid: 1,
                    tid: event.client as u64,
                    args: Some(serde_json::json!({ "origin": origin })),
                    cname: Some("terrible"),
                    s: Some("t"),
                });
            }
            EventKind::ServerCrash { origin } => {
                events.push(TraceEvent {
                    name: "server crash".to_string(),
                    ph: "i",
                    ts: event.at.value() * SECONDS_TO_US,
                    dur: None,
                    pid: 0,
                    tid: 0,
                    args: Some(serde_json::json!({ "origin": origin })),
                    cname: Some("terrible"),
                    s: Some("g"),
                });
            }
            _ => {}
        }
    }

    // Device counters from the exact segments.
    for segment in result.telemetry.segments() {
        let ts = segment.start.value() * SECONDS_TO_US;
        let counters = [
            ("sm_util", segment.sm_util * 100.0),
            ("bw_util", segment.bw_util * 100.0),
            ("power_w", segment.power.watts()),
            ("clock", segment.clock_factor * 100.0),
        ];
        for (name, value) in counters {
            events.push(TraceEvent {
                name: name.into(),
                ph: "C",
                ts,
                dur: None,
                pid: 0,
                tid: 0,
                args: Some(serde_json::json!({ name: value })),
                cname: None,
                s: None,
            });
        }
    }

    events
}

/// Control-plane records as trace events on their track's pid. Records
/// with a simulated time land at that time; offline records (plan search
/// has no simulation clock) land at their sequence number in
/// microseconds, which keeps them ordered and near the origin.
pub fn control_events(records: &[ObsRecord]) -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut seen: Vec<Track> = Vec::new();
    for record in records {
        if !seen.contains(&record.track) {
            seen.push(record.track);
            events.push(TraceEvent::meta(
                "process_name",
                record.track.pid(),
                0,
                record.track.name(),
            ));
        }
        let ts = match record.sim_start {
            Some(at) => at * SECONDS_TO_US,
            None => record.seq as f64,
        };
        let args = if record.payload == Value::Null {
            None
        } else {
            Some(record.payload.clone())
        };
        match record.sim_dur {
            Some(dur) => events.push(TraceEvent::span(
                record.name.clone(),
                ts,
                dur * SECONDS_TO_US,
                record.track.pid(),
                0,
                args,
            )),
            None => events.push(TraceEvent {
                name: record.name.clone(),
                ph: "i",
                ts,
                dur: None,
                pid: record.track.pid(),
                tid: 0,
                args,
                cname: None,
                s: Some("t"),
            }),
        }
    }
    events
}

/// Timeline-store series as Perfetto counter tracks (ph `"C"`) on
/// [`TIMELINE_PID`]: one counter track per series, one sample per span
/// start, values in the series' native unit. Deterministic — series
/// iterate in name order, samples in canonical `(t, dur, v)` order.
pub fn timeline_events(store: &TimelineStore) -> Vec<TraceEvent> {
    let snapshot = store.series_snapshot();
    if snapshot.is_empty() {
        return Vec::new();
    }
    let mut events = vec![TraceEvent::meta(
        "process_name",
        TIMELINE_PID,
        0,
        "timeline",
    )];
    for (tid, (name, samples)) in snapshot.iter().enumerate() {
        for s in samples {
            events.push(TraceEvent {
                name: name.clone(),
                ph: "C",
                ts: s.t * SECONDS_TO_US,
                dur: None,
                pid: TIMELINE_PID,
                tid: tid as u64,
                args: Some(serde_json::json!({ "value": s.v })),
                cname: None,
                s: None,
            });
        }
    }
    events
}

fn render(events: &[TraceEvent]) -> String {
    let events = serde_json::to_value(&events.to_vec());
    serde_json::to_string(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serialization cannot fail")
}

/// Engine-only Chrome-tracing JSON (the `mpshare_profiler::trace`
/// delegation target).
pub fn chrome_trace(result: &RunResult) -> String {
    render(&engine_events(result))
}

/// The unified export: engine timeline (when a run is given) merged with
/// the control-plane tracks. Engine process tracks get process names here
/// (the engine-only export leaves them implicit for compatibility).
pub fn merged_chrome_trace(result: Option<&RunResult>, records: &[ObsRecord]) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    if let Some(result) = result {
        events.push(TraceEvent::meta("process_name", 0, 0, "device"));
        events.push(TraceEvent::meta("process_name", 1, 0, "clients"));
        events.push(TraceEvent::meta("process_name", 2, 0, "kernels"));
        events.extend(engine_events(result));
    }
    events.extend(control_events(records));
    render(&events)
}

/// [`merged_chrome_trace`] plus the timeline store's counter tracks on
/// [`TIMELINE_PID`] — the full picture in one artifact: engine timeline,
/// control-plane decisions, and the aggregated simulated-time series.
pub fn merged_chrome_trace_with_timelines(
    result: Option<&RunResult>,
    records: &[ObsRecord],
    timelines: &TimelineStore,
) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    if let Some(result) = result {
        events.push(TraceEvent::meta("process_name", 0, 0, "device"));
        events.push(TraceEvent::meta("process_name", 1, 0, "clients"));
        events.push(TraceEvent::meta("process_name", 2, 0, "kernels"));
        events.extend(engine_events(result));
    }
    events.extend(control_events(records));
    events.extend(timeline_events(timelines));
    render(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use serde_json::json;

    fn sample_records() -> Vec<ObsRecord> {
        let r = Recorder::new();
        r.set_enabled(true);
        r.emit(
            Track::Planner,
            "plan.candidate",
            None,
            None,
            || json!({"accepted": true}),
        );
        r.emit(
            Track::Scheduler,
            "sched.dispatch",
            Some(1.0),
            Some(2.5),
            || json!({"queue_depth": 3}),
        );
        r.emit(Track::Daemon, "daemon.spawn", Some(0.5), None, || {
            Value::Null
        });
        r.drain()
    }

    #[test]
    fn control_events_cover_all_tracks_with_names() {
        let events = control_events(&sample_records());
        let metas: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(metas.len(), 3, "one process_name per distinct track");
        assert!(metas.iter().any(|m| m.pid == Track::Planner.pid()));
        assert!(metas.iter().any(|m| m.pid == Track::Scheduler.pid()));
        assert!(metas.iter().any(|m| m.pid == Track::Daemon.pid()));
    }

    #[test]
    fn spans_use_sim_time_and_instants_mark_points() {
        let events = control_events(&sample_records());
        let span = events.iter().find(|e| e.ph == "X").expect("one span");
        assert_eq!(span.ts, 1.0 * SECONDS_TO_US);
        assert_eq!(span.dur, Some(2.5 * SECONDS_TO_US));
        assert_eq!(span.pid, Track::Scheduler.pid());
        let instants = events.iter().filter(|e| e.ph == "i").count();
        assert_eq!(instants, 2, "offline planner record + daemon point event");
    }

    #[test]
    fn offline_records_fall_back_to_sequence_timestamps() {
        let events = control_events(&sample_records());
        let planner = events
            .iter()
            .find(|e| e.pid == Track::Planner.pid() && e.ph == "i")
            .unwrap();
        assert_eq!(planner.ts, 0.0, "seq 0 lands at the origin");
    }

    #[test]
    fn timeline_counter_tracks_render_on_their_own_pid() {
        let store = TimelineStore::new();
        store.series_push_span("device.sm_util", 0.0, 2.0, 0.5);
        store.series_push_span("device.sm_util", 2.0, 1.0, 1.0);
        store.quantile_observe("lat", 3.0); // quantiles are JSON-only
        let events = timeline_events(&store);
        assert_eq!(events[0].ph, "M");
        assert_eq!(events[0].pid, TIMELINE_PID);
        let counters: Vec<&TraceEvent> = events.iter().filter(|e| e.ph == "C").collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].ts, 0.0);
        assert_eq!(counters[1].ts, 2.0 * SECONDS_TO_US);
        let trace = merged_chrome_trace_with_timelines(None, &sample_records(), &store);
        let parsed: Value = serde_json::from_str(&trace).unwrap();
        assert!(parsed.get("traceEvents").is_some());
        assert!(trace.contains("device.sm_util"));
        // An empty store adds nothing over the plain merged export.
        let empty = TimelineStore::new();
        assert_eq!(
            merged_chrome_trace_with_timelines(None, &sample_records(), &empty),
            merged_chrome_trace(None, &sample_records())
        );
    }

    #[test]
    fn merged_trace_is_valid_json() {
        let trace = merged_chrome_trace(None, &sample_records());
        let parsed: Value = serde_json::from_str(&trace).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Null payloads are omitted entirely rather than serialized.
        assert!(!trace.contains("\"args\":null"));
    }
}
