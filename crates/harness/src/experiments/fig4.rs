//! Figure 4: throughput, energy efficiency, and the efficiency-throughput
//! product for AthenaPK and LAMMPS workflow sets with increasing
//! cardinality (number of concurrent workflows).
//!
//! Following the paper's set labels, configuration `SxP` launches `P`
//! concurrent workflows of `S` sequential tasks each; the cardinality
//! sweep holds `S = 2` and grows `P`, increasing the total work with it.
//! Every configuration is compared against sequential scheduling of the
//! same task set.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{Executor, ExecutorConfig, Metrics, ProductMetric};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// Concurrent-workflow counts swept (2x1 … 2x24 = up to 48 tasks).
pub const CARDINALITIES: [usize; 6] = [1, 2, 4, 8, 16, 24];

/// Sequential tasks per workflow in the cardinality sweep.
pub const TASKS_PER_WORKFLOW: usize = 2;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    pub benchmark: BenchmarkKind,
    /// Configuration label, e.g. `"2x8"`.
    pub config: String,
    pub concurrent_workflows: usize,
    pub metrics: Metrics,
}

impl Point {
    pub fn balanced_product(&self) -> f64 {
        self.metrics.product(ProductMetric::BALANCED)
    }

    pub fn throughput_leaning_product(&self) -> f64 {
        self.metrics.product(ProductMetric::THROUGHPUT_LEANING)
    }
}

/// Runs one `SxP` configuration of one benchmark and compares MPS
/// co-scheduling against sequential.
pub fn run_config(
    device: &DeviceSpec,
    kind: BenchmarkKind,
    seq_tasks: usize,
    parallel: usize,
) -> Result<Point> {
    let workflows: Vec<WorkflowSpec> = (0..parallel)
        .map(|_| WorkflowSpec::uniform(kind, ProblemSize::X4, seq_tasks))
        .collect();
    let executor = Executor::new(ExecutorConfig::new(device.clone()));
    let seq = executor.run_sequential(&workflows)?;
    let mps = executor.run_mps_naive(&workflows)?;
    Ok(Point {
        benchmark: kind,
        config: format!("{seq_tasks}x{parallel}"),
        concurrent_workflows: parallel,
        metrics: executor.report(mps, seq).metrics,
    })
}

/// The full cardinality sweep for both benchmarks.
pub fn points(device: &DeviceSpec) -> Result<Vec<Point>> {
    let jobs: Vec<(BenchmarkKind, usize)> = [BenchmarkKind::AthenaPk, BenchmarkKind::Lammps]
        .into_iter()
        .flat_map(|k| CARDINALITIES.iter().map(move |&c| (k, c)))
        .collect();
    let mut pts: Vec<Point> = mpshare_par::try_par_map(&jobs, |&(kind, card)| {
        run_config(device, kind, TASKS_PER_WORKFLOW, card)
    })?;
    pts.sort_by_key(|p| (p.benchmark, p.concurrent_workflows));
    Ok(pts)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Benchmark",
        "Config",
        "Clients",
        "Throughput",
        "Energy Eff.",
        "T*E Product",
        "T^2*E Product",
    ]);
    for p in points(device)? {
        table.push_row([
            p.benchmark.name().to_string(),
            p.config.clone(),
            p.concurrent_workflows.to_string(),
            fmt(p.metrics.throughput_gain, 3),
            fmt(p.metrics.energy_efficiency_gain, 3),
            fmt(p.balanced_product(), 3),
            fmt(p.throughput_leaning_product(), 3),
        ]);
    }
    Ok(Experiment::new(
        "fig4",
        "Throughput/energy efficiency/product vs. cardinality (AthenaPK 4x & LAMMPS 4x, MPS)",
        table,
    )
    .with_note(
        "AthenaPK (low utilization): gains peak at small cardinality and the marginal \
         benefit drops off as clients are added; LAMMPS (high utilization) is flat near 1.0 \
         at every cardinality — collocating LAMMPS with LAMMPS does not pay",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn athena_points() -> Vec<Point> {
        let d = DeviceSpec::a100x();
        CARDINALITIES
            .iter()
            .map(|&c| run_config(&d, BenchmarkKind::AthenaPk, 2, c).unwrap())
            .collect()
    }

    #[test]
    fn athena_pairs_gain_then_marginal_benefit_drops() {
        let pts = athena_points();
        // Cardinality 1 is sequential by construction: gain 1.0.
        assert!((pts[0].metrics.throughput_gain - 1.0).abs() < 0.02);
        // Pairs give a real gain.
        assert!(
            pts[1].metrics.throughput_gain > 1.5,
            "2x2: {}",
            pts[1].metrics.throughput_gain
        );
        // The paper's takeaway 3: the benefit per added client falls;
        // deep oversubscription is strictly worse than the peak.
        let peak = pts
            .iter()
            .map(|p| p.metrics.throughput_gain)
            .fold(0.0, f64::max);
        let at_24 = pts.last().unwrap().metrics.throughput_gain;
        assert!(
            at_24 < 0.9 * peak,
            "no drop-off: peak {peak:.3} vs 24 clients {at_24:.3}"
        );
    }

    #[test]
    fn athena_energy_efficiency_exceeds_one_at_high_cardinality() {
        let pts = athena_points();
        let last = pts.last().unwrap();
        assert!(
            last.metrics.energy_efficiency_gain > 1.2,
            "eff at 24 clients: {}",
            last.metrics.energy_efficiency_gain
        );
    }

    #[test]
    fn lammps_is_flat_and_near_unity() {
        let d = DeviceSpec::a100x();
        for &c in &[2usize, 8] {
            let p = run_config(&d, BenchmarkKind::Lammps, 2, c).unwrap();
            assert!(
                p.metrics.throughput_gain > 0.9 && p.metrics.throughput_gain < 1.15,
                "LAMMPS at {c}: {}",
                p.metrics.throughput_gain
            );
        }
    }

    #[test]
    fn product_metric_is_consistent() {
        let d = DeviceSpec::a100x();
        let p = run_config(&d, BenchmarkKind::AthenaPk, 2, 4).unwrap();
        let expected = p.metrics.throughput_gain * p.metrics.energy_efficiency_gain;
        assert!((p.balanced_product() - expected).abs() < 1e-12);
        let expected2 = p.metrics.throughput_gain * expected;
        assert!((p.throughput_leaning_product() - expected2).abs() < 1e-12);
    }
}
