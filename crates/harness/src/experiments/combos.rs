//! Shared runner for the Table III workflow combinations.
//!
//! Figures 2 and 3 both report on the same ten combination runs
//! (sequential baseline, MPS co-scheduling, time-slicing), so the runs
//! execute once here and both figures format from the results.

use mpshare_core::{Executor, ExecutorConfig, Metrics};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;
use mpshare_workloads::{table3_combinations, Combination};

/// Outcome of one combination under all three scheduling mechanisms.
#[derive(Debug, Clone)]
pub struct ComboResult {
    pub number: usize,
    pub label: String,
    pub tasks: usize,
    /// MPS co-scheduling vs. sequential.
    pub mps: Metrics,
    /// Time-slicing vs. sequential.
    pub timesliced: Metrics,
    /// Sequential capped fraction (Fig. 3's baseline).
    pub seq_capped_fraction: f64,
}

/// Runs one combination under sequential, MPS, and time-slicing.
pub fn run_combination(device: &DeviceSpec, combo: &Combination) -> Result<ComboResult> {
    let executor = Executor::new(ExecutorConfig::new(device.clone()));
    let workflows = &combo.workflows;
    let seq = executor.run_sequential(workflows)?;
    let mps = executor.run_mps_naive(workflows)?;
    let ts = executor.run_timesliced(workflows)?;
    Ok(ComboResult {
        number: combo.number,
        label: workflows
            .iter()
            .map(|w| w.label())
            .collect::<Vec<_>>()
            .join(" | "),
        tasks: combo.task_count(),
        mps: executor.report(mps, seq).metrics,
        timesliced: executor.report(ts, seq).metrics,
        seq_capped_fraction: seq.capped_fraction,
    })
}

/// Runs all ten Table III combinations (in parallel across combinations).
pub fn run_all(device: &DeviceSpec) -> Result<Vec<ComboResult>> {
    let combos = table3_combinations();
    let mut results: Vec<ComboResult> =
        mpshare_par::try_par_map(&combos, |c| run_combination(device, c))?;
    results.sort_by_key(|r| r.number);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Combination 1 (AthenaPK 4x ×5 + LAMMPS 4x ×3) is cheap enough for a
    /// unit test and exercises a mixed light/heavy pairing.
    #[test]
    fn combination_one_runs_and_reports() {
        let combos = table3_combinations();
        let r = run_combination(&DeviceSpec::a100x(), &combos[0]).unwrap();
        assert_eq!(r.number, 1);
        assert_eq!(r.tasks, 8);
        assert_eq!(r.mps.tasks, 8);
        assert!(r.mps.throughput_gain > 0.5 && r.mps.throughput_gain < 3.0);
        assert!(r.timesliced.throughput_gain > 0.5);
        // MPS should not lose to time slicing on this combination.
        assert!(r.mps.throughput_gain >= r.timesliced.throughput_gain - 0.05);
    }

    /// Combination 9 (AthenaPK 1x ×300 + Gravity 1x ×50): two light,
    /// bursty workflows — MPS should clearly beat sequential.
    #[test]
    fn combination_nine_shows_light_pair_gains() {
        let combos = table3_combinations();
        let r = run_combination(&DeviceSpec::a100x(), &combos[8]).unwrap();
        assert_eq!(r.number, 9);
        assert!(
            r.mps.throughput_gain > 1.05,
            "throughput gain {}",
            r.mps.throughput_gain
        );
        assert!(r.mps.energy_efficiency_gain > 1.0);
    }
}
