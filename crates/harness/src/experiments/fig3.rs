//! Figure 3: percentage of execution time spent throttling the GPU clock
//! due to SW power capping, for combinations 1–10 (MPS and time-slicing
//! relative to sequential).

use super::combos::{run_all, ComboResult};
use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;

/// Formats the experiment from pre-computed combination results.
pub fn from_results(results: &[ComboResult]) -> Experiment {
    let mut table = TextTable::new([
        "Comb. #",
        "Seq capped %",
        "MPS capped %",
        "TS capped %",
        "MPS - Seq (pp)",
        "TS - Seq (pp)",
    ]);
    for r in results {
        let seq = r.seq_capped_fraction * 100.0;
        let mps = r.mps.capped_fraction * 100.0;
        let ts = r.timesliced.capped_fraction * 100.0;
        table.push_row([
            r.number.to_string(),
            fmt(seq, 2),
            fmt(mps, 2),
            fmt(ts, 2),
            fmt(mps - seq, 2),
            fmt(ts - seq, 2),
        ]);
    }
    Experiment::new(
        "fig3",
        "Time spent throttling due to SW power capping, combinations 1-10",
        table,
    )
    .with_note(
        "capping emerges only when combined dynamic power exceeds the 300 W cap; \
         MPS co-scheduling raises combined draw and hence capping time over sequential",
    )
    .with_note(
        "deviation from the paper: our power model is built from Table II *average* powers, \
         so combinations whose capping the paper attributes to transient power peaks \
         (e.g. combination 6) do not cap here; MHD/LAMMPS-heavy combinations do",
    )
}

/// Runs everything and formats.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    Ok(from_results(&run_all(device)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::combos::run_combination;
    use mpshare_workloads::table3_combinations;

    #[test]
    fn hot_combination_caps_more_under_mps() {
        // Combination 10: MHD 4x + LAMMPS 4x pairs — the hottest mix.
        let combos = table3_combinations();
        let r = run_combination(&DeviceSpec::a100x(), &combos[9]).unwrap();
        let e = from_results(std::slice::from_ref(&r));
        assert_eq!(e.table.len(), 1);
        // MPS concurrent draw must cap more than sequential.
        assert!(
            r.mps.capped_fraction > r.seq_capped_fraction,
            "mps {} vs seq {}",
            r.mps.capped_fraction,
            r.seq_capped_fraction
        );
        assert!(r.mps.capped_fraction > 0.1);
    }

    #[test]
    fn cold_combination_never_caps() {
        // Combination 9: AthenaPK 1x + Gravity 1x — far below 300 W even
        // combined.
        let combos = table3_combinations();
        let r = run_combination(&DeviceSpec::a100x(), &combos[8]).unwrap();
        assert_eq!(r.mps.capped_fraction, 0.0);
        assert_eq!(r.seq_capped_fraction, 0.0);
    }
}
