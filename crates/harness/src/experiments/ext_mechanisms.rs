//! Extension experiment: the §II-B sharing-mechanism taxonomy, measured.
//!
//! The paper describes four concurrency mechanisms (time-slicing, CUDA
//! Streams, MPS, MIG) qualitatively; this artifact quantifies them on
//! three representative pairs — light+light, light+heavy, heavy+heavy —
//! against sequential execution.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};
use mpshare_types::{IdAllocator, Result, Seconds};
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// The three workload pairs.
pub fn pairs() -> Vec<(&'static str, [WorkflowSpec; 2])> {
    vec![
        (
            "light+light",
            [
                WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
                WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
            ],
        ),
        (
            "light+heavy",
            [
                WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
                WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 1),
            ],
        ),
        (
            "heavy+heavy",
            [
                WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
                WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
            ],
        ),
    ]
}

/// One (pair, mechanism) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    pub pair: &'static str,
    pub mechanism: &'static str,
    pub throughput_gain: f64,
    pub energy_gain: f64,
}

/// Runs every mechanism on every pair.
pub fn rows(device: &DeviceSpec) -> Result<Vec<Row>> {
    let runner = GpuRunner::new(device.clone());
    let mechanisms: Vec<(&'static str, GpuSharing)> = vec![
        (
            "time-sliced",
            GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
        ),
        ("streams", GpuSharing::Streams),
        ("mps", GpuSharing::mps_default(2)),
        (
            "mig-4g+3g",
            GpuSharing::Mig {
                layout: MigLayout::new(device, &[MigProfile::FourSlice, MigProfile::ThreeSlice])?,
                assignment: vec![0, 1],
            },
        ),
    ];

    let mut out = Vec::new();
    for (pair_name, specs) in pairs() {
        let programs = |ids: &mut IdAllocator| -> Result<Vec<_>> {
            specs
                .iter()
                .map(|w| w.to_client_program(device, ids))
                .collect()
        };
        let seq = {
            let mut ids = IdAllocator::new();
            runner.run(&GpuSharing::Sequential, programs(&mut ids)?)?
        };
        let (seq_time, seq_energy): (Seconds, f64) = (seq.makespan, seq.total_energy.joules());
        for (mech_name, sharing) in &mechanisms {
            let mut ids = IdAllocator::new();
            let result = runner.run(sharing, programs(&mut ids)?)?;
            out.push(Row {
                pair: pair_name,
                mechanism: mech_name,
                throughput_gain: seq_time / result.makespan,
                energy_gain: seq_energy / result.total_energy.joules(),
            });
        }
    }
    Ok(out)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new(["Pair", "Mechanism", "Throughput", "Energy Eff."]);
    for r in rows(device)? {
        table.push_row([
            r.pair.to_string(),
            r.mechanism.to_string(),
            fmt(r.throughput_gain, 3),
            fmt(r.energy_gain, 3),
        ]);
    }
    Ok(Experiment::new(
        "ext_mechanisms",
        "Extension: §II-B sharing mechanisms quantified on three pair types (vs. sequential)",
        table,
    )
    .with_note(
        "streams edge out MPS (no per-client pressure) but offer no memory protection; \
         MIG trades throughput for isolation and wins energy on contended pairs; \
         no mechanism rescues heavy+heavy collocation",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn mechanism_ordering_matches_section_2b() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        assert_eq!(rows.len(), 12);
        let get = |pair: &str, mech: &str| {
            rows.iter()
                .find(|r| r.pair == pair && r.mechanism == mech)
                .unwrap()
                .throughput_gain
        };
        // Light pairs: concurrent mechanisms beat time slicing.
        assert!(get("light+light", "mps") > get("light+light", "time-sliced"));
        assert!(get("light+light", "streams") >= get("light+light", "mps") - 1e-9);
        // Heavy pairs: nothing pays much; every mechanism is within ±15 %
        // of sequential except MIG's isolation penalty on throughput.
        for mech in ["time-sliced", "streams", "mps"] {
            let g = get("heavy+heavy", mech);
            assert!(g < 1.2, "{mech} on heavy+heavy: {g}");
        }
    }

    #[test]
    fn every_pair_has_all_mechanisms() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &rows {
            *counts.entry(r.pair).or_default() += 1;
        }
        assert!(counts.values().all(|&c| c == 4));
    }
}
