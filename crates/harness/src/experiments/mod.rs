//! Experiment modules, one per paper artifact.

pub mod combos;
pub mod ext_faults;
pub mod ext_hetero;
pub mod ext_mechanisms;
pub mod ext_node;
pub mod ext_online;
pub mod ext_powercap;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;

use crate::table::Experiment;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;

/// Runs every experiment in paper order. The Table III combination runs
/// (shared by Figures 2 and 3) execute once.
pub fn run_all(device: &DeviceSpec) -> Result<Vec<Experiment>> {
    let mut out = Vec::new();
    out.push(table1::run(device)?);
    out.push(table2::run(device)?);
    out.push(fig1::run(device)?);
    let combo_results = combos::run_all(device)?;
    out.push(fig2::from_results(&combo_results));
    out.push(fig3::from_results(&combo_results));
    out.push(fig4::run(device)?);
    out.push(fig5::run(device)?);
    out.push(ext_node::run(device)?);
    out.push(ext_mechanisms::run(device)?);
    out.push(ext_powercap::run(device)?);
    out.push(ext_online::run(device)?);
    out.push(ext_hetero::run(device)?);
    out.push(ext_faults::run(device)?);
    Ok(out)
}
