//! Experiment modules, one per paper artifact.

pub mod combos;
pub mod ext_attrib;
pub mod ext_faults;
pub mod ext_hetero;
pub mod ext_mechanisms;
pub mod ext_node;
pub mod ext_online;
pub mod ext_powercap;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;

use crate::table::Experiment;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;

/// Runs one experiment phase, recording the *simulated* seconds it
/// consumed (the delta of the engine sim-seconds series — never wall
/// clock, which the observability layer bans for determinism) into the
/// per-phase histogram. A no-op wrapper while recording is disabled.
fn phase<T>(name: &'static str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    if !mpshare_obs::enabled() {
        return f();
    }
    let before = mpshare_obs::metrics().gauge_get(mpshare_obs::names::ENGINE_SIM_SECONDS);
    let out = f()?;
    let sim_seconds =
        mpshare_obs::metrics().gauge_get(mpshare_obs::names::ENGINE_SIM_SECONDS) - before;
    mpshare_obs::observe(
        mpshare_obs::names::PHASE_SIM_SECONDS,
        &mpshare_obs::SIM_SECONDS_BUCKETS,
        sim_seconds,
    );
    mpshare_obs::emit(
        mpshare_obs::Track::Executor,
        "experiment.phase",
        None,
        None,
        || serde_json::json!({ "experiment": name, "sim_seconds": sim_seconds }),
    );
    Ok(out)
}

/// Runs the experiment named on the `mpshare-repro` command line (one
/// phase each; `"all"` is [`run_all`]). `None` for an unknown name.
pub fn run_named(device: &DeviceSpec, which: &str) -> Option<Result<Vec<Experiment>>> {
    let one = |r: Result<Experiment>| r.map(|e| vec![e]);
    Some(match which {
        "table1" => one(phase("table1", || table1::run(device))),
        "table2" => one(phase("table2", || table2::run(device))),
        "fig1" => one(phase("fig1", || fig1::run(device))),
        "fig2" => one(phase("fig2", || fig2::run(device))),
        "fig3" => one(phase("fig3", || fig3::run(device))),
        "fig4" => one(phase("fig4", || fig4::run(device))),
        "fig5" => one(phase("fig5", || fig5::run(device))),
        "ext_node" => one(phase("ext_node", || ext_node::run(device))),
        "ext_mechanisms" => one(phase("ext_mechanisms", || ext_mechanisms::run(device))),
        "ext_powercap" => one(phase("ext_powercap", || ext_powercap::run(device))),
        "ext_online" => one(phase("ext_online", || ext_online::run(device))),
        "ext_hetero" => one(phase("ext_hetero", || ext_hetero::run(device))),
        "ext_faults" => one(phase("ext_faults", || ext_faults::run(device))),
        "ext_attrib" => one(phase("ext_attrib", || ext_attrib::run(device))),
        "all" => run_all(device),
        _ => return None,
    })
}

/// Runs every experiment in paper order. The Table III combination runs
/// (shared by Figures 2 and 3) execute once.
pub fn run_all(device: &DeviceSpec) -> Result<Vec<Experiment>> {
    let mut out = Vec::new();
    out.push(phase("table1", || table1::run(device))?);
    out.push(phase("table2", || table2::run(device))?);
    out.push(phase("fig1", || fig1::run(device))?);
    let combo_results = phase("combos", || combos::run_all(device))?;
    out.push(fig2::from_results(&combo_results));
    out.push(fig3::from_results(&combo_results));
    out.push(phase("fig4", || fig4::run(device))?);
    out.push(phase("fig5", || fig5::run(device))?);
    out.push(phase("ext_node", || ext_node::run(device))?);
    out.push(phase("ext_mechanisms", || ext_mechanisms::run(device))?);
    out.push(phase("ext_powercap", || ext_powercap::run(device))?);
    out.push(phase("ext_online", || ext_online::run(device))?);
    out.push(phase("ext_hetero", || ext_hetero::run(device))?);
    out.push(phase("ext_faults", || ext_faults::run(device))?);
    out.push(phase("ext_attrib", || ext_attrib::run(device))?);
    Ok(out)
}
