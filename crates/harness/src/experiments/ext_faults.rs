//! Extension experiment: failure domains under a fault-rate sweep.
//!
//! The paper's §II-B taxonomy is performance-centric; this artifact adds
//! the *reliability* axis. CUDA MPS multiplexes every client onto one
//! shared server process, so a fatal client fault takes the server — and
//! every resident sibling — down with it. Time-slicing isolates clients in
//! their own processes, and MIG contains a fault to its hardware instance.
//! We inject the *same* seeded per-client fault plan under each mechanism
//! and watch goodput diverge: the blast radius is emergent from the
//! failure-domain modeling, not a lookup table.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::{DeviceSpec, FaultPlan};
use mpshare_mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};
use mpshare_types::{IdAllocator, Result, Seconds};
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// Per-client fault probabilities swept.
pub const RATES: [f64; 4] = [0.0, 0.15, 0.3, 0.5];

/// Seeds averaged at each rate (fault draws are Bernoulli; a single seed
/// is all-or-nothing per client).
pub const SEEDS: [u64; 3] = [101, 102, 103];

/// Four co-resident clients: two light solver pairs, enough residency
/// that shared-domain faults have something to take down.
fn workloads() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
    ]
}

fn mechanisms(device: &DeviceSpec) -> Result<Vec<(&'static str, GpuSharing)>> {
    Ok(vec![
        ("mps", GpuSharing::mps_default(4)),
        (
            "time-sliced",
            GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
        ),
        (
            "mig-4g+3g",
            GpuSharing::Mig {
                layout: MigLayout::new(device, &[MigProfile::FourSlice, MigProfile::ThreeSlice])?,
                assignment: vec![0, 1, 0, 1],
            },
        ),
    ])
}

/// One (rate, mechanism) aggregate over the seed set.
#[derive(Debug, Clone)]
pub struct Row {
    pub rate: f64,
    pub mechanism: &'static str,
    /// Fraction of submitted tasks that completed, averaged over seeds.
    pub goodput: f64,
    /// Goodput relative to the same mechanism at rate 0.
    pub relative: f64,
    /// Fraction of all GPU progress that was wasted on aborted tasks.
    pub wasted: f64,
    /// Clients killed per run, averaged over seeds.
    pub failed_clients: f64,
}

/// One (seed, mechanism) measurement at one rate; mechanism order follows
/// [`mechanisms`].
struct Sample {
    goodput: f64,
    wasted: f64,
    failed_clients: f64,
}

fn run_cell(device: &DeviceSpec, seed: u64, rate: f64) -> Result<Vec<Sample>> {
    let runner = GpuRunner::new(device.clone());
    let specs = workloads();
    let programs = |ids: &mut IdAllocator| -> Result<Vec<_>> {
        specs
            .iter()
            .map(|w| w.to_client_program(device, ids))
            .collect()
    };
    // Fault times land inside each origin's solo wall time; progress rates
    // never exceed 1, so the same plan fires under every mechanism and the
    // comparison isolates the failure domain.
    let horizons: Vec<Seconds> = {
        let mut ids = IdAllocator::new();
        programs(&mut ids)?
            .iter()
            .map(|p| Seconds::new(0.9 * p.solo_wall_time().value()))
            .collect()
    };
    let plan = FaultPlan::seeded(seed, &horizons, rate)?;
    let mut out = Vec::new();
    for (_name, sharing) in mechanisms(device)? {
        let mut ids = IdAllocator::new();
        let result = runner.run_with_faults(&sharing, programs(&mut ids)?, &plan)?;
        let total = result.tasks_completed + result.tasks_failed;
        out.push(Sample {
            goodput: if total == 0 {
                0.0
            } else {
                result.tasks_completed as f64 / total as f64
            },
            wasted: result.wasted_fraction(),
            failed_clients: result.clients.iter().filter(|c| c.failed).count() as f64,
        });
    }
    Ok(out)
}

/// Runs the sweep: every (rate, seed) cell fans out across workers, then
/// seeds are averaged in deterministic order.
pub fn rows(device: &DeviceSpec) -> Result<Vec<Row>> {
    let mut jobs: Vec<(f64, u64)> = Vec::new();
    for &rate in &RATES {
        for &seed in &SEEDS {
            jobs.push((rate, seed));
        }
    }
    let cells: Vec<Vec<Sample>> =
        mpshare_par::try_par_map(&jobs, |&(rate, seed)| run_cell(device, seed, rate))?;

    let mech_names: Vec<&'static str> = mechanisms(device)?.iter().map(|(name, _)| *name).collect();
    let mut out: Vec<Row> = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        for (mi, &mechanism) in mech_names.iter().enumerate() {
            let samples: Vec<&Sample> = (0..SEEDS.len())
                .map(|si| &cells[ri * SEEDS.len() + si][mi])
                .collect();
            let n = samples.len() as f64;
            let goodput = samples.iter().map(|s| s.goodput).sum::<f64>() / n;
            let baseline = if ri == 0 {
                goodput
            } else {
                out[mi].goodput // rate-0 rows come first, same mechanism order
            };
            out.push(Row {
                rate,
                mechanism,
                goodput,
                relative: if baseline > 0.0 {
                    goodput / baseline
                } else {
                    0.0
                },
                wasted: samples.iter().map(|s| s.wasted).sum::<f64>() / n,
                failed_clients: samples.iter().map(|s| s.failed_clients).sum::<f64>() / n,
            });
        }
    }
    Ok(out)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Fault Rate",
        "Mechanism",
        "Goodput",
        "Rel. Goodput",
        "Wasted",
        "Failed Clients",
    ]);
    for r in rows(device)? {
        table.push_row([
            fmt(r.rate, 2),
            r.mechanism.to_string(),
            fmt(r.goodput, 3),
            fmt(r.relative, 3),
            fmt(r.wasted, 3),
            fmt(r.failed_clients, 2),
        ]);
    }
    Ok(Experiment::new(
        "ext_faults",
        "Extension: goodput and wasted work under seeded client faults, by sharing mechanism",
        table,
    )
    .with_note(
        "the same per-client fault plan is injected under every mechanism; \
         MPS's shared server turns one fatal client fault into a full-GPU \
         outage while time-slicing contains it to the faulting client and \
         MIG to its instance — so MPS goodput degrades fastest as the fault \
         rate rises",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mps_goodput_degrades_fastest() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        assert_eq!(rows.len(), RATES.len() * 3);
        let get = |rate: f64, mech: &str| {
            rows.iter()
                .find(|r| r.rate == rate && r.mechanism == mech)
                .unwrap()
        };
        let top = *RATES.last().unwrap();
        // At rate 0 every mechanism completes everything, wastes nothing.
        for mech in ["mps", "time-sliced", "mig-4g+3g"] {
            let r = get(0.0, mech);
            assert_eq!(r.goodput, 1.0, "{mech} fault-free goodput");
            assert_eq!(r.wasted, 0.0, "{mech} fault-free waste");
            assert_eq!(r.failed_clients, 0.0);
        }
        // The blast radius emerges: shared server < shared instance <
        // per-client containment.
        let mps = get(top, "mps");
        let ts = get(top, "time-sliced");
        let mig = get(top, "mig-4g+3g");
        assert!(
            mps.relative < ts.relative,
            "mps {} vs time-sliced {}",
            mps.relative,
            ts.relative
        );
        assert!(
            mps.relative < mig.relative,
            "mps {} vs mig {}",
            mps.relative,
            mig.relative
        );
        // Same fault plan, wider domain: MPS kills at least as many
        // clients and wastes real work.
        assert!(mps.failed_clients >= ts.failed_clients);
        assert!(mps.failed_clients >= mig.failed_clients);
        assert!(mps.wasted > 0.0);
    }

    #[test]
    fn rate_zero_matches_fault_free_run() {
        let device = DeviceSpec::a100x();
        let runner = GpuRunner::new(device.clone());
        let specs = workloads();
        let mut ids = IdAllocator::new();
        let programs: Vec<_> = specs
            .iter()
            .map(|w| w.to_client_program(&device, &mut ids))
            .collect::<Result<_>>()
            .unwrap();
        let plain = runner
            .run(&GpuSharing::mps_default(4), programs.clone())
            .unwrap();
        let zero = runner
            .run_with_faults(
                &GpuSharing::mps_default(4),
                programs,
                &FaultPlan::seeded(SEEDS[0], &[Seconds::new(1.0); 4], 0.0).unwrap(),
            )
            .unwrap();
        assert_eq!(plain.makespan, zero.makespan);
        assert_eq!(plain.tasks_completed, zero.tasks_completed);
        assert!(zero.failures.is_empty());
    }
}
