//! Table II: utilization statistics for selected workflows (1× and 4×).

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::profile_task;
use mpshare_types::{Result, TaskId};
use mpshare_workloads::{all_benchmarks, build_task, AnchorProfile, ProblemSize};

/// One regenerated Table II row (measured + paper anchor).
#[derive(Debug, Clone)]
pub struct Row {
    pub benchmark: String,
    pub size: ProblemSize,
    pub max_memory_mib: f64,
    pub avg_bw_util: f64,
    pub avg_sm_util: f64,
    pub avg_power_w: f64,
    pub energy_j: f64,
    pub paper: AnchorProfile,
}

/// Profiles every benchmark at the paper's measured sizes.
pub fn rows(device: &DeviceSpec) -> Result<Vec<Row>> {
    let mut jobs = Vec::new();
    for b in all_benchmarks() {
        jobs.push((b.clone(), ProblemSize::X1));
        if b.anchor_4x.is_some() {
            jobs.push((b, ProblemSize::X4));
        }
    }
    mpshare_par::try_par_map(&jobs, |(b, size)| {
        let task = build_task(device, b, *size, TaskId::new(0))?;
        let p = profile_task(device, &task)?;
        Ok(Row {
            benchmark: b.kind.name().to_string(),
            size: *size,
            max_memory_mib: p.max_memory.mib(),
            avg_bw_util: p.avg_bw_util.value(),
            avg_sm_util: p.avg_sm_util.value(),
            avg_power_w: p.avg_power.watts(),
            energy_j: p.energy.joules(),
            paper: b.profile_at(*size),
        })
    })
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Benchmark",
        "Size",
        "Max Mem (MiB)",
        "Paper Mem",
        "BW Util %",
        "Paper BW",
        "SM Util %",
        "Paper SM",
        "Power (W)",
        "Paper Power",
        "Energy (J)",
        "Paper Energy",
    ]);
    for r in rows(device)? {
        table.push_row([
            r.benchmark.clone(),
            r.size.to_string(),
            fmt(r.max_memory_mib, 0),
            fmt(r.paper.max_memory.mib(), 0),
            fmt(r.avg_bw_util, 2),
            fmt(r.paper.avg_bw_util.value(), 2),
            fmt(r.avg_sm_util, 2),
            fmt(r.paper.avg_sm_util.value(), 2),
            fmt(r.avg_power_w, 2),
            fmt(r.paper.avg_power.watts(), 2),
            fmt(r.energy_j, 2),
            fmt(r.paper.energy.joules(), 2),
        ]);
    }
    Ok(Experiment::new(
        "table2",
        "Utilization statistics for selected workflows (measured on the simulator vs. paper)",
        table,
    )
    .with_note("BerkeleyGW-Epsilon has no 4x row: the paper could not scale it either"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_anchor_rows() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        // 7 benchmarks, 6 of them at two sizes.
        assert_eq!(rows.len(), 13);
        for r in &rows {
            let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
            assert!(
                rel(r.avg_sm_util, r.paper.avg_sm_util.value()) < 0.03,
                "{} {}: SM",
                r.benchmark,
                r.size
            );
            assert!(
                rel(r.avg_power_w, r.paper.avg_power.watts()) < 0.03,
                "{} {}: power",
                r.benchmark,
                r.size
            );
            assert!(
                rel(r.energy_j, r.paper.energy.joules()) < 0.05,
                "{} {}: energy",
                r.benchmark,
                r.size
            );
        }
    }

    #[test]
    fn experiment_has_thirteen_rows() {
        let e = run(&DeviceSpec::a100x()).unwrap();
        assert_eq!(e.table.len(), 13);
    }
}
