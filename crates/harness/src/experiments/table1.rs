//! Table I: warp occupancy metrics for each benchmark (1× problem size).

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::profile_task;
use mpshare_types::{Result, TaskId};
use mpshare_workloads::{all_benchmarks, build_task, ProblemSize};

/// One row of the regenerated Table I.
#[derive(Debug, Clone)]
pub struct Row {
    pub benchmark: String,
    pub achieved: f64,
    pub theoretical: f64,
    pub ratio: f64,
    pub paper_achieved: f64,
    pub paper_theoretical: f64,
}

/// Profiles every benchmark at 1× and reports measured vs. paper occupancy.
pub fn rows(device: &DeviceSpec) -> Result<Vec<Row>> {
    let benchmarks = all_benchmarks();
    mpshare_par::try_par_map(&benchmarks, |b| {
        let task = build_task(device, b, ProblemSize::X1, TaskId::new(0))?;
        let p = profile_task(device, &task)?;
        Ok(Row {
            benchmark: b.kind.name().to_string(),
            achieved: p.occupancy.achieved.value(),
            theoretical: p.occupancy.theoretical.value(),
            ratio: p.occupancy.achieved_ratio() * 100.0,
            paper_achieved: b.occupancy.achieved.value(),
            paper_theoretical: b.occupancy.theoretical.value(),
        })
    })
}

/// Full experiment: rows rendered as a table.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Benchmark",
        "Achieved %",
        "Paper Achieved %",
        "Theoretical %",
        "Paper Theoretical %",
        "% of Theor. Achieved",
    ]);
    for r in rows(device)? {
        table.push_row([
            r.benchmark.clone(),
            fmt(r.achieved, 2),
            fmt(r.paper_achieved, 2),
            fmt(r.theoretical, 2),
            fmt(r.paper_theoretical, 2),
            fmt(r.ratio, 2),
        ]);
    }
    Ok(Experiment::new(
        "table1",
        "Warp occupancy metrics for each benchmark (1x problem size)",
        table,
    )
    .with_note(
        "theoretical occupancy comes from the CUDA occupancy calculator on the model \
         launch geometry; achieved additionally reflects grid load balance and issue efficiency",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_occupancies() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            let theo_err = (r.theoretical - r.paper_theoretical).abs() / r.paper_theoretical;
            let ach_err = (r.achieved - r.paper_achieved).abs() / r.paper_achieved;
            assert!(
                theo_err < 0.03,
                "{}: theoretical off by {theo_err:.3}",
                r.benchmark
            );
            assert!(
                ach_err < 0.10,
                "{}: achieved off by {ach_err:.3}",
                r.benchmark
            );
        }
    }

    #[test]
    fn experiment_renders_all_benchmarks() {
        let e = run(&DeviceSpec::a100x()).unwrap();
        assert_eq!(e.table.len(), 7);
        let text = e.render();
        assert!(text.contains("LAMMPS"));
        assert!(text.contains("WarpX"));
    }
}
