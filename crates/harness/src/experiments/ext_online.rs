//! Extension experiment: online (open-arrival) scheduling.
//!
//! The paper's scheduler assumes a pre-existing queue; its future work
//! sketches a full scheduling framework. This artifact measures the
//! replanning dispatcher against FIFO one-at-a-time dispatch on seeded
//! bursty arrival processes: batches of workflows arrive faster than a
//! lone GPU drains them, so a backlog forms and collocation choices
//! matter.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{
    ArrivingWorkflow, ExecutorConfig, MetricPriority, OnlineScheduler, Planner, PlannerStrategy,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::ProfileStore;
use mpshare_types::{Result, Seconds};
use mpshare_workloads::{QueueGenerator, WorkflowSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arrival-process seeds swept (one row per seed).
pub const SEEDS: [u64; 4] = [11, 23, 42, 77];

/// One measured arrival process.
#[derive(Debug, Clone)]
pub struct Row {
    pub seed: u64,
    pub workflows: usize,
    pub online_makespan_s: f64,
    pub fifo_makespan_s: f64,
    pub throughput_gain: f64,
    pub energy_gain: f64,
    pub wait_ratio: f64,
}

fn arrivals_for(seed: u64) -> Vec<ArrivingWorkflow> {
    let mut queue_gen = QueueGenerator::new(seed);
    queue_gen.weights[1] = 0.0; // Epsilon: hour-long tasks dominate everything
    queue_gen.weights[6] = 0.0; // WarpX: 60 GiB footprints limit grouping
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut now = 0.0;
    let mut arrivals = Vec::new();
    for batch in 0..3 {
        for _ in 0..4 {
            arrivals.push(ArrivingWorkflow {
                spec: queue_gen.sample_workflow(),
                arrival: Seconds::new(now),
            });
        }
        if batch < 2 {
            now += rng.random_range(120.0..360.0);
        }
    }
    arrivals
}

/// Runs one arrival process under both dispatchers.
pub fn run_seed(device: &DeviceSpec, seed: u64) -> Result<Row> {
    let arrivals = arrivals_for(seed);
    let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
    let mut store = ProfileStore::new();
    store.profile_workflows(device, &specs)?;

    let scheduler = OnlineScheduler::new(
        ExecutorConfig::new(device.clone()),
        Planner::new(device.clone(), MetricPriority::balanced_product()),
        PlannerStrategy::Auto,
    );
    let online = scheduler.run(&arrivals, &store)?;
    let fifo = scheduler.run_fifo(&arrivals, &store)?;
    Ok(Row {
        seed,
        workflows: arrivals.len(),
        online_makespan_s: online.makespan.value(),
        fifo_makespan_s: fifo.makespan.value(),
        throughput_gain: fifo.makespan / online.makespan,
        energy_gain: fifo.energy.joules() / online.energy.joules(),
        wait_ratio: fifo.mean_wait.value() / online.mean_wait.value().max(1e-9),
    })
}

/// The full sweep.
pub fn rows(device: &DeviceSpec) -> Result<Vec<Row>> {
    let mut rows: Vec<Row> = mpshare_par::try_par_map(&SEEDS, |&seed| run_seed(device, seed))?;
    rows.sort_by_key(|r| r.seed);
    Ok(rows)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Seed",
        "Workflows",
        "Online makespan (s)",
        "FIFO makespan (s)",
        "Throughput",
        "Energy Eff.",
        "Wait reduction",
    ]);
    for r in rows(device)? {
        table.push_row([
            r.seed.to_string(),
            r.workflows.to_string(),
            fmt(r.online_makespan_s, 1),
            fmt(r.fifo_makespan_s, 1),
            fmt(r.throughput_gain, 3),
            fmt(r.energy_gain, 3),
            fmt(r.wait_ratio, 2),
        ]);
    }
    Ok(Experiment::new(
        "ext_online",
        "Extension: online dispatcher vs FIFO on bursty arrival processes",
        table,
    )
    .with_note(
        "not a paper artifact: the paper assumes a pre-existing queue; the dispatcher \
         replans whatever has arrived every time the GPU frees",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_beats_fifo_on_every_seed() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        assert_eq!(rows.len(), SEEDS.len());
        for r in &rows {
            assert!(
                r.throughput_gain >= 1.0,
                "seed {}: throughput {}",
                r.seed,
                r.throughput_gain
            );
            assert!(
                r.wait_ratio >= 1.0,
                "seed {}: wait {}",
                r.seed,
                r.wait_ratio
            );
        }
        // At least one bursty process shows a substantial win.
        assert!(rows.iter().any(|r| r.throughput_gain > 1.3));
    }
}
