//! Figure 1: change in throughput as the MPS SM partition grows 10→100 %.
//!
//! The paper plots BerkeleyGW-Epsilon (1a), Kripke (1b) and WarpX (1c) at
//! several input scales. Throughput increases non-linearly — small
//! problems saturate at partial partitions (the green circle), large
//! problems respond almost linearly.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_mps::{GpuRunner, GpuSharing};
use mpshare_types::{Fraction, Result, TaskId};
use mpshare_workloads::{benchmark, build_task, BenchmarkKind, ProblemSize};

/// Partition sweep points (percent).
pub const PARTITIONS: [u8; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

/// One sweep point of one series.
#[derive(Debug, Clone)]
pub struct Point {
    pub benchmark: BenchmarkKind,
    pub size: ProblemSize,
    /// MPS partition in percent.
    pub partition: u8,
    /// Task throughput (tasks/hour) at this partition.
    pub tasks_per_hour: f64,
    /// Throughput relative to the 100 % partition.
    pub relative: f64,
}

/// The series the paper plots: Epsilon at 1×, Kripke and WarpX at 1×/2×/4×.
pub fn series() -> Vec<(BenchmarkKind, ProblemSize)> {
    vec![
        (BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1),
        (BenchmarkKind::Kripke, ProblemSize::X1),
        (BenchmarkKind::Kripke, ProblemSize::X2),
        (BenchmarkKind::Kripke, ProblemSize::X4),
        (BenchmarkKind::WarpX, ProblemSize::X1),
        (BenchmarkKind::WarpX, ProblemSize::X2),
        (BenchmarkKind::WarpX, ProblemSize::X4),
    ]
}

/// Runs the sweep for all series.
pub fn points(device: &DeviceSpec) -> Result<Vec<Point>> {
    let jobs: Vec<(BenchmarkKind, ProblemSize, u8)> = series()
        .into_iter()
        .flat_map(|(kind, size)| PARTITIONS.iter().map(move |&p| (kind, size, p)))
        .collect();
    let raw: Vec<(BenchmarkKind, ProblemSize, u8, f64)> =
        mpshare_par::try_par_map(&jobs, |&(kind, size, partition)| {
            let model = benchmark(kind);
            let task = build_task(device, &model, size, TaskId::new(0))?;
            let mut program = mpshare_gpusim::ClientProgram::new(task.label.clone());
            program.push_task(task);
            let runner = GpuRunner::new(device.clone());
            let sharing = GpuSharing::Mps {
                partitions: vec![Fraction::new(partition as f64 / 100.0)],
            };
            let result = runner.run(&sharing, vec![program])?;
            Ok((kind, size, partition, 3600.0 / result.makespan.value()))
        })?;

    // Normalize each series by its 100 % point.
    let mut points = Vec::with_capacity(raw.len());
    for (kind, size) in series() {
        let full = raw
            .iter()
            .find(|(k, s, p, _)| *k == kind && *s == size && *p == 100)
            .expect("100% point present")
            .3;
        for &(k, s, p, tph) in &raw {
            if k == kind && s == size {
                points.push(Point {
                    benchmark: k,
                    size: s,
                    partition: p,
                    tasks_per_hour: tph,
                    relative: tph / full,
                });
            }
        }
    }
    Ok(points)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Benchmark",
        "Size",
        "Partition %",
        "Tasks/hour",
        "Relative to 100%",
    ]);
    for p in points(device)? {
        table.push_row([
            p.benchmark.name().to_string(),
            p.size.to_string(),
            p.partition.to_string(),
            fmt(p.tasks_per_hour, 2),
            fmt(p.relative, 3),
        ]);
    }
    Ok(Experiment::new(
        "fig1",
        "Throughput vs. MPS SM partition percentage (10-100%)",
        table,
    )
    .with_note("small problems saturate at partial partitions; larger sizes respond more linearly"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn by_series(points: &[Point]) -> BTreeMap<(BenchmarkKind, String), Vec<&Point>> {
        let mut map: BTreeMap<(BenchmarkKind, String), Vec<&Point>> = BTreeMap::new();
        for p in points {
            map.entry((p.benchmark, p.size.to_string()))
                .or_default()
                .push(p);
        }
        map
    }

    #[test]
    fn throughput_is_monotone_in_partition() {
        let pts = points(&DeviceSpec::a100x()).unwrap();
        for ((kind, size), series) in by_series(&pts) {
            let mut prev = 0.0;
            for p in series {
                assert!(
                    p.relative >= prev - 1e-9,
                    "{kind} {size}: non-monotone at {}%",
                    p.partition
                );
                prev = p.relative;
            }
        }
    }

    #[test]
    fn curves_are_concave_saturating_not_linear() {
        // The paper's core Figure 1 observation: at small sizes the first
        // half of the partition range buys much more than the second half.
        let pts = points(&DeviceSpec::a100x()).unwrap();
        let rel = |kind, size: ProblemSize, part: u8| {
            pts.iter()
                .find(|p| {
                    p.benchmark == kind && p.size.factor() == size.factor() && p.partition == part
                })
                .unwrap()
                .relative
        };
        // Epsilon 1x: going 10->50 gains far more than 50->100.
        let eps_low = rel(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 50)
            - rel(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 10);
        let eps_high = rel(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 100)
            - rel(BenchmarkKind::BerkeleyGwEpsilon, ProblemSize::X1, 50);
        assert!(
            eps_low > 1.8 * eps_high,
            "Epsilon 1x not saturating: low {eps_low:.3} high {eps_high:.3}"
        );
    }

    #[test]
    fn larger_warpx_is_more_linear() {
        // Fig 1c: 4x responds more linearly than 1x. Compare the relative
        // throughput at a 50% partition: closer to 0.5 = more linear.
        let pts = points(&DeviceSpec::a100x()).unwrap();
        let rel = |size: ProblemSize| {
            pts.iter()
                .find(|p| {
                    p.benchmark == BenchmarkKind::WarpX
                        && p.size.factor() == size.factor()
                        && p.partition == 50
                })
                .unwrap()
                .relative
        };
        let r1 = rel(ProblemSize::X1);
        let r4 = rel(ProblemSize::X4);
        assert!(r1 > r4, "1x ({r1:.3}) should saturate above 4x ({r4:.3})");
        assert!(r4 < 0.65, "4x should be nearly linear, got {r4:.3}");
    }
}
