//! Extension experiment: node scaling (not in the paper, enabled by the
//! multi-GPU scheduler).
//!
//! Takes a mixed queue, plans it once, distributes the groups across 1, 2
//! and 4 GPUs, and reports node-level throughput and energy against the
//! node-sequential baseline. Shows that collocation gains survive — and
//! idle-power amortization matters more — as the node grows.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{
    distribute_plan, workflow_profile, ExecutorConfig, MetricPriority, Metrics, NodeExecutor,
    Planner, PlannerStrategy,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::ProfileStore;
use mpshare_types::Result;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// GPU counts swept.
pub const GPU_COUNTS: [usize; 3] = [1, 2, 4];

/// The queue used for the scaling sweep: eight mixed workflows.
pub fn queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 3),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 40),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X2, 8),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 40),
        WorkflowSpec::uniform(BenchmarkKind::WarpX, ProblemSize::X1, 4),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 2),
    ]
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    pub gpus: usize,
    pub metrics: Metrics,
    pub node_makespan_s: f64,
}

/// Runs the sweep.
pub fn points(device: &DeviceSpec) -> Result<Vec<Point>> {
    let q = queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(device, &q)?;
    let profiles: Vec<_> = q
        .iter()
        .map(|w| workflow_profile(&store, w))
        .collect::<Result<Vec<_>>>()?;
    let plan = Planner::new(device.clone(), MetricPriority::balanced_product())
        .plan(&profiles, PlannerStrategy::Auto)?;

    GPU_COUNTS
        .iter()
        .map(|&gpus| {
            let node_plan = distribute_plan(device, &plan, &profiles, gpus, 0.0)?;
            let exec = NodeExecutor::new(ExecutorConfig::new(device.clone()), gpus)?;
            let shared = exec.run_plan(&q, &node_plan)?;
            let metrics = exec.evaluate(&q, &profiles, &node_plan)?;
            Ok(Point {
                gpus,
                metrics,
                node_makespan_s: shared.makespan.value(),
            })
        })
        .collect()
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "GPUs",
        "Node makespan (s)",
        "Throughput vs node-seq",
        "Energy eff vs node-seq",
    ]);
    for p in points(device)? {
        table.push_row([
            p.gpus.to_string(),
            fmt(p.node_makespan_s, 1),
            fmt(p.metrics.throughput_gain, 3),
            fmt(p.metrics.energy_efficiency_gain, 3),
        ]);
    }
    Ok(Experiment::new(
        "ext_node",
        "Extension: collocation gains across node sizes (1/2/4 GPUs)",
        table,
    )
    .with_note(
        "not a paper artifact: enabled by the multi-GPU scheduler; baselines are \
         node-sequential (FIFO to first-free GPU, exclusive execution)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_preserves_collocation_gains() {
        let pts = points(&DeviceSpec::a100x()).unwrap();
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(
                p.metrics.throughput_gain > 1.0,
                "{} GPUs: gain {}",
                p.gpus,
                p.metrics.throughput_gain
            );
        }
        // More GPUs -> shorter node makespan.
        assert!(pts[1].node_makespan_s < pts[0].node_makespan_s);
        assert!(pts[2].node_makespan_s <= pts[1].node_makespan_s + 1e-6);
    }
}
