//! Figure 5: throughput, energy efficiency, and product for different
//! scheduling *configurations* of the same total work.
//!
//! Unlike Figure 4, the total task count is constant (16 tasks); what
//! varies is the split into sequential-tasks × concurrent-workflows:
//! 16x1, 8x2, 4x4, 2x8, 1x16. The paper's finding: fewer, longer-running
//! workflows benefit throughput most, while maximal oversubscription buys
//! slightly more energy efficiency.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{Executor, ExecutorConfig, Metrics, ProductMetric};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// Total tasks in every configuration.
pub const TOTAL_TASKS: usize = 16;

/// The `(sequential, parallel)` splits swept.
pub const CONFIGS: [(usize, usize); 5] = [(16, 1), (8, 2), (4, 4), (2, 8), (1, 16)];

/// One configuration's result.
#[derive(Debug, Clone)]
pub struct Point {
    pub benchmark: BenchmarkKind,
    pub config: String,
    pub concurrent_workflows: usize,
    pub metrics: Metrics,
}

/// Runs one configuration of one benchmark.
pub fn run_config(
    device: &DeviceSpec,
    kind: BenchmarkKind,
    seq_tasks: usize,
    parallel: usize,
) -> Result<Point> {
    assert_eq!(
        seq_tasks * parallel,
        TOTAL_TASKS,
        "configs hold work constant"
    );
    let workflows: Vec<WorkflowSpec> = (0..parallel)
        .map(|_| WorkflowSpec::uniform(kind, ProblemSize::X4, seq_tasks))
        .collect();
    let executor = Executor::new(ExecutorConfig::new(device.clone()));
    let seq = executor.run_sequential(&workflows)?;
    let mps = executor.run_mps_naive(&workflows)?;
    Ok(Point {
        benchmark: kind,
        config: format!("{seq_tasks}x{parallel}"),
        concurrent_workflows: parallel,
        metrics: executor.report(mps, seq).metrics,
    })
}

/// The full configuration sweep for both benchmarks.
pub fn points(device: &DeviceSpec) -> Result<Vec<Point>> {
    let jobs: Vec<(BenchmarkKind, usize, usize)> = [BenchmarkKind::AthenaPk, BenchmarkKind::Lammps]
        .into_iter()
        .flat_map(|k| CONFIGS.iter().map(move |&(s, p)| (k, s, p)))
        .collect();
    let mut pts: Vec<Point> =
        mpshare_par::try_par_map(&jobs, |&(kind, s, p)| run_config(device, kind, s, p))?;
    pts.sort_by_key(|p| (p.benchmark, p.concurrent_workflows));
    Ok(pts)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Benchmark",
        "Config",
        "Clients",
        "Throughput",
        "Energy Eff.",
        "T*E Product",
    ]);
    for p in points(device)? {
        table.push_row([
            p.benchmark.name().to_string(),
            p.config.clone(),
            p.concurrent_workflows.to_string(),
            fmt(p.metrics.throughput_gain, 3),
            fmt(p.metrics.energy_efficiency_gain, 3),
            fmt(p.metrics.product(ProductMetric::BALANCED), 3),
        ]);
    }
    Ok(Experiment::new(
        "fig5",
        "Throughput/energy efficiency/product vs. scheduling configuration (16 tasks total)",
        table,
    )
    .with_note(
        "for the low-utilization workflow, a small number of longer workflows maximizes \
         throughput even though more concurrent MPS clients would fit",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athena_fewer_longer_workflows_beat_wide_oversubscription() {
        // Paper: "scheduling fewer, longer-running workflows yields the
        // most benefit to throughput". Compare 8x2 against 1x16.
        let d = DeviceSpec::a100x();
        let narrow = run_config(&d, BenchmarkKind::AthenaPk, 8, 2).unwrap();
        let wide = run_config(&d, BenchmarkKind::AthenaPk, 1, 16).unwrap();
        assert!(
            narrow.metrics.throughput_gain > wide.metrics.throughput_gain,
            "narrow {} !> wide {}",
            narrow.metrics.throughput_gain,
            wide.metrics.throughput_gain
        );
    }

    #[test]
    fn single_workflow_config_matches_sequential() {
        let d = DeviceSpec::a100x();
        let p = run_config(&d, BenchmarkKind::AthenaPk, 16, 1).unwrap();
        assert!((p.metrics.throughput_gain - 1.0).abs() < 0.02);
        assert!((p.metrics.energy_efficiency_gain - 1.0).abs() < 0.02);
    }

    #[test]
    fn lammps_configuration_is_irrelevant() {
        // Paper: LAMMPS workflows do not benefit regardless of
        // configuration (~6 % at best).
        let d = DeviceSpec::a100x();
        let a = run_config(&d, BenchmarkKind::Lammps, 8, 2).unwrap();
        let b = run_config(&d, BenchmarkKind::Lammps, 2, 8).unwrap();
        for p in [&a, &b] {
            assert!(
                p.metrics.throughput_gain > 0.9 && p.metrics.throughput_gain < 1.15,
                "{}: {}",
                p.config,
                p.metrics.throughput_gain
            );
        }
        assert!((a.metrics.throughput_gain - b.metrics.throughput_gain).abs() < 0.12);
    }

    #[test]
    #[should_panic(expected = "configs hold work constant")]
    fn mismatched_split_is_rejected() {
        let d = DeviceSpec::a100x();
        let _ = run_config(&d, BenchmarkKind::AthenaPk, 3, 4);
    }
}
