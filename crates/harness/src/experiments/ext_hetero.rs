//! Extension experiment: heterogeneous nodes (the paper's intro motivates
//! a "heterogeneous accelerator era in HPC"; its future work names AMD
//! architectures).
//!
//! The same planned queue is distributed over three node shapes —
//! 2× A100X, 2× MI250X-GCD, and one of each — with speed-aware LPT
//! placement. Workloads are calibrated on the A100X (the profiling
//! device) and rescale on the GCD.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{
    distribute_plan_heterogeneous, relative_throughput, workflow_profile, ExecutorConfig,
    HeteroNodeExecutor, MetricPriority, Planner, PlannerStrategy,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::ProfileStore;
use mpshare_types::Result;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// The queue used across node shapes.
pub fn queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 3),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 40),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X2, 8),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 40),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X1, 30),
    ]
}

/// One node shape's result.
#[derive(Debug, Clone)]
pub struct Row {
    pub node: String,
    pub makespan_s: f64,
    pub energy_j: f64,
    pub relative_speed: f64,
}

/// Runs the queue on each node shape.
pub fn rows(reference: &DeviceSpec) -> Result<Vec<Row>> {
    let amd = DeviceSpec::mi250x_gcd();
    let shapes: Vec<(String, Vec<DeviceSpec>)> = vec![
        (
            "2x A100X".into(),
            vec![reference.clone(), reference.clone()],
        ),
        ("2x MI250X-GCD".into(), vec![amd.clone(), amd.clone()]),
        (
            "A100X + MI250X-GCD".into(),
            vec![reference.clone(), amd.clone()],
        ),
    ];

    let q = queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(reference, &q)?;
    let profiles: Vec<_> = q
        .iter()
        .map(|w| workflow_profile(&store, w))
        .collect::<Result<Vec<_>>>()?;
    let plan = Planner::new(reference.clone(), MetricPriority::balanced_product())
        .plan(&profiles, PlannerStrategy::Auto)?;

    shapes
        .into_iter()
        .map(|(name, devices)| {
            let node = distribute_plan_heterogeneous(reference, &devices, &plan, &profiles, 0.0)?;
            let exec =
                HeteroNodeExecutor::new(ExecutorConfig::new(reference.clone()), devices.clone())?;
            let outcome = exec.run_plan(&q, &node)?;
            let speed: f64 = devices
                .iter()
                .map(|d| relative_throughput(d, reference))
                .sum();
            Ok(Row {
                node: name,
                makespan_s: outcome.makespan.value(),
                energy_j: outcome.energy.joules(),
                relative_speed: speed,
            })
        })
        .collect()
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let mut table = TextTable::new([
        "Node",
        "Aggregate speed (A100X=1)",
        "Makespan (s)",
        "Energy (J)",
    ]);
    for r in rows(device)? {
        table.push_row([
            r.node.clone(),
            fmt(r.relative_speed, 2),
            fmt(r.makespan_s, 1),
            fmt(r.energy_j, 0),
        ]);
    }
    Ok(Experiment::new(
        "ext_hetero",
        "Extension: the same planned queue on homogeneous and mixed GPU nodes",
        table,
    )
    .with_note(
        "workloads are profiled on the A100X; the GCD runs them rescaled (82% of the \
         bandwidth, higher idle draw); for queues that do not saturate the GCD the \
         makespans coincide and the node shapes separate on energy",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_shapes_order_by_energy_and_makespan() {
        let rows = rows(&DeviceSpec::a100x()).unwrap();
        assert_eq!(rows.len(), 3);
        let (a100, amd, mixed) = (&rows[0], &rows[1], &rows[2]);
        // This queue does not saturate the GCD's bandwidth, so makespans
        // are close; the A100X node is never slower beyond noise.
        assert!(
            a100.makespan_s <= amd.makespan_s * 1.02,
            "A100X node slower: {} vs {}",
            a100.makespan_s,
            amd.makespan_s
        );
        // Energy separates the shapes cleanly: the GCD idles at 90 W vs
        // the A100X's 75 W, so the all-GCD node costs the most and the
        // mixed node sits between.
        assert!(
            a100.energy_j < mixed.energy_j,
            "{} !< {}",
            a100.energy_j,
            mixed.energy_j
        );
        assert!(
            mixed.energy_j < amd.energy_j,
            "{} !< {}",
            mixed.energy_j,
            amd.energy_j
        );
        // Aggregate speeds reflect the bandwidth-bound rescaling.
        assert!(a100.relative_speed > mixed.relative_speed);
        assert!(mixed.relative_speed > amd.relative_speed);
    }
}
