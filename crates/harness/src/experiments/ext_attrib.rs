//! Extension experiment: exact interference attribution.
//!
//! The paper reports co-run slowdowns as single numbers (Tables I–III);
//! this artifact decomposes them. A four-client MPS group runs with the
//! engine's event log on, and [`mpshare_obs::attribute`] splits each
//! client's excess turnaround over its solo run into four physically
//! meaningful components — SM-partition restriction, bandwidth
//! contention, power throttling, and memory waits — computed *exactly*
//! from the piecewise-constant segments (the components sum to the
//! observed excess to floating-point roundoff, pinned at 1e-9 below).

use crate::table::{fmt, Experiment, TextTable};
use mpshare_gpusim::{ClientProgram, DeviceSpec, Engine, EngineConfig, RunResult, SharingMode};
use mpshare_obs::AttributionReport;
use mpshare_types::{Fraction, IdAllocator, Result};
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// MPS partition each client gets: restricted below 100 % so the
/// granularity (SM-partition) component is visibly non-zero, large
/// enough that the group still oversubscribes and contends.
pub const PARTITION: f64 = 0.5;

/// The attributed group: the ext_faults quartet — two light solver
/// pairs with enough concurrent residency that every component of the
/// decomposition has something to measure.
fn workloads() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
    ]
}

fn programs(device: &DeviceSpec) -> Result<Vec<ClientProgram>> {
    let mut ids = IdAllocator::new();
    workloads()
        .iter()
        .map(|w| w.to_client_program(device, &mut ids))
        .collect()
}

fn config(device: &DeviceSpec, clients: usize) -> EngineConfig {
    EngineConfig::new(
        device.clone(),
        SharingMode::Mps {
            partitions: vec![Fraction::new(PARTITION); clients],
        },
    )
    .with_sharing_overhead(mpshare_core::executor::DEFAULT_MPS_OVERHEAD)
    .with_event_log(true)
}

/// The shared run the attribution decomposes, with its exact config and
/// programs. Also the engine timeline `--trace-out` merges into the
/// unified Perfetto artifact.
pub fn traced_run(device: &DeviceSpec) -> Result<(EngineConfig, Vec<ClientProgram>, RunResult)> {
    let programs = programs(device)?;
    let config = config(device, programs.len());
    let result = Engine::new(config.clone(), programs.clone())?.run()?;
    Ok((config, programs, result))
}

/// Runs the group and attributes every client's slowdown.
pub fn report(device: &DeviceSpec) -> Result<AttributionReport> {
    let (config, programs, result) = traced_run(device)?;
    mpshare_obs::attribute(&config, &programs, &result)
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let report = report(device)?;
    let mut table = TextTable::new([
        "Client",
        "Label",
        "Solo (s)",
        "Turnaround (s)",
        "Slowdown",
        "SM Part (s)",
        "Contention (s)",
        "Throttle (s)",
        "Mem Wait (s)",
        "Residual (s)",
    ]);
    for c in &report.clients {
        table.push_row([
            c.client.to_string(),
            c.label.clone(),
            fmt(c.solo_turnaround, 2),
            fmt(c.shared_turnaround, 2),
            fmt(c.slowdown, 4),
            fmt(c.sm_partition, 3),
            fmt(c.bandwidth_contention, 3),
            fmt(c.power_throttle, 3),
            fmt(c.memory_wait, 3),
            format!("{:.1e}", c.residual),
        ]);
    }
    Ok(Experiment::new(
        "ext_attrib",
        "Extension: per-client slowdown attribution under a shared MPS group",
        table,
    )
    .with_note(
        "each client's excess turnaround over its measured solo run is \
         decomposed exactly from the engine's piecewise-constant segments \
         and event log into SM-partition, bandwidth-contention, \
         power-throttle, and memory-wait seconds; the four components sum \
         to the observed excess to floating-point roundoff (|residual| \
         < 1e-9), so nothing of the slowdown is left unexplained",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_observed_slowdown() {
        let report = report(&DeviceSpec::a100x()).unwrap();
        assert_eq!(report.mode, "mps");
        assert_eq!(report.clients.len(), 4);
        for c in &report.clients {
            assert!(c.completed && c.exact, "fault-free run: all exact");
            let total = c.sm_partition + c.bandwidth_contention + c.power_throttle + c.memory_wait;
            assert!(
                (c.excess - total).abs() < 1e-9,
                "client {}: excess {} vs components {}",
                c.client,
                c.excess,
                total
            );
            assert!(c.residual.abs() < 1e-9);
            assert!(c.slowdown >= 1.0 - 1e-9, "slowdown {}", c.slowdown);
            // Restricted partitions cost real time.
            assert!(c.sm_partition > 0.0);
        }
        // A four-way group must show some contention somewhere.
        assert!(report.clients.iter().any(|c| c.bandwidth_contention > 0.0));
    }

    #[test]
    fn experiment_renders_one_row_per_client() {
        let experiment = run(&DeviceSpec::a100x()).unwrap();
        let rendered = experiment.render();
        assert!(rendered.contains("ext_attrib"));
        assert!(rendered.contains("Contention (s)"));
        for client in ["0", "1", "2", "3"] {
            assert!(rendered.contains(client));
        }
    }
}
