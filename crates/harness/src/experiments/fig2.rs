//! Figure 2: throughput and energy efficiency for workflow combinations
//! 1–10, MPS vs. time-slicing, relative to sequential scheduling.

use super::combos::{run_all, ComboResult};
use crate::table::{fmt_gain, Experiment, TextTable};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;

/// Formats the experiment from pre-computed combination results.
pub fn from_results(results: &[ComboResult]) -> Experiment {
    let mut table = TextTable::new([
        "Comb. #",
        "Tasks",
        "MPS Throughput",
        "MPS Energy Eff.",
        "TS Throughput",
        "TS Energy Eff.",
        "Workflows",
    ]);
    for r in results {
        table.push_row([
            r.number.to_string(),
            r.tasks.to_string(),
            fmt_gain(r.mps.throughput_gain),
            fmt_gain(r.mps.energy_efficiency_gain),
            fmt_gain(r.timesliced.throughput_gain),
            fmt_gain(r.timesliced.energy_efficiency_gain),
            r.label.clone(),
        ]);
    }
    let best_tp = results
        .iter()
        .map(|r| r.mps.throughput_gain)
        .fold(0.0, f64::max);
    let best_eff = results
        .iter()
        .map(|r| r.mps.energy_efficiency_gain)
        .fold(0.0, f64::max);
    Experiment::new(
        "fig2",
        "Throughput and energy efficiency for workflow combinations 1-10 (vs. sequential)",
        table,
    )
    .with_note(format!(
        "best MPS throughput gain {} and energy-efficiency gain {} across combinations \
         (paper: 0%..147% and -2%..109%)",
        fmt_gain(best_tp),
        fmt_gain(best_eff)
    ))
}

/// Runs everything and formats.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    Ok(from_results(&run_all(device)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::combos::run_combination;
    use mpshare_workloads::table3_combinations;

    #[test]
    fn formats_rows_from_results() {
        // Use one real (cheap) combination to exercise the formatting path.
        let combos = table3_combinations();
        let r = run_combination(&DeviceSpec::a100x(), &combos[0]).unwrap();
        let e = from_results(std::slice::from_ref(&r));
        assert_eq!(e.table.len(), 1);
        assert!(e.render().contains("AthenaPK"));
        assert_eq!(e.id, "fig2");
    }
}
