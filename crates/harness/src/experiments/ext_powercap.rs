//! Extension experiment: energy effects of power capping at varying
//! thresholds — the study the paper's §V-C explicitly leaves to future
//! work ("a more comprehensive study of the energy effects of power
//! capping (with varying power thresholds) is left to future work").
//!
//! The hot MHD+LAMMPS pair (combination 7's composition) runs under MPS
//! with the device's software power cap swept from 200 W to 300 W.
//! Reported per threshold: capped time, throughput and energy relative to
//! the *uncapped* (300 W) run, and energy-delay product.

use crate::table::{fmt, Experiment, TextTable};
use mpshare_core::{Executor, ExecutorConfig};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Power, Result};
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

/// Power-cap thresholds swept, watts.
pub const THRESHOLDS: [f64; 6] = [200.0, 220.0, 240.0, 260.0, 280.0, 300.0];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    pub cap_watts: f64,
    pub makespan_s: f64,
    pub energy_j: f64,
    pub capped_fraction: f64,
}

fn workloads() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
    ]
}

/// Runs the sweep.
pub fn points(base_device: &DeviceSpec) -> Result<Vec<Point>> {
    mpshare_par::try_par_map(&THRESHOLDS, |&cap| {
        let mut device = base_device.clone();
        device.power_cap = Power::from_watts(cap);
        let executor = Executor::new(ExecutorConfig::new(device));
        let outcome = executor.run_mps_naive(&workloads())?;
        Ok(Point {
            cap_watts: cap,
            makespan_s: outcome.makespan.value(),
            energy_j: outcome.energy.joules(),
            capped_fraction: outcome.capped_fraction,
        })
    })
}

/// Full experiment.
pub fn run(device: &DeviceSpec) -> Result<Experiment> {
    let pts = points(device)?;
    let reference = pts.last().expect("non-empty sweep"); // 300 W
    let mut table = TextTable::new([
        "Cap (W)",
        "Capped %",
        "Makespan (s)",
        "Throughput vs 300W",
        "Energy vs 300W",
        "Energy*Delay vs 300W",
    ]);
    for p in &pts {
        let throughput = reference.makespan_s / p.makespan_s;
        let energy = p.energy_j / reference.energy_j;
        let edp = (p.energy_j * p.makespan_s) / (reference.energy_j * reference.makespan_s);
        table.push_row([
            fmt(p.cap_watts, 0),
            fmt(p.capped_fraction * 100.0, 1),
            fmt(p.makespan_s, 1),
            fmt(throughput, 3),
            fmt(energy, 3),
            fmt(edp, 3),
        ]);
    }
    Ok(Experiment::new(
        "ext_powercap",
        "Extension: energy effects of power capping at varying thresholds (MHD 4x + LAMMPS 4x under MPS)",
        table,
    )
    .with_note(
        "the study §V-C defers: lower caps throttle longer, stretching the makespan while \
         the idle-power floor keeps accruing — in this rate-proportional power model the \
         latency increase cancels the power savings (the paper's observation) and total \
         energy *rises* as the cap tightens",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_caps_throttle_more_and_run_longer() {
        let pts = points(&DeviceSpec::a100x()).unwrap();
        assert_eq!(pts.len(), THRESHOLDS.len());
        // Capped fraction decreases (weakly) as the cap loosens.
        for w in pts.windows(2) {
            assert!(
                w[0].capped_fraction >= w[1].capped_fraction - 1e-9,
                "capped% not monotone: {} then {}",
                w[0].capped_fraction,
                w[1].capped_fraction
            );
            assert!(
                w[0].makespan_s >= w[1].makespan_s - 1e-6,
                "makespan not monotone"
            );
        }
        // At 200 W the hot pair is heavily throttled.
        assert!(pts[0].capped_fraction > 0.5);
        assert!(pts[0].makespan_s > 1.2 * pts.last().unwrap().makespan_s);
    }

    #[test]
    fn capping_does_not_save_energy_in_this_model() {
        // §V-C: "the resulting increase in task latency from clock
        // throttling seems to cancel out any energy efficiency benefits".
        let pts = points(&DeviceSpec::a100x()).unwrap();
        let tight = &pts[0];
        let loose = pts.last().unwrap();
        assert!(
            tight.energy_j >= loose.energy_j * 0.99,
            "tight cap saved energy: {} vs {}",
            tight.energy_j,
            loose.energy_j
        );
    }
}
