//! The `mpshare report` dashboard: utilization CDFs, stranded capacity,
//! and per-mechanism tail latency from the timeline store.
//!
//! [`generate`] runs the two timeline-instrumented experiments
//! (`ext_mechanisms` for per-mechanism device timelines, `ext_online` for
//! scheduler queue-wait/turnaround) with recording enabled, then
//! [`build`]s a text + JSON dashboard from the recorded series and exact
//! quantile tracks. `build` itself is a pure function of the store and
//! registry, so the rendering is unit-testable without the global
//! recorder and the whole report is deterministic — serial and parallel
//! runs produce byte-identical artifacts.
//!
//! The JSON artifact carries the full CDFs and quantile summaries but not
//! the raw samples (those are the `--timeline-out` export's job), so
//! `results/report.json` stays compact enough to commit.

use crate::table::TextTable;
use mpshare_gpusim::DeviceSpec;
use mpshare_obs::{series, MetricsRegistry, TimelineStore};
use mpshare_types::Result;
use serde_json::Value;

/// Deadline grid (simulated seconds) for the SLO-attainment table: the
/// fraction of completed clients whose turnaround beat each deadline.
pub const SLO_GRID_S: [f64; 5] = [30.0, 60.0, 120.0, 300.0, 600.0];

/// A rendered report: aligned text dashboard plus its JSON counterpart.
#[derive(Debug, Clone)]
pub struct Report {
    pub text: String,
    pub json: Value,
}

/// Runs the timeline-instrumented experiments with recording enabled and
/// builds the dashboard from what they recorded. Resets the recorder
/// first so the report covers exactly these runs, and leaves the recorded
/// state in place afterwards (the caller may also want `--timeline-out`
/// or a merged trace from the same run).
pub fn generate(device: &DeviceSpec) -> Result<Report> {
    mpshare_obs::set_enabled(true);
    mpshare_obs::recorder().reset();
    crate::experiments::ext_mechanisms::run(device)?;
    crate::experiments::ext_online::run(device)?;
    Ok(build(mpshare_obs::timelines(), mpshare_obs::metrics()))
}

/// Builds the dashboard from a timeline store and metrics registry. Pure:
/// no global state, no side effects.
pub fn build(tl: &TimelineStore, metrics: &MetricsRegistry) -> Report {
    let mut text = String::from("# mpshare report — timeline dashboard\n\n");
    let mut json_sections: Vec<(String, Value)> = Vec::new();

    // -- Device utilization ------------------------------------------------
    let covered = tl.with_series(series::DEVICE_SM_UTIL, |s| s.covered());
    let mean_sm = tl
        .with_series(series::DEVICE_SM_UTIL, |s| s.time_weighted_mean())
        .flatten();
    let stranded = tl.with_series(series::DEVICE_SM_UTIL, |s| s.stranded(1.0));
    let mean_bw = tl
        .with_series(series::DEVICE_BW_UTIL, |s| s.time_weighted_mean())
        .flatten();
    let mean_power = tl
        .with_series(series::DEVICE_POWER_W, |s| s.time_weighted_mean())
        .flatten();
    let cdf = tl
        .with_series(series::DEVICE_SM_UTIL, |s| s.cdf())
        .unwrap_or_default();

    let mut util = TextTable::new(["metric", "value"]);
    let fmt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.4}"),
        None => "-".to_string(),
    };
    util.push_row(["covered sim-seconds".to_string(), fmt(covered)]);
    util.push_row(["mean SM utilization".to_string(), fmt(mean_sm)]);
    util.push_row(["stranded SM-seconds".to_string(), fmt(stranded)]);
    let stranded_fraction = match (stranded, covered) {
        (Some(s), Some(c)) if c > 0.0 => Some(s / c),
        _ => None,
    };
    util.push_row(["stranded fraction".to_string(), fmt(stranded_fraction)]);
    util.push_row(["mean BW utilization".to_string(), fmt(mean_bw)]);
    util.push_row(["mean power (W)".to_string(), fmt(mean_power)]);
    text.push_str("## Device utilization (time-weighted, exact)\n\n");
    text.push_str(&util.render());
    text.push('\n');

    // The CDF rendered at deciles for the text view; the JSON carries
    // every knot.
    if !cdf.is_empty() {
        let mut cdf_table = TextTable::new(["fraction of time", "SM util <="]);
        for decile in 1..=10u32 {
            let p = decile as f64 / 10.0;
            // Smallest value whose cumulative fraction reaches p.
            let v = cdf
                .iter()
                .find(|&&(_, frac)| frac >= p - 1e-12)
                .map(|&(v, _)| v)
                .unwrap_or(cdf.last().unwrap().0);
            // `+ 0.0` normalizes -0.0 so the text table never prints "-0.0000".
            cdf_table.push_row([format!("{p:.1}"), format!("{:.4}", v + 0.0)]);
        }
        text.push_str("## SM-utilization CDF (time-weighted)\n\n");
        text.push_str(&cdf_table.render());
        text.push('\n');
    }

    json_sections.push((
        "utilization".to_string(),
        Value::Object(vec![
            ("covered_s".to_string(), opt(covered)),
            ("mean_sm_util".to_string(), opt(mean_sm)),
            ("stranded_sm_seconds".to_string(), opt(stranded)),
            ("stranded_fraction".to_string(), opt(stranded_fraction)),
            ("mean_bw_util".to_string(), opt(mean_bw)),
            ("mean_power_w".to_string(), opt(mean_power)),
            ("sm_util_cdf".to_string(), pairs(&cdf)),
        ]),
    ));

    // -- Per-mechanism tail latency and SLO attainment ---------------------
    let mechanisms: Vec<String> = tl
        .quantile_names()
        .into_iter()
        .filter_map(|n| {
            n.strip_prefix("turnaround.")
                .and_then(|rest| rest.strip_suffix("_s"))
                .map(str::to_string)
        })
        .collect();

    let mut tail = TextTable::new([
        "mechanism",
        "n",
        "p50",
        "p90",
        "p99",
        "p999",
        "max",
        "mean util",
    ]);
    let mut slo = {
        let mut headers = vec!["mechanism".to_string()];
        headers.extend(SLO_GRID_S.iter().map(|d| format!("<={d}s")));
        TextTable::new(headers)
    };
    let mut mech_json: Vec<(String, Value)> = Vec::new();
    for mech in &mechanisms {
        let track = series::mechanism_turnaround(mech);
        let stats = tl.with_quantiles(&track, |q| {
            (
                q.len(),
                q.p50(),
                q.p90(),
                q.p99(),
                q.p999(),
                q.max(),
                q.cdf(),
                SLO_GRID_S.map(|d| q.attainment(d)),
            )
        });
        let Some((n, p50, p90, p99, p999, max, cdf, attainment)) = stats else {
            continue;
        };
        let occupancy_mean = tl
            .with_series(&series::occupancy(mech), |s| s.time_weighted_mean())
            .flatten();
        tail.push_row([
            mech.clone(),
            n.to_string(),
            fmt(p50),
            fmt(p90),
            fmt(p99),
            fmt(p999),
            fmt(max),
            fmt(occupancy_mean),
        ]);
        let mut slo_row = vec![mech.clone()];
        slo_row.extend(attainment.iter().map(|a| fmt(*a)));
        slo.push_row(slo_row);
        mech_json.push((
            mech.clone(),
            Value::Object(vec![
                ("count".to_string(), Value::U64(n as u64)),
                ("p50".to_string(), opt(p50)),
                ("p90".to_string(), opt(p90)),
                ("p99".to_string(), opt(p99)),
                ("p999".to_string(), opt(p999)),
                ("max".to_string(), opt(max)),
                ("mean_occupancy".to_string(), opt(occupancy_mean)),
                ("turnaround_cdf".to_string(), pairs(&cdf)),
                (
                    "slo_attainment".to_string(),
                    Value::Object(
                        SLO_GRID_S
                            .iter()
                            .zip(attainment)
                            .map(|(d, a)| (format!("{d}"), opt(a)))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if !tail.is_empty() {
        text.push_str(
            "## Turnaround tail latency per mechanism (sim-seconds, exact quantiles)\n\n",
        );
        text.push_str(&tail.render());
        text.push('\n');
        text.push_str("## SLO attainment per mechanism (fraction of clients within deadline)\n\n");
        text.push_str(&slo.render());
        text.push('\n');
    }
    json_sections.push(("mechanisms".to_string(), Value::Object(mech_json)));

    // -- Online scheduler --------------------------------------------------
    // Goodput is recomputed from deterministic sums (completed tasks over
    // simulated seconds), not the GOODPUT gauge: a gauge's last-write is
    // scenario-order-dependent under parallel sweeps.
    let tasks = metrics.counter_get(mpshare_obs::names::TASKS_COMPLETED);
    let sim_seconds = metrics.gauge_get(mpshare_obs::names::ENGINE_SIM_SECONDS);
    let goodput = (sim_seconds > 0.0).then(|| tasks as f64 / sim_seconds);
    let mut sched = TextTable::new(["metric", "n", "p50", "p90", "p99", "p999"]);
    let mut sched_json: Vec<(String, Value)> = Vec::new();
    for (label, track) in [
        ("queue wait (s)", series::SCHED_QUEUE_WAIT),
        ("turnaround (s)", series::SCHED_TURNAROUND),
    ] {
        let stats = tl.with_quantiles(track, |q| (q.len(), q.p50(), q.p90(), q.p99(), q.p999()));
        let Some((n, p50, p90, p99, p999)) = stats else {
            continue;
        };
        sched.push_row([
            label.to_string(),
            n.to_string(),
            fmt(p50),
            fmt(p90),
            fmt(p99),
            fmt(p999),
        ]);
        sched_json.push((
            track.to_string(),
            Value::Object(vec![
                ("count".to_string(), Value::U64(n as u64)),
                ("p50".to_string(), opt(p50)),
                ("p90".to_string(), opt(p90)),
                ("p99".to_string(), opt(p99)),
                ("p999".to_string(), opt(p999)),
            ]),
        ));
    }
    if !sched.is_empty() {
        text.push_str("## Online scheduler (workflow-level, exact quantiles)\n\n");
        text.push_str(&sched.render());
        text.push('\n');
    }
    text.push_str(&format!(
        "goodput: {} tasks over {sim_seconds:.2} sim-seconds = {}\n",
        tasks,
        fmt(goodput)
    ));
    sched_json.push(("tasks_completed".to_string(), Value::U64(tasks)));
    sched_json.push(("engine_sim_seconds".to_string(), Value::F64(sim_seconds)));
    sched_json.push(("goodput".to_string(), opt(goodput)));
    json_sections.push(("scheduler".to_string(), Value::Object(sched_json)));

    Report {
        text,
        json: Value::Object(json_sections),
    }
}

fn opt(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::F64(x),
        None => Value::Null,
    }
}

fn pairs(p: &[(f64, f64)]) -> Value {
    Value::Array(
        p.iter()
            .map(|&(a, b)| Value::Array(vec![Value::F64(a), Value::F64(b)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_store() -> (TimelineStore, MetricsRegistry) {
        let tl = TimelineStore::new();
        // Two "runs": 60% util for 10s, 30% for 10s.
        tl.series_push_span(series::DEVICE_SM_UTIL, 0.0, 10.0, 0.6);
        tl.series_push_span(series::DEVICE_SM_UTIL, 0.0, 10.0, 0.3);
        tl.series_push_span(series::DEVICE_BW_UTIL, 0.0, 20.0, 0.2);
        tl.series_push_span(series::DEVICE_POWER_W, 0.0, 20.0, 250.0);
        tl.series_push_span(&series::occupancy("mps"), 0.0, 10.0, 0.6);
        for v in [20.0, 45.0, 100.0, 500.0] {
            tl.quantile_observe(&series::mechanism_turnaround("mps"), v);
        }
        tl.quantile_observe(series::SCHED_QUEUE_WAIT, 5.0);
        tl.quantile_observe(series::SCHED_TURNAROUND, 50.0);
        let metrics = MetricsRegistry::new();
        metrics.counter_add(mpshare_obs::names::TASKS_COMPLETED, 40);
        metrics.gauge_add(mpshare_obs::names::ENGINE_SIM_SECONDS, 20.0);
        (tl, metrics)
    }

    #[test]
    fn report_carries_every_section_and_is_deterministic() {
        let (tl, metrics) = seeded_store();
        let a = build(&tl, &metrics);
        let b = build(&tl, &metrics);
        assert_eq!(a.text, b.text);
        assert_eq!(
            serde_json::to_string(&a.json).unwrap(),
            serde_json::to_string(&b.json).unwrap()
        );
        for needle in [
            "Device utilization",
            "SM-utilization CDF",
            "tail latency per mechanism",
            "SLO attainment",
            "Online scheduler",
            "goodput",
            "mps",
        ] {
            assert!(a.text.contains(needle), "missing section {needle:?}");
        }
        let rendered = serde_json::to_string(&a.json).unwrap();
        assert!(rendered.contains("\"stranded_sm_seconds\""));
        assert!(rendered.contains("\"slo_attainment\""));
        assert!(rendered.contains("\"goodput\""));
    }

    #[test]
    fn report_numbers_are_exact() {
        let (tl, metrics) = seeded_store();
        let report = build(&tl, &metrics);
        // Mean util = (0.6*10 + 0.3*10) / 20 = 0.45; stranded = 11.0.
        assert!(report.text.contains("0.4500"));
        assert!(report.text.contains("11.0000"));
        // Goodput = 40 / 20 = 2.0.
        assert!(report.text.contains("2.0000"));
        // mps attainment at 60s: 2 of 4 turnarounds within deadline.
        assert!(report.text.contains("0.5000"));
    }

    #[test]
    fn empty_store_renders_without_panicking() {
        let report = build(&TimelineStore::new(), &MetricsRegistry::new());
        assert!(report.text.contains("mpshare report"));
        assert!(report.text.contains("goodput"));
        let rendered = serde_json::to_string(&report.json).unwrap();
        assert!(rendered.contains("\"utilization\""));
    }
}
