//! Result persistence: text, CSV and JSON artifacts under a results dir.

use crate::table::Experiment;
use std::fs;
use std::io;
use std::path::Path;

/// Writes `<id>.txt`, `<id>.csv`, and `<id>.json` for each experiment into
/// `dir` (created if missing). Returns the paths written.
pub fn write_results(
    dir: &Path,
    experiments: &[Experiment],
) -> io::Result<Vec<std::path::PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for e in experiments {
        let txt = dir.join(format!("{}.txt", e.id));
        fs::write(&txt, e.render())?;
        written.push(txt);

        let csv = dir.join(format!("{}.csv", e.id));
        fs::write(&csv, e.table.to_csv())?;
        written.push(csv);

        let json = dir.join(format!("{}.json", e.id));
        let body = serde_json::to_string_pretty(e).map_err(io::Error::other)?;
        fs::write(&json, body)?;
        written.push(json);
    }
    Ok(written)
}

/// Writes a combined `REPORT.md` rendering every experiment in order —
/// the one-file artifact to skim after `mpshare-repro all`.
pub fn write_report(dir: &Path, experiments: &[Experiment]) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let mut body = String::from(
        "# mpshare — regenerated paper artifacts\n\n\
         Produced by `mpshare-repro`. Each section is one table or figure of\n\
         the paper (or an extension); see EXPERIMENTS.md for the\n\
         paper-vs-measured discussion.\n\n",
    );
    for e in experiments {
        body.push_str(&format!("## {} — {}\n\n```text\n", e.id, e.title));
        body.push_str(&e.table.render());
        body.push_str("```\n\n");
        for note in &e.notes {
            body.push_str(&format!("> {note}\n\n"));
        }
    }
    let path = dir.join("REPORT.md");
    fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TextTable;

    #[test]
    fn writes_three_files_per_experiment() {
        let dir = std::env::temp_dir().join(format!("mpshare-out-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut t = TextTable::new(["k", "v"]);
        t.push_row(["a", "1"]);
        let experiments = vec![Experiment::new("smoke", "Smoke", t)];
        let written = write_results(&dir, &experiments).unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            assert!(path.exists(), "{path:?} missing");
        }
        let text = fs::read_to_string(dir.join("smoke.txt")).unwrap();
        assert!(text.contains("Smoke"));
        let json = fs::read_to_string(dir.join("smoke.json")).unwrap();
        let parsed: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.id, "smoke");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_concatenates_experiments() {
        let dir = std::env::temp_dir().join(format!("mpshare-report-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut t = TextTable::new(["k", "v"]);
        t.push_row(["a", "1"]);
        let experiments = vec![
            Experiment::new("one", "First", t.clone()).with_note("caveat"),
            Experiment::new("two", "Second", t),
        ];
        let path = write_report(&dir, &experiments).unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("## one — First"));
        assert!(body.contains("## two — Second"));
        assert!(body.contains("> caveat"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
