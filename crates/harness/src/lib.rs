//! `mpshare-harness` — regenerates every table and figure of the paper.
//!
//! One module per artifact (see DESIGN.md's per-experiment index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table I — warp occupancy per benchmark |
//! | [`experiments::table2`] | Table II — utilization statistics per workflow |
//! | [`experiments::fig1`] | Fig. 1 — throughput vs. MPS SM partition |
//! | [`experiments::fig2`] | Fig. 2 — throughput & energy efficiency, combos 1–10 (Table III) |
//! | [`experiments::fig3`] | Fig. 3 — SW power-capping time, combos 1–10 |
//! | [`experiments::fig4`] | Fig. 4 — cardinality sweep (AthenaPK / LAMMPS) |
//! | [`experiments::fig5`] | Fig. 5 — scheduling configuration at constant task count |
//!
//! Each experiment returns an [`Experiment`] (typed rows + rendered text
//! table + notes) that the `mpshare-repro` binary prints and writes under
//! `results/`. EXPERIMENTS.md records paper-vs-measured for each.

pub mod experiments;
pub mod gantt;
pub mod output;
pub mod report;
pub mod table;

pub use gantt::render_gantt;
pub use output::{write_report, write_results};
pub use table::{Experiment, TextTable};
