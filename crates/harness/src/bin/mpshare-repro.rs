//! `mpshare-repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//! ```text
//! mpshare-repro <experiment|all> [--out DIR] [--serial]
//!               [--trace-out FILE] [--metrics-out FILE]
//! mpshare-repro validate-obs --trace-out FILE --metrics-out FILE
//! ```
//!
//! Each experiment prints its table to stdout and writes `.txt`, `.csv`,
//! and `.json` artifacts under the output directory (default `results/`).
//!
//! `--trace-out` (or `MPSHARE_TRACE_OUT`) enables the observability
//! recorder and writes the unified Chrome-tracing/Perfetto artifact —
//! control-plane tracks (planner/scheduler/daemon/executor), merged with
//! the engine timeline of the attributed run when the experiment is
//! `ext_attrib`. `--metrics-out` (or `MPSHARE_METRICS_OUT`) writes the
//! metrics registry as JSON at the given path and as Prometheus text at
//! the same path with `.prom` appended. Recording never changes results:
//! every artifact under `--out` is byte-identical with and without it.
//!
//! `validate-obs` re-opens the two artifacts and checks the invariants
//! the trace-smoke gate relies on: the control tracks are present in the
//! trace and the required metric families exist in the export.
//!
//! Sweep points fan out across worker threads by default; `--serial` (or
//! `MPSHARE_SERIAL=1`) forces single-threaded execution. Both modes
//! produce bit-identical results — the flag only trades wall-clock time.

use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments;
use mpshare_harness::{write_report, write_results, Experiment};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: mpshare-repro <table1|table2|fig1|fig2|fig3|fig4|fig5|ext_node|ext_mechanisms|ext_powercap|ext_online|ext_hetero|ext_faults|ext_attrib|all> [--out DIR] [--serial] [--trace-out FILE] [--metrics-out FILE]\n       mpshare-repro validate-obs --trace-out FILE --metrics-out FILE"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut trace_out = std::env::var("MPSHARE_TRACE_OUT").ok().map(PathBuf::from);
    let mut metrics_out = std::env::var("MPSHARE_METRICS_OUT").ok().map(PathBuf::from);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--serial" => mpshare_par::set_serial(true),
            "-h" | "--help" => usage(),
            other if which.is_none() => which = Some(other.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());

    if which == "validate-obs" {
        return match (trace_out, metrics_out) {
            (Some(trace), Some(metrics)) => validate_obs(&trace, &metrics),
            _ => usage(),
        };
    }

    // Any observability sink enables recording for the whole run.
    if trace_out.is_some() || metrics_out.is_some() {
        mpshare_obs::set_enabled(true);
    }

    let device = DeviceSpec::a100x();
    let started = Instant::now();
    let result: mpshare_types::Result<Vec<Experiment>> =
        experiments::run_named(&device, &which).unwrap_or_else(|| usage());

    let experiments = match result {
        Ok(e) => e,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    for e in &experiments {
        println!("{}", e.render());
    }
    if let Err(err) = write_obs_artifacts(&device, &which, trace_out, metrics_out) {
        eprintln!("failed to write observability artifacts: {err}");
        return ExitCode::FAILURE;
    }
    if which == "all" {
        match write_report(&out_dir, &experiments) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write REPORT.md: {err}"),
        }
    }
    match write_results(&out_dir, &experiments) {
        Ok(paths) => {
            eprintln!(
                "wrote {} files to {} in {:.1}s",
                paths.len(),
                out_dir.display(),
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("failed to write results: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Drains the recorder and writes the merged trace and metric exports.
fn write_obs_artifacts(
    device: &DeviceSpec,
    which: &str,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
) -> std::io::Result<()> {
    if let Some(path) = trace_out {
        // The ext_attrib run is the one experiment with a canonical
        // engine timeline to merge under the control tracks; it is
        // deterministic, so re-running it reproduces the exact result
        // the experiment attributed.
        let engine = if which == "ext_attrib" || which == "all" {
            match experiments::ext_attrib::traced_run(device) {
                Ok((_, _, result)) => Some(result),
                Err(err) => {
                    return Err(std::io::Error::other(format!(
                        "re-running ext_attrib for the trace failed: {err}"
                    )));
                }
            }
        } else {
            None
        };
        let records = mpshare_obs::recorder().drain();
        let trace = mpshare_obs::merged_chrome_trace(engine.as_ref(), &records);
        std::fs::write(&path, trace)?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = metrics_out {
        let metrics = mpshare_obs::metrics();
        let json =
            serde_json::to_string_pretty(&metrics.to_json()).expect("metrics export is valid JSON");
        std::fs::write(&path, json)?;
        let mut prom = path.as_os_str().to_owned();
        prom.push(".prom");
        std::fs::write(&prom, metrics.to_prometheus())?;
        eprintln!("wrote {} (+ .prom)", path.display());
    }
    Ok(())
}

/// Checks the trace and metrics artifacts a recorded run produced: the
/// planner/scheduler/daemon tracks must be present in the trace, and the
/// cache/fault/goodput metric families in the export.
fn validate_obs(trace_path: &PathBuf, metrics_path: &PathBuf) -> ExitCode {
    let mut failures: Vec<String> = Vec::new();

    match std::fs::read_to_string(trace_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
    {
        Ok(trace) => {
            let events = trace
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .cloned()
                .unwrap_or_default();
            if events.is_empty() {
                failures.push("trace has no traceEvents".to_string());
            }
            for (pid, track) in [(3u64, "planner"), (4, "scheduler"), (5, "daemon")] {
                let present = events
                    .iter()
                    .any(|e| e.get("pid").and_then(|p| p.as_u64()) == Some(pid));
                if !present {
                    failures.push(format!("trace is missing the {track} track (pid {pid})"));
                }
            }
        }
        Err(err) => failures.push(format!("cannot parse {}: {err}", trace_path.display())),
    }

    match std::fs::read_to_string(metrics_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
    {
        Ok(metrics) => {
            use mpshare_obs::names;
            let has = |section: &str, name: &str| {
                metrics.get(section).and_then(|s| s.get(name)).is_some()
            };
            for counter in [
                names::PROFILE_CACHE_HITS,
                names::PROFILE_CACHE_MISSES,
                names::ESTIMATE_MEMO_HITS,
                names::ENGINE_RUNS,
                names::ENGINE_RATE_SOLVES,
                names::FAULTS_INJECTED,
                names::CLIENTS_FAILED,
                names::SCHED_DISPATCHES,
                names::PLAN_CALLS,
                names::SERVER_SPAWNS,
            ] {
                if !has("counters", counter) {
                    failures.push(format!("metrics export is missing counter {counter}"));
                }
            }
            for gauge in [names::GOODPUT, names::WASTED_ENERGY_JOULES] {
                if !has("gauges", gauge) {
                    failures.push(format!("metrics export is missing gauge {gauge}"));
                }
            }
            for histogram in [names::GROUP_MAKESPAN_SECONDS, names::PHASE_SIM_SECONDS] {
                if !has("histograms", histogram) {
                    failures.push(format!("metrics export is missing histogram {histogram}"));
                }
            }
        }
        Err(err) => failures.push(format!("cannot parse {}: {err}", metrics_path.display())),
    }

    if failures.is_empty() {
        eprintln!("observability artifacts OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("validate-obs: {f}");
        }
        ExitCode::FAILURE
    }
}
