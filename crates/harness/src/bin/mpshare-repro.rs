//! `mpshare-repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//! ```text
//! mpshare-repro <table1|table2|fig1|fig2|fig3|fig4|fig5|all> [--out DIR] [--serial]
//! ```
//!
//! Each experiment prints its table to stdout and writes `.txt`, `.csv`,
//! and `.json` artifacts under the output directory (default `results/`).
//!
//! Sweep points fan out across worker threads by default; `--serial` (or
//! `MPSHARE_SERIAL=1`) forces single-threaded execution. Both modes
//! produce bit-identical results — the flag only trades wall-clock time.

use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments;
use mpshare_harness::{write_report, write_results, Experiment};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: mpshare-repro <table1|table2|fig1|fig2|fig3|fig4|fig5|ext_node|ext_mechanisms|ext_powercap|ext_online|ext_hetero|ext_faults|all> [--out DIR] [--serial]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--serial" => mpshare_par::set_serial(true),
            "-h" | "--help" => usage(),
            other if which.is_none() => which = Some(other.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());

    let device = DeviceSpec::a100x();
    let started = Instant::now();
    let result: mpshare_types::Result<Vec<Experiment>> = match which.as_str() {
        "table1" => experiments::table1::run(&device).map(|e| vec![e]),
        "table2" => experiments::table2::run(&device).map(|e| vec![e]),
        "fig1" => experiments::fig1::run(&device).map(|e| vec![e]),
        "fig2" => experiments::fig2::run(&device).map(|e| vec![e]),
        "fig3" => experiments::fig3::run(&device).map(|e| vec![e]),
        "fig4" => experiments::fig4::run(&device).map(|e| vec![e]),
        "fig5" => experiments::fig5::run(&device).map(|e| vec![e]),
        "ext_node" => experiments::ext_node::run(&device).map(|e| vec![e]),
        "ext_mechanisms" => experiments::ext_mechanisms::run(&device).map(|e| vec![e]),
        "ext_powercap" => experiments::ext_powercap::run(&device).map(|e| vec![e]),
        "ext_online" => experiments::ext_online::run(&device).map(|e| vec![e]),
        "ext_hetero" => experiments::ext_hetero::run(&device).map(|e| vec![e]),
        "ext_faults" => experiments::ext_faults::run(&device).map(|e| vec![e]),
        "all" => experiments::run_all(&device),
        _ => usage(),
    };

    let experiments = match result {
        Ok(e) => e,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    for e in &experiments {
        println!("{}", e.render());
    }
    if which == "all" {
        match write_report(&out_dir, &experiments) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write REPORT.md: {err}"),
        }
    }
    match write_results(&out_dir, &experiments) {
        Ok(paths) => {
            eprintln!(
                "wrote {} files to {} in {:.1}s",
                paths.len(),
                out_dir.display(),
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("failed to write results: {err}");
            ExitCode::FAILURE
        }
    }
}
