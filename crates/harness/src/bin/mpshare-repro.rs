//! `mpshare-repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//! ```text
//! mpshare-repro <experiment|all> [--out DIR] [--serial]
//!               [--trace-out FILE] [--metrics-out FILE] [--timeline-out FILE]
//! mpshare-repro report [--out DIR] [--serial] [--timeline-out FILE]
//! mpshare-repro validate-obs --trace-out FILE --metrics-out FILE
//!               [--timeline-out FILE]
//! ```
//!
//! Each experiment prints its table to stdout and writes `.txt`, `.csv`,
//! and `.json` artifacts under the output directory (default `results/`).
//!
//! `--trace-out` (or `MPSHARE_TRACE_OUT`) enables the observability
//! recorder and writes the unified Chrome-tracing/Perfetto artifact —
//! control-plane tracks (planner/scheduler/daemon/executor), merged with
//! the engine timeline of the attributed run when the experiment is
//! `ext_attrib`. `--metrics-out` (or `MPSHARE_METRICS_OUT`) writes the
//! metrics registry as JSON at the given path and as Prometheus text at
//! the same path with `.prom` appended. Recording never changes results:
//! every artifact under `--out` is byte-identical with and without it.
//!
//! `--timeline-out` (or `MPSHARE_TIMELINE_OUT`) writes the timeline
//! store's full JSON export — every simulated-time series with its exact
//! integral/CDF, every quantile track with p50/p90/p99/p999 and full CDF.
//! The export is a pure function of the observation multiset: serial and
//! parallel runs produce byte-identical files (the trace-smoke gate pins
//! this).
//!
//! `report` runs the timeline-instrumented experiments and writes the
//! utilization/SLO dashboard (`report.txt` + `report.json`) under the
//! output directory — utilization CDF, stranded-capacity integral, and
//! per-mechanism tail-latency/SLO tables.
//!
//! `validate-obs` re-opens the artifacts and checks the invariants the
//! trace-smoke gate relies on: the control tracks are present in the
//! trace, the required metric families exist in the export, and (when
//! `--timeline-out` is given) the timeline export is well-formed —
//! monotone sample times, monotone CDFs, quantile ordering
//! p50 ≤ p90 ≤ p99 ≤ p999.
//!
//! Sweep points fan out across worker threads by default; `--serial` (or
//! `MPSHARE_SERIAL=1`) forces single-threaded execution. Both modes
//! produce bit-identical results — the flag only trades wall-clock time.

use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments;
use mpshare_harness::{write_report, write_results, Experiment};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: mpshare-repro <table1|table2|fig1|fig2|fig3|fig4|fig5|ext_node|ext_mechanisms|ext_powercap|ext_online|ext_hetero|ext_faults|ext_attrib|all> [--out DIR] [--serial] [--trace-out FILE] [--metrics-out FILE] [--timeline-out FILE]\n       mpshare-repro report [--out DIR] [--serial] [--timeline-out FILE]\n       mpshare-repro validate-obs --trace-out FILE --metrics-out FILE [--timeline-out FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut trace_out = std::env::var("MPSHARE_TRACE_OUT").ok().map(PathBuf::from);
    let mut metrics_out = std::env::var("MPSHARE_METRICS_OUT").ok().map(PathBuf::from);
    let mut timeline_out = std::env::var("MPSHARE_TIMELINE_OUT")
        .ok()
        .map(PathBuf::from);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--timeline-out" => match it.next() {
                Some(path) => timeline_out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--serial" => mpshare_par::set_serial(true),
            "-h" | "--help" => usage(),
            other if which.is_none() => which = Some(other.to_string()),
            _ => usage(),
        }
    }
    let which = which.unwrap_or_else(|| usage());

    if which == "validate-obs" {
        return match (trace_out, metrics_out) {
            (Some(trace), Some(metrics)) => validate_obs(&trace, &metrics, timeline_out.as_ref()),
            _ => usage(),
        };
    }

    if which == "report" {
        return run_report(&out_dir, timeline_out);
    }

    // Any observability sink enables recording for the whole run.
    if trace_out.is_some() || metrics_out.is_some() || timeline_out.is_some() {
        mpshare_obs::set_enabled(true);
    }

    let device = DeviceSpec::a100x();
    let started = Instant::now();
    let result: mpshare_types::Result<Vec<Experiment>> =
        experiments::run_named(&device, &which).unwrap_or_else(|| usage());

    let experiments = match result {
        Ok(e) => e,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    for e in &experiments {
        println!("{}", e.render());
    }
    if let Err(err) = write_obs_artifacts(&device, &which, trace_out, metrics_out, timeline_out) {
        eprintln!("failed to write observability artifacts: {err}");
        return ExitCode::FAILURE;
    }
    if which == "all" {
        match write_report(&out_dir, &experiments) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write REPORT.md: {err}"),
        }
    }
    match write_results(&out_dir, &experiments) {
        Ok(paths) => {
            eprintln!(
                "wrote {} files to {} in {:.1}s",
                paths.len(),
                out_dir.display(),
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("failed to write results: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Drains the recorder and writes the merged trace, metric, and timeline
/// exports.
fn write_obs_artifacts(
    device: &DeviceSpec,
    which: &str,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    timeline_out: Option<PathBuf>,
) -> std::io::Result<()> {
    if let Some(path) = trace_out {
        // The ext_attrib run is the one experiment with a canonical
        // engine timeline to merge under the control tracks; it is
        // deterministic, so re-running it reproduces the exact result
        // the experiment attributed.
        let engine = if which == "ext_attrib" || which == "all" {
            match experiments::ext_attrib::traced_run(device) {
                Ok((_, _, result)) => Some(result),
                Err(err) => {
                    return Err(std::io::Error::other(format!(
                        "re-running ext_attrib for the trace failed: {err}"
                    )));
                }
            }
        } else {
            None
        };
        let records = mpshare_obs::recorder().drain();
        let trace = mpshare_obs::perfetto::merged_chrome_trace_with_timelines(
            engine.as_ref(),
            &records,
            mpshare_obs::timelines(),
        );
        std::fs::write(&path, trace)?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = timeline_out {
        let json = serde_json::to_string_pretty(&mpshare_obs::timelines().to_json())
            .expect("timeline export is valid JSON");
        std::fs::write(&path, json)?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = metrics_out {
        let metrics = mpshare_obs::metrics();
        let json =
            serde_json::to_string_pretty(&metrics.to_json()).expect("metrics export is valid JSON");
        std::fs::write(&path, json)?;
        let mut prom = path.as_os_str().to_owned();
        prom.push(".prom");
        std::fs::write(&prom, metrics.to_prometheus())?;
        eprintln!("wrote {} (+ .prom)", path.display());
    }
    Ok(())
}

/// Runs the timeline-instrumented experiments and writes the dashboard
/// (`report.txt` + `report.json`) under `out_dir`; `--timeline-out` also
/// dumps the full timeline export from the same recorded run.
fn run_report(out_dir: &std::path::Path, timeline_out: Option<PathBuf>) -> ExitCode {
    let device = DeviceSpec::a100x();
    let report = match mpshare_harness::report::generate(&device) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("report failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.text);
    if let Err(err) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let txt = out_dir.join("report.txt");
    let json = out_dir.join("report.json");
    let body = serde_json::to_string_pretty(&report.json).expect("report export is valid JSON");
    if let Err(err) = std::fs::write(&txt, &report.text).and_then(|()| std::fs::write(&json, body))
    {
        eprintln!("failed to write report artifacts: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} and {}", txt.display(), json.display());
    if let Some(path) = timeline_out {
        let export = serde_json::to_string_pretty(&mpshare_obs::timelines().to_json())
            .expect("timeline export is valid JSON");
        if let Err(err) = std::fs::write(&path, export) {
            eprintln!("failed to write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Checks the trace and metrics artifacts a recorded run produced: the
/// planner/scheduler/daemon tracks must be present in the trace, and the
/// cache/fault/goodput metric families in the export. With a timeline
/// export, additionally checks the timeline invariants (see
/// [`validate_timeline`]).
fn validate_obs(
    trace_path: &PathBuf,
    metrics_path: &PathBuf,
    timeline_path: Option<&PathBuf>,
) -> ExitCode {
    let mut failures: Vec<String> = Vec::new();

    match std::fs::read_to_string(trace_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
    {
        Ok(trace) => {
            let events = trace
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .cloned()
                .unwrap_or_default();
            if events.is_empty() {
                failures.push("trace has no traceEvents".to_string());
            }
            for (pid, track) in [(3u64, "planner"), (4, "scheduler"), (5, "daemon")] {
                let present = events
                    .iter()
                    .any(|e| e.get("pid").and_then(|p| p.as_u64()) == Some(pid));
                if !present {
                    failures.push(format!("trace is missing the {track} track (pid {pid})"));
                }
            }
        }
        Err(err) => failures.push(format!("cannot parse {}: {err}", trace_path.display())),
    }

    match std::fs::read_to_string(metrics_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
    {
        Ok(metrics) => {
            use mpshare_obs::names;
            let has = |section: &str, name: &str| {
                metrics.get(section).and_then(|s| s.get(name)).is_some()
            };
            for counter in [
                names::PROFILE_CACHE_HITS,
                names::PROFILE_CACHE_MISSES,
                names::ESTIMATE_MEMO_HITS,
                names::ENGINE_RUNS,
                names::ENGINE_RATE_SOLVES,
                names::FAULTS_INJECTED,
                names::CLIENTS_FAILED,
                names::SCHED_DISPATCHES,
                names::PLAN_CALLS,
                names::SERVER_SPAWNS,
            ] {
                if !has("counters", counter) {
                    failures.push(format!("metrics export is missing counter {counter}"));
                }
            }
            for gauge in [names::GOODPUT, names::WASTED_ENERGY_JOULES] {
                if !has("gauges", gauge) {
                    failures.push(format!("metrics export is missing gauge {gauge}"));
                }
            }
            for histogram in [names::GROUP_MAKESPAN_SECONDS, names::PHASE_SIM_SECONDS] {
                if !has("histograms", histogram) {
                    failures.push(format!("metrics export is missing histogram {histogram}"));
                }
            }
        }
        Err(err) => failures.push(format!("cannot parse {}: {err}", metrics_path.display())),
    }

    if let Some(path) = timeline_path {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        {
            Ok(timeline) => validate_timeline(&timeline, &mut failures),
            Err(err) => failures.push(format!("cannot parse {}: {err}", path.display())),
        }
    }

    if failures.is_empty() {
        eprintln!("observability artifacts OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("validate-obs: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Timeline-export invariants: required series/track families present,
/// per-series sample times monotone non-decreasing, every CDF monotone
/// (values strictly ascending, fractions non-decreasing, last fraction 1),
/// and quantile ordering p50 ≤ p90 ≤ p99 ≤ p999 on every track.
fn validate_timeline(timeline: &serde_json::Value, failures: &mut Vec<String>) {
    use mpshare_obs::series;
    let f64_at = |v: &serde_json::Value| v.as_f64();

    let series_map = timeline.get("series");
    for required in [series::DEVICE_SM_UTIL, series::DEVICE_BW_UTIL] {
        if series_map.and_then(|s| s.get(required)).is_none() {
            failures.push(format!("timeline export is missing series {required}"));
        }
    }
    for required in [series::SCHED_QUEUE_WAIT, series::SCHED_TURNAROUND] {
        if timeline
            .get("quantiles")
            .and_then(|q| q.get(required))
            .is_none()
        {
            failures.push(format!(
                "timeline export is missing quantile track {required}"
            ));
        }
    }

    let check_cdf = |name: &str, cdf: &serde_json::Value, failures: &mut Vec<String>| {
        let Some(pairs) = cdf.as_array() else {
            failures.push(format!("{name}: cdf is not an array"));
            return;
        };
        let knots: Vec<(f64, f64)> = pairs
            .iter()
            .filter_map(|p| {
                let pair = p.as_array()?;
                Some((f64_at(pair.first()?)?, f64_at(pair.get(1)?)?))
            })
            .collect();
        if knots.len() != pairs.len() {
            failures.push(format!("{name}: malformed cdf knots"));
            return;
        }
        for w in knots.windows(2) {
            if w[1].0 <= w[0].0 {
                failures.push(format!("{name}: cdf values not strictly ascending"));
                break;
            }
            if w[1].1 < w[0].1 {
                failures.push(format!("{name}: cdf fractions decrease"));
                break;
            }
        }
        if let Some(last) = knots.last() {
            if (last.1 - 1.0).abs() > 1e-9 {
                failures.push(format!("{name}: cdf does not end at 1 (got {})", last.1));
            }
        }
    };

    // Per-series: monotone sample times, monotone CDF.
    if let Some(entries) = series_map.and_then(|s| s.as_object()) {
        for (name, entry) in entries {
            if let Some(samples) = entry.get("samples").and_then(|s| s.as_array()) {
                let times: Vec<f64> = samples
                    .iter()
                    .filter_map(|s| s.as_array().and_then(|a| a.first()).and_then(f64_at))
                    .collect();
                if times.len() != samples.len() {
                    failures.push(format!("series {name}: malformed samples"));
                } else if times.windows(2).any(|w| w[1] < w[0]) {
                    failures.push(format!("series {name}: sample times not monotone"));
                }
            } else {
                failures.push(format!("series {name}: missing samples"));
            }
            if let Some(cdf) = entry.get("cdf") {
                check_cdf(&format!("series {name}"), cdf, failures);
            }
        }
    }

    // Per-track: quantile ordering and CDF monotonicity.
    if let Some(entries) = timeline.get("quantiles").and_then(|q| q.as_object()) {
        for (name, entry) in entries {
            let qs: Vec<Option<f64>> = ["p50", "p90", "p99", "p999"]
                .iter()
                .map(|k| entry.get(k).and_then(f64_at))
                .collect();
            let present: Vec<f64> = qs.iter().filter_map(|q| *q).collect();
            if present.windows(2).any(|w| w[1] < w[0]) {
                failures.push(format!(
                    "quantiles {name}: ordering violated (p50 <= p90 <= p99 <= p999)"
                ));
            }
            if let Some(cdf) = entry.get("cdf") {
                check_cdf(&format!("quantiles {name}"), cdf, failures);
            }
        }
    }
}
