//! `mpshare-sched` — schedule a workflow queue from a JSON spec.
//!
//! This is the downstream-facing tool: given a queue description, it runs
//! the offline profiling pass, plans an interference- and
//! granularity-aware collocation, executes the plan on the simulator, and
//! reports the gains over sequential scheduling.
//!
//! ```text
//! mpshare-sched queue.json [--priority throughput|energy|product]
//!                          [--strategy greedy|bestfit|auto|exhaustive]
//!                          [--gpus N] [--trace PREFIX] [--json] [--serial]
//! ```
//!
//! Planning and evaluation fan out across worker threads by default;
//! `--serial` (or `MPSHARE_SERIAL=1`) forces single-threaded execution
//! with bit-identical results.
//!
//! Queue spec format (see `configs/example_queue.json`):
//! ```json
//! {
//!   "workflows": [
//!     { "entries": [ { "kind": "Kripke", "size": 2.0, "iterations": 10 } ] },
//!     { "entries": [ { "kind": "AthenaPk", "size": 4.0, "iterations": 3 },
//!                    { "kind": "Lammps",   "size": 4.0, "iterations": 1 } ] }
//!   ],
//!   "dependencies": [[0, 1]]
//! }
//! ```

use mpshare_core::{
    advise, plan_with_dependencies, validate_dependencies, workflow_profile, Dependency, Executor,
    ExecutorConfig, MetricPriority, NodeExecutor, Planner, PlannerStrategy,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::{chrome_trace, ProfileStore};
use mpshare_types::IdAllocator;
use mpshare_workloads::WorkflowSpec;
use serde::Deserialize;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Deserialize)]
struct QueueSpec {
    workflows: Vec<WorkflowSpec>,
    /// Optional inter-workflow dependencies: `[before, after]` index pairs.
    #[serde(default)]
    dependencies: Vec<[usize; 2]>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mpshare-sched QUEUE.json [--priority throughput|energy|product] \
         [--strategy greedy|bestfit|auto|exhaustive] [--gpus N] [--trace PREFIX] \
         [--advise] [--json] [--serial]"
    );
    std::process::exit(2);
}

struct Args {
    queue_path: PathBuf,
    priority: MetricPriority,
    strategy: PlannerStrategy,
    gpus: usize,
    trace_prefix: Option<PathBuf>,
    json: bool,
    advise: bool,
    gantt: bool,
    store_path: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut queue_path = None;
    let mut priority = MetricPriority::balanced_product();
    let mut strategy = PlannerStrategy::Auto;
    let mut gpus = 1usize;
    let mut trace_prefix = None;
    let mut json = false;
    let mut want_advice = false;
    let mut want_gantt = false;
    let mut store_path = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--priority" => {
                priority = match it.next().as_deref() {
                    Some("throughput") => MetricPriority::Throughput,
                    Some("energy") => MetricPriority::Energy,
                    Some("product") => MetricPriority::balanced_product(),
                    _ => usage(),
                }
            }
            "--strategy" => {
                strategy = match it.next().as_deref() {
                    Some("greedy") => PlannerStrategy::Greedy,
                    Some("bestfit") => PlannerStrategy::BestFit,
                    Some("auto") => PlannerStrategy::Auto,
                    Some("exhaustive") => PlannerStrategy::Exhaustive,
                    _ => usage(),
                }
            }
            "--gpus" => {
                gpus = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trace" => trace_prefix = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--json" => json = true,
            "--serial" => mpshare_par::set_serial(true),
            "--advise" => want_advice = true,
            "--gantt" => want_gantt = true,
            "--store" => store_path = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "-h" | "--help" => usage(),
            other if queue_path.is_none() => queue_path = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    Args {
        queue_path: queue_path.unwrap_or_else(|| usage()),
        priority,
        strategy,
        gpus,
        trace_prefix,
        json,
        advise: want_advice,
        gantt: want_gantt,
        store_path,
    }
}

fn run(args: Args) -> Result<(), String> {
    let body = std::fs::read_to_string(&args.queue_path)
        .map_err(|e| format!("cannot read {}: {e}", args.queue_path.display()))?;
    let spec: QueueSpec =
        serde_json::from_str(&body).map_err(|e| format!("invalid queue spec: {e}"))?;
    if spec.workflows.is_empty() {
        return Err("queue is empty".into());
    }
    for (i, w) in spec.workflows.iter().enumerate() {
        w.validate_fields(&format!("workflows[{i}]"))
            .map_err(|e| e.to_string())?;
    }
    for (i, &[before, after]) in spec.dependencies.iter().enumerate() {
        let n = spec.workflows.len();
        if before >= n || after >= n {
            return Err(format!(
                "dependencies[{i}]: workflow index out of range (queue has {n} workflows)"
            ));
        }
    }

    let device = DeviceSpec::a100x();

    // Offline profiling, with an optional persistent cache: rerunning the
    // scheduler against the same cluster skips the profiling runs.
    let mut store = match &args.store_path {
        Some(path) if path.exists() => {
            let s = ProfileStore::load(path).map_err(|e| e.to_string())?;
            eprintln!("loaded {} cached profiles from {}", s.len(), path.display());
            s
        }
        _ => ProfileStore::new(),
    };
    let runs = store
        .profile_workflows(&device, &spec.workflows)
        .map_err(|e| e.to_string())?;
    eprintln!("profiled {runs} distinct (benchmark, size) pairs");
    if let Some(path) = &args.store_path {
        store.save(path).map_err(|e| e.to_string())?;
        eprintln!("saved profile cache to {}", path.display());
    }
    let profiles: Vec<_> = spec
        .workflows
        .iter()
        .map(|w| workflow_profile(&store, w).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;

    if args.advise {
        eprintln!("advice (paper §VI recommendations):");
        for item in advise(&device, &profiles) {
            eprintln!("  - {item}");
        }
    }

    // Plan (respecting any declared inter-workflow dependencies).
    let planner = Planner::new(device.clone(), args.priority);
    let deps: Vec<Dependency> = spec
        .dependencies
        .iter()
        .map(|&[b, a]| Dependency::new(b, a))
        .collect();
    let plan = if deps.is_empty() {
        planner
            .plan(&profiles, args.strategy)
            .map_err(|e| e.to_string())?
    } else {
        let plan = plan_with_dependencies(&planner, &profiles, &deps, args.strategy)
            .map_err(|e| e.to_string())?;
        validate_dependencies(&plan, &deps).map_err(|e| e.to_string())?;
        plan
    };

    // Execute + evaluate (single GPU or node).
    let config = ExecutorConfig::new(device.clone());
    let (metrics, group_summary) = if args.gpus <= 1 {
        let executor = Executor::new(config.clone());
        let report = executor
            .evaluate_plan(&spec.workflows, &plan)
            .map_err(|e| e.to_string())?;
        (report.metrics, describe_groups(&plan, &profiles))
    } else {
        let node = mpshare_core::distribute_plan(&device, &plan, &profiles, args.gpus, 0.0)
            .map_err(|e| e.to_string())?;
        let exec = NodeExecutor::new(config.clone(), args.gpus).map_err(|e| e.to_string())?;
        let metrics = exec
            .evaluate(&spec.workflows, &profiles, &node)
            .map_err(|e| e.to_string())?;
        let mut desc = String::new();
        for (g, gpu_plan) in node.per_gpu.iter().enumerate() {
            desc.push_str(&format!("gpu{g}:\n"));
            desc.push_str(&describe_groups(gpu_plan, &profiles));
        }
        (metrics, desc)
    };

    // Optional Gantt rendering of each group's actual overlap.
    if args.gantt {
        let executor = Executor::new(config.clone());
        let mut ids = mpshare_types::IdAllocator::new();
        for (i, group) in plan.groups.iter().enumerate() {
            let result = executor
                .run_group_raw(&spec.workflows, group, &mut ids)
                .map_err(|e| e.to_string())?;
            println!("group {} timeline:", i + 1);
            print!("{}", mpshare_harness::render_gantt(&result, 100));
        }
    }

    // Optional trace export (one file per group, single-GPU only).
    if let Some(prefix) = &args.trace_prefix {
        let executor = Executor::new(config);
        let mut ids = IdAllocator::new();
        for (i, group) in plan.groups.iter().enumerate() {
            let result = executor
                .run_group_raw(&spec.workflows, group, &mut ids)
                .map_err(|e| e.to_string())?;
            let path = prefix.with_extension(format!("group{i}.trace.json"));
            std::fs::write(&path, chrome_trace(&result)).map_err(|e| e.to_string())?;
            eprintln!("wrote {}", path.display());
        }
    }

    if args.json {
        let out = serde_json::json!({
            "plan": plan,
            "metrics": metrics,
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    } else {
        println!("plan:\n{group_summary}");
        println!(
            "throughput gain: {:.3}x\nenergy-efficiency gain: {:.3}x\nT*E product: {:.3}",
            metrics.throughput_gain,
            metrics.energy_efficiency_gain,
            metrics.throughput_gain * metrics.energy_efficiency_gain
        );
    }
    Ok(())
}

fn describe_groups(
    plan: &mpshare_core::SchedulePlan,
    profiles: &[mpshare_core::WorkflowProfile],
) -> String {
    let mut out = String::new();
    for (i, g) in plan.groups.iter().enumerate() {
        let members: Vec<String> = g
            .workflow_indices
            .iter()
            .zip(&g.partitions)
            .map(|(&w, p)| format!("{} @{:.0}%", profiles[w].label, p.value() * 100.0))
            .collect();
        out.push_str(&format!("  group {}: {}\n", i + 1, members.join("  |  ")));
    }
    out
}

fn main() -> ExitCode {
    match run(parse_args()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
