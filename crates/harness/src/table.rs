//! Text-table rendering and the experiment envelope.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-aligned text table with CSV export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics when the cell count does not match the
    /// header count — a malformed experiment is a bug, not a runtime
    /// condition.
    #[track_caller]
    pub fn push_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = w - cell.chars().count();
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// CSV export (simple quoting: cells containing commas or quotes are
    /// quoted with doubled inner quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// One regenerated paper artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Experiment {
    /// Stable id, e.g. `"table1"` or `"fig4"`; used for output file names.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    pub table: TextTable,
    /// Caveats / observations recorded alongside the table.
    pub notes: Vec<String>,
}

impl Experiment {
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: TextTable) -> Self {
        Experiment {
            id: id.into(),
            title: title.into(),
            table,
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Full text rendering: title, table, notes.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n{}", self.id, self.title, self.table.render());
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("note: {note}\n"));
            }
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (negative zero is
/// normalized to zero).
pub fn fmt(value: f64, decimals: usize) -> String {
    let value = if value == 0.0 { 0.0 } else { value };
    format!("{value:.decimals$}")
}

/// Formats a gain ratio as a percentage change, e.g. `1.47 -> "+47%"`.
pub fn fmt_gain(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(["name", "value"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b", "22.5"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22.5");
    }

    #[test]
    #[should_panic(expected = "2 columns")]
    fn mismatched_row_panics() {
        let mut t = sample();
        t.push_row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn experiment_render_includes_notes() {
        let e = Experiment::new("t", "Title", sample()).with_note("a caveat");
        let text = e.render();
        assert!(text.contains("# t — Title"));
        assert!(text.contains("note: a caveat"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_gain(1.47), "+47.0%");
        assert_eq!(fmt_gain(0.98), "-2.0%");
    }

    #[test]
    fn serde_round_trip() {
        let e = Experiment::new("x", "y", sample());
        let json = serde_json::to_string(&e).unwrap();
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
