//! ASCII Gantt rendering of simulator runs.
//!
//! One row per client; each workflow task paints a run of characters
//! proportional to its duration (letters cycle per task so adjacent tasks
//! are distinguishable, `·` marks idle/host time). Gives a terminal-sized
//! picture of how a collocation group actually overlapped.

use mpshare_gpusim::RunResult;
use std::fmt::Write as _;

/// Renders a Gantt chart of `result` scaled to `width` columns.
pub fn render_gantt(result: &RunResult, width: usize) -> String {
    let width = width.clamp(20, 400);
    let makespan = result.makespan.value();
    if makespan <= 0.0 || result.clients.is_empty() {
        return String::from("(empty run)\n");
    }
    let col = |t: f64| ((t / makespan) * width as f64).round() as usize;

    let label_width = result
        .clients
        .iter()
        .map(|c| c.label.chars().count().min(28))
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    for client in &result.clients {
        let mut row = vec!['·'; width];
        let mut cursor = client.started;
        for (index, completion) in client.completions.iter().enumerate() {
            let start = col(cursor.value());
            let end = col(completion.at.value()).max(start + 1).min(width);
            let glyph = (b'A' + (index % 26) as u8) as char;
            for cell in row.iter_mut().take(end).skip(start) {
                *cell = glyph;
            }
            cursor = completion.at;
        }
        let mut label: String = client.label.chars().take(28).collect();
        if client.label.chars().count() > 28 {
            label.push('…');
        }
        let _ = writeln!(
            out,
            "{label:<label_width$} |{}|",
            row.into_iter().collect::<String>()
        );
    }
    // Time axis.
    let axis = format!("0s{:>width$}", format!("{makespan:.1}s"), width = width - 2);
    let _ = writeln!(out, "{:<label_width$}  {axis}", "");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_mps::{GpuRunner, GpuSharing};
    use mpshare_types::IdAllocator;
    use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

    fn sample_run() -> RunResult {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let programs = vec![
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 3)
                .to_client_program(&device, &mut ids)
                .unwrap(),
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 2)
                .to_client_program(&device, &mut ids)
                .unwrap(),
        ];
        GpuRunner::new(device)
            .run(&GpuSharing::mps_default(2), programs)
            .unwrap()
    }

    #[test]
    fn gantt_has_one_row_per_client_plus_axis() {
        let result = sample_run();
        let chart = render_gantt(&result, 60);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('|'));
        assert!(lines[2].contains("0s"));
    }

    #[test]
    fn adjacent_tasks_use_distinct_glyphs() {
        let result = sample_run();
        let chart = render_gantt(&result, 80);
        let first_row = chart.lines().next().unwrap();
        // Three Kripke tasks -> glyphs A, B, C all present.
        assert!(first_row.contains('A'));
        assert!(first_row.contains('B'));
        assert!(first_row.contains('C'));
    }

    #[test]
    fn width_is_clamped() {
        let result = sample_run();
        let narrow = render_gantt(&result, 1);
        // Clamp floor is 20 columns between the pipes.
        let bar = narrow.lines().next().unwrap();
        let inner = bar.split('|').nth(1).unwrap();
        assert_eq!(inner.chars().count(), 20);
    }

    #[test]
    fn empty_run_renders_placeholder() {
        let result = RunResult {
            telemetry: mpshare_gpusim::Telemetry::new(),
            clients: vec![],
            makespan: mpshare_types::Seconds::ZERO,
            total_energy: mpshare_types::Energy::ZERO,
            tasks_completed: 0,
            tasks_failed: 0,
            events: mpshare_gpusim::EventLog::default(),
            completion_order: vec![],
            failures: vec![],
            wasted_progress: mpshare_types::Seconds::ZERO,
            wasted_energy: mpshare_types::Energy::ZERO,
        };
        assert_eq!(render_gantt(&result, 60), "(empty run)\n");
    }
}
