//! Campaign runner: fan a block of seeds across worker threads, run the
//! oracle on each generated scenario, shrink any failures, and render a
//! canonical text report.
//!
//! Determinism: scenario generation is a pure function of the seed, the
//! oracle digests canonical serializations, and `mpshare_par::par_map`
//! preserves input order — so the rendered report is byte-identical
//! whether the campaign runs serial or parallel. `make fuzz-smoke` runs
//! it both ways and `cmp`s the outputs.

use crate::oracle::{check_scenario, fnv1a64, Violation};
use crate::scenario::Scenario;
use crate::shrink::shrink;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First seed; the campaign covers `base_seed..base_seed + count`.
    pub base_seed: u64,
    pub count: usize,
    /// Shrink failing scenarios to minimal repros (each probe is a full
    /// run; disable for quick triage).
    pub shrink: bool,
}

/// Per-seed result.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    pub seed: u64,
    pub name: String,
    /// Oracle digest (empty when the scenario errored before running).
    pub digest: String,
    pub violations: Vec<Violation>,
    /// Minimal failing scenario, when shrinking was on and reproduced.
    pub repro: Option<Scenario>,
}

impl SeedOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub config: CampaignConfig,
    /// One outcome per seed, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl Campaign {
    pub fn failing(&self) -> impl Iterator<Item = &SeedOutcome> {
        self.outcomes.iter().filter(|o| !o.is_clean())
    }
}

/// Predicate used both for detecting and for preserving a failure: the
/// oracle errors out, or reports ≥ 1 violation.
fn fails(scenario: &Scenario) -> bool {
    match check_scenario(scenario) {
        Err(_) => true,
        Ok(report) => !report.violations.is_empty(),
    }
}

fn run_seed(seed: u64, do_shrink: bool) -> SeedOutcome {
    let scenario = Scenario::generate(seed);
    let (digest, violations) = match check_scenario(&scenario) {
        Ok(report) => (report.digest, report.violations),
        Err(e) => (
            String::new(),
            vec![Violation {
                check: "error".into(),
                detail: e.to_string(),
            }],
        ),
    };
    let repro = if !violations.is_empty() && do_shrink {
        Some(shrink(&scenario, fails))
    } else {
        None
    };
    SeedOutcome {
        seed,
        name: scenario.name,
        digest,
        violations,
        repro,
    }
}

/// Runs the campaign, fanning seeds across workers (`par_map` preserves
/// order and honours `MPSHARE_SERIAL`).
pub fn run_campaign(config: &CampaignConfig) -> Campaign {
    let seeds: Vec<u64> = (0..config.count as u64)
        .map(|i| config.base_seed + i)
        .collect();
    let outcomes = mpshare_par::par_map(&seeds, |&seed| run_seed(seed, config.shrink));
    Campaign {
        config: config.clone(),
        outcomes,
    }
}

/// Renders the canonical text report: one line per seed, failures with
/// their shrunk repros inline, and a campaign digest folding every
/// per-seed digest (the value `expected_digest` pins for zoo scenarios
/// is the per-seed one).
pub fn render_report(campaign: &Campaign) -> String {
    let mut out = String::new();
    let base = campaign.config.base_seed;
    let count = campaign.config.count;
    out.push_str(&format!(
        "mpshare-fuzz campaign: seeds {base}..{} ({count} scenarios)\n",
        base + count as u64
    ));
    let mut clean = 0usize;
    for o in &campaign.outcomes {
        if o.is_clean() {
            clean += 1;
            out.push_str(&format!(
                "{:>8}  {:<22} ok    {}\n",
                o.seed, o.name, o.digest
            ));
        } else {
            out.push_str(&format!("{:>8}  {:<22} FAIL\n", o.seed, o.name));
            for v in &o.violations {
                out.push_str(&format!("          {}: {}\n", v.check, v.detail));
            }
            if let Some(repro) = &o.repro {
                let compact = serde_json::to_string(repro).expect("scenario serializes");
                out.push_str(&format!("          repro: {compact}\n"));
            }
        }
    }
    let failing = campaign.outcomes.len() - clean;
    out.push_str(&format!(
        "scenarios: {}, clean: {clean}, failing: {failing}\n",
        campaign.outcomes.len()
    ));
    let mut folded = String::new();
    for o in &campaign.outcomes {
        folded.push_str(&o.digest);
        folded.push('\n');
    }
    out.push_str(&format!(
        "campaign digest: {:016x}\n",
        fnv1a64(folded.as_bytes())
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serial and parallel campaigns must render byte-identical
    /// reports — the core determinism contract of the whole harness.
    #[test]
    fn serial_and_parallel_campaigns_agree() {
        let config = CampaignConfig {
            base_seed: 100,
            count: 12,
            shrink: false,
        };
        mpshare_par::set_serial(true);
        let serial = render_report(&run_campaign(&config));
        mpshare_par::set_serial(false);
        let parallel = render_report(&run_campaign(&config));
        mpshare_par::set_serial(false);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn campaign_over_generated_seeds_is_clean() {
        let config = CampaignConfig {
            base_seed: 40,
            count: 10,
            shrink: false,
        };
        let campaign = run_campaign(&config);
        for o in &campaign.outcomes {
            assert!(o.is_clean(), "seed {}: {:?}", o.seed, o.violations);
        }
    }
}
