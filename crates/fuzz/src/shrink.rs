//! Delta-debugging shrinker: given a scenario that fails the oracle,
//! greedily minimize it while preserving the failure.
//!
//! Classic ddmin structure, specialized to the scenario shape: each
//! round proposes a list of single-step reductions (drop a client, drop
//! a fault, collapse a program to one task / one kernel, halve a
//! duration, zero an arrival, strip the power cap…), accepts the first
//! proposal that still fails, and repeats until no proposal fails or the
//! probe budget runs out. The result is a local minimum: removing any
//! single remaining element makes the failure disappear.
//!
//! The predicate is caller-supplied so the shrinker can preserve *the
//! same* failure (e.g. "oracle reports a violation of check X"), not
//! just any failure.

use crate::scenario::{EngineScenario, MechanismSpec, OnlineScenario, RunSpec, Scenario};

/// Hard cap on predicate evaluations per shrink — each probe is a full
/// simulator run, so the budget bounds wall-clock.
const MAX_PROBES: usize = 400;

/// Shrinks `scenario` while `still_failing` holds. Returns the smallest
/// scenario found (possibly the input itself).
pub fn shrink(scenario: &Scenario, mut still_failing: impl FnMut(&Scenario) -> bool) -> Scenario {
    let mut current = scenario.clone();
    let mut probes = 0usize;
    let mut any_reduction = false;
    loop {
        let mut reduced = false;
        for cand in candidates(&current) {
            if probes >= MAX_PROBES {
                return current;
            }
            probes += 1;
            if still_failing(&cand) {
                current = cand;
                reduced = true;
                any_reduction = true;
                break;
            }
        }
        if !reduced {
            if any_reduction && !current.name.ends_with("/shrunk") {
                current.name.push_str("/shrunk");
            }
            return current;
        }
    }
}

/// Single-step reductions of `sc`, most aggressive first (dropping a
/// whole client shrinks faster than halving one duration).
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    match &sc.run {
        RunSpec::Engine(e) => {
            for cand in engine_candidates(e) {
                let mut s = sc.clone();
                s.run = RunSpec::Engine(cand);
                out.push(s);
            }
        }
        RunSpec::Online(o) => {
            for cand in online_candidates(o) {
                let mut s = sc.clone();
                s.run = RunSpec::Online(cand);
                out.push(s);
            }
        }
    }
    out
}

/// Removes client `i`, remapping the mechanism and fault indices.
fn drop_client(e: &EngineScenario, i: usize) -> EngineScenario {
    let mut r = e.clone();
    r.clients.remove(i);
    match &mut r.mechanism {
        MechanismSpec::Mps { partitions } => {
            partitions.remove(i);
        }
        MechanismSpec::Mig { assignment, .. } => {
            assignment.remove(i);
        }
        _ => {}
    }
    r.faults.retain(|f| f.client != i);
    for f in &mut r.faults {
        if f.client > i {
            f.client -= 1;
        }
    }
    r
}

fn engine_candidates(e: &EngineScenario) -> Vec<EngineScenario> {
    let mut out = Vec::new();
    if e.clients.len() > 1 {
        for i in 0..e.clients.len() {
            out.push(drop_client(e, i));
        }
    }
    for i in 0..e.faults.len() {
        let mut r = e.clone();
        r.faults.remove(i);
        out.push(r);
    }
    if e.power_cap_watts.is_some() {
        let mut r = e.clone();
        r.power_cap_watts = None;
        out.push(r);
    }
    if e.sharing_overhead != 0.0 {
        let mut r = e.clone();
        r.sharing_overhead = 0.0;
        out.push(r);
    }
    for i in 0..e.clients.len() {
        let c = &e.clients[i];
        if c.tasks > 1 {
            let mut r = e.clone();
            r.clients[i].tasks = 1;
            out.push(r);
        }
        if c.workload.kernels > 1 {
            let mut r = e.clone();
            r.clients[i].workload.kernels = 1;
            out.push(r);
        }
        if c.arrival != 0.0 {
            let mut r = e.clone();
            r.clients[i].arrival = 0.0;
            out.push(r);
        }
        if c.workload.duration > 0.2 {
            let mut r = e.clone();
            r.clients[i].workload.duration = (c.workload.duration / 2.0).max(0.1);
            out.push(r);
        }
        if c.workload.memory_mib > 128 {
            let mut r = e.clone();
            r.clients[i].workload.memory_mib = 128;
            out.push(r);
        }
        if c.workload.cache_sensitivity != 0.0 || c.workload.client_sensitivity != 0.0 {
            let mut r = e.clone();
            r.clients[i].workload.cache_sensitivity = 0.0;
            r.clients[i].workload.client_sensitivity = 0.0;
            out.push(r);
        }
    }
    out
}

fn online_candidates(o: &OnlineScenario) -> Vec<OnlineScenario> {
    let mut out = Vec::new();
    if o.workflows.len() > 1 {
        for i in 0..o.workflows.len() {
            let mut r = o.clone();
            r.workflows.remove(i);
            out.push(r);
        }
    }
    if o.fault.is_some() {
        let mut r = o.clone();
        r.fault = None;
        out.push(r);
    }
    for i in 0..o.workflows.len() {
        let w = &o.workflows[i];
        if w.iterations > 1 {
            let mut r = o.clone();
            r.workflows[i].iterations = 1;
            out.push(r);
        }
        if w.arrival != 0.0 {
            let mut r = o.clone();
            r.workflows[i].arrival = 0.0;
            out.push(r);
        }
        if w.size > 1.0 {
            let mut r = o.clone();
            r.workflows[i].size = 1.0;
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ClientSpec, FaultPoint, RunSpec};
    use mpshare_workloads::SyntheticSpec;

    fn big_scenario() -> Scenario {
        Scenario {
            seed: 1,
            name: "test/big".into(),
            expected_digest: None,
            run: RunSpec::Engine(EngineScenario {
                clients: (0..4)
                    .map(|i| ClientSpec {
                        id: format!("c{i}"),
                        arrival: 0.5 * i as f64,
                        tasks: 3,
                        workload: SyntheticSpec::light(),
                    })
                    .collect(),
                mechanism: MechanismSpec::Mps {
                    partitions: vec![0.25; 4],
                },
                sharing_overhead: 0.01,
                power_cap_watts: Some(200.0),
                faults: vec![
                    FaultPoint { at: 1.0, client: 2 },
                    FaultPoint { at: 2.0, client: 0 },
                ],
            }),
        }
    }

    /// Predicate: "client c2 exists with ≥ 1 task" — the shrinker must
    /// strip everything not needed to keep it true, including the other
    /// clients, both faults, the power cap, and the overhead.
    #[test]
    fn shrinks_to_the_minimal_failing_core() {
        let failing = |s: &Scenario| match &s.run {
            RunSpec::Engine(e) => e.clients.iter().any(|c| c.id == "c2"),
            _ => false,
        };
        let min = shrink(&big_scenario(), failing);
        let RunSpec::Engine(e) = &min.run else {
            panic!("kind changed")
        };
        assert_eq!(e.clients.len(), 1, "{min:?}");
        assert_eq!(e.clients[0].id, "c2");
        assert_eq!(e.clients[0].tasks, 1);
        assert_eq!(e.clients[0].workload.kernels, 1);
        assert_eq!(e.clients[0].arrival, 0.0);
        assert!(e.faults.is_empty());
        assert_eq!(e.power_cap_watts, None);
        assert_eq!(e.sharing_overhead, 0.0);
        assert_eq!(
            e.mechanism,
            MechanismSpec::Mps {
                partitions: vec![0.25]
            }
        );
        assert!(min.name.ends_with("/shrunk"));
        // Shrunk scenarios must still be valid, runnable configs.
        min.validate().unwrap();
    }

    /// Shrinking a scenario that never fails returns it unchanged.
    #[test]
    fn no_failure_means_no_change() {
        let sc = big_scenario();
        let out = shrink(&sc, |_| false);
        assert_eq!(out.run, sc.run);
    }
}
