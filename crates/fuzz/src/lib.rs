//! `mpshare-fuzz` — deterministic scenario fuzzing for the mpshare
//! stack.
//!
//! The simulator ([`mpshare_gpusim`]), mechanism layer ([`mpshare_mps`])
//! and scheduler ([`mpshare_core`]) promise a set of cross-cutting
//! invariants: task and energy ledgers close, attribution decompositions
//! sum to the measured slowdown, aborted clients go silent, and every
//! run is bit-deterministic — serial or parallel, incremental or full
//! contention re-solve. This crate stress-tests those promises:
//!
//! * [`scenario`] — a serializable [`Scenario`] model and a pure seeded
//!   generator ([`Scenario::generate`]) covering workload mixes, arrival
//!   patterns, fault plans, power caps, and all five sharing mechanisms.
//! * [`oracle`] — [`check_scenario`] runs a scenario through the real
//!   execution paths and checks every invariant, yielding violations
//!   plus a canonical output digest.
//! * [`shrink`] — a delta-debugging [`shrink::shrink`] that minimizes a
//!   failing scenario into a self-contained repro config.
//! * [`report`] — seed-block campaigns ([`report::run_campaign`]) whose
//!   rendered report is byte-identical serial vs parallel.
//! * [`zoo`] — replay of pinned scenarios under `configs/zoo/`, failing
//!   on any violation or digest drift (`make fuzz-smoke`).
//!
//! ```
//! use mpshare_fuzz::{check_scenario, Scenario};
//!
//! let scenario = Scenario::generate(42);
//! let report = check_scenario(&scenario).unwrap();
//! assert!(report.violations.is_empty());
//! // Same seed, same scenario, same digest — forever.
//! assert_eq!(report.digest, check_scenario(&Scenario::generate(42)).unwrap().digest);
//! ```

pub mod oracle;
pub mod report;
pub mod scenario;
pub mod shrink;
pub mod zoo;

pub use oracle::{check_scenario, fnv1a64, OracleReport, Violation};
pub use report::{render_report, run_campaign, Campaign, CampaignConfig, SeedOutcome};
pub use scenario::{
    ClientSpec, EngineScenario, FaultPoint, MechanismSpec, OnlineEntry, OnlineFaultSpec,
    OnlineScenario, PriorityChoice, RunSpec, Scenario, StrategyChoice,
};
pub use shrink::shrink as shrink_scenario;
pub use zoo::{replay_file, replay_zoo, ReplayOutcome};
