//! Scenario model: a self-contained, serializable description of one
//! simulator or scheduler run, plus the seeded generator that produces
//! reproducible scenarios across the whole configuration space.
//!
//! Determinism contract: `Scenario::generate(seed)` draws every value
//! through [`mpshare_gpusim::unit_hash`] keyed by `(seed, lane tags)` —
//! a pure function with no process state — so the same seed produces the
//! same scenario on every machine, every run, serial or parallel. The
//! JSON form is canonical: field order is struct order, and replaying a
//! serialized scenario is bit-identical to replaying the generated one.

use mpshare_gpusim::unit_hash;
use mpshare_types::{Error, Result};
use mpshare_workloads::{BenchmarkKind, SyntheticSpec};
use serde::{Deserialize, Serialize};

/// One fuzz scenario: a seed (provenance), a human-readable name, an
/// optional pinned output digest (for zoo regression replay), and the
/// run description itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed this scenario was generated from (0 for hand-written ones).
    pub seed: u64,
    /// Short descriptive name, e.g. `engine/mps-3c-2f`.
    pub name: String,
    /// Pinned FNV-1a digest of the oracle's canonical output. When set,
    /// replay fails if the produced digest differs (output drift).
    #[serde(default)]
    pub expected_digest: Option<String>,
    /// The run description.
    pub run: RunSpec,
}

/// What kind of run the scenario describes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunSpec {
    /// A direct `GpuRunner` run: explicit clients, mechanism, faults.
    Engine(EngineScenario),
    /// An `OnlineScheduler` run: arriving workflows through the planner.
    Online(OnlineScenario),
}

/// A direct simulator run under one sharing mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineScenario {
    pub clients: Vec<ClientSpec>,
    pub mechanism: MechanismSpec,
    /// Per-co-runner MPS overhead (shared scheduling hardware pressure).
    #[serde(default)]
    pub sharing_overhead: f64,
    /// Override of the device software power cap, watts.
    #[serde(default)]
    pub power_cap_watts: Option<f64>,
    /// Fatal client faults to inject, by client index.
    #[serde(default)]
    pub faults: Vec<FaultPoint>,
}

/// One client process: a synthetic workload repeated `tasks` times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Unique client id; becomes the program label.
    pub id: String,
    /// Arrival time, seconds.
    #[serde(default)]
    pub arrival: f64,
    /// Number of identical tasks in the program.
    pub tasks: usize,
    pub workload: SyntheticSpec,
}

/// A fatal client fault at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPoint {
    pub at: f64,
    pub client: usize,
}

/// Sharing-mechanism choice, mirroring `mpshare_mps::GpuSharing` but in
/// plain-JSON-friendly units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MechanismSpec {
    Sequential,
    TimeSliced {
        quantum_us: f64,
        switch_us: f64,
    },
    Mps {
        /// Per-client SM partitions in `(0, 1]`, one per client.
        partitions: Vec<f64>,
    },
    Streams,
    Mig {
        /// MIG instance sizes in slices; each ∈ {1,2,3,4,7}, sum ≤ 7.
        slices: Vec<u32>,
        /// `assignment[i]` = instance index of client `i`.
        assignment: Vec<usize>,
    },
}

/// An online-scheduler run: a queue of arriving benchmark workflows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineScenario {
    pub workflows: Vec<OnlineEntry>,
    pub priority: PriorityChoice,
    pub strategy: StrategyChoice,
    /// Seeded dispatch-fault model (`None` = fault-free).
    #[serde(default)]
    pub fault: Option<OnlineFaultSpec>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineEntry {
    pub kind: BenchmarkKind,
    /// Problem-size scale factor (≥ 1).
    pub size: f64,
    pub iterations: usize,
    /// Arrival time, seconds.
    #[serde(default)]
    pub arrival: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PriorityChoice {
    Throughput,
    Energy,
    Product,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyChoice {
    Greedy,
    BestFit,
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineFaultSpec {
    pub seed: u64,
    pub rate: f64,
}

fn bad(msg: String) -> Error {
    Error::InvalidConfig(msg)
}

fn check_unit(ctx: &str, field: &str, v: f64, lo: f64, hi: f64) -> Result<()> {
    if !v.is_finite() || v < lo || v > hi {
        return Err(bad(format!(
            "{ctx}: {field} must be finite in [{lo}, {hi}], got {v}"
        )));
    }
    Ok(())
}

impl Scenario {
    /// Validates every field, naming the offending one in the error.
    /// This is the parse-time gate: the harness and the zoo replayer
    /// reject a scenario before any simulation runs.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(bad("scenario: name must be non-empty".into()));
        }
        match &self.run {
            RunSpec::Engine(e) => e.validate(),
            RunSpec::Online(o) => o.validate(),
        }
    }

    /// Canonical JSON form (used for repro files and shrinker output).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    pub fn from_json(body: &str) -> Result<Self> {
        serde_json::from_str(body).map_err(|e| bad(format!("scenario parse error: {e}")))
    }
}

impl EngineScenario {
    pub fn validate(&self) -> Result<()> {
        let n = self.clients.len();
        if n == 0 {
            return Err(bad("engine: clients must be non-empty".into()));
        }
        if n > 48 {
            return Err(bad(format!(
                "engine: clients.len() must be ≤ 48 (MPS client limit), got {n}"
            )));
        }
        for (i, c) in self.clients.iter().enumerate() {
            let ctx = format!("engine.clients[{i}]");
            if c.id.is_empty() {
                return Err(bad(format!("{ctx}: id must be non-empty")));
            }
            if let Some(j) = self.clients[..i].iter().position(|p| p.id == c.id) {
                return Err(bad(format!(
                    "{ctx}: duplicate client id {:?} (also clients[{j}])",
                    c.id
                )));
            }
            if !c.arrival.is_finite() || c.arrival < 0.0 {
                return Err(bad(format!(
                    "{ctx}: arrival must be finite and ≥ 0, got {}",
                    c.arrival
                )));
            }
            if c.tasks == 0 {
                return Err(bad(format!("{ctx}: tasks must be ≥ 1, got 0")));
            }
            c.workload.validate_fields(&format!("{ctx}.workload"))?;
        }
        check_unit(
            "engine",
            "sharing_overhead",
            self.sharing_overhead,
            0.0,
            0.5,
        )?;
        if let Some(w) = self.power_cap_watts {
            if !w.is_finite() || w <= 0.0 {
                return Err(bad(format!(
                    "engine: power_cap_watts must be finite and > 0, got {w}"
                )));
            }
        }
        for (i, f) in self.faults.iter().enumerate() {
            if !f.at.is_finite() || f.at < 0.0 {
                return Err(bad(format!(
                    "engine.faults[{i}]: at must be finite and ≥ 0, got {}",
                    f.at
                )));
            }
            if f.client >= n {
                return Err(bad(format!(
                    "engine.faults[{i}]: client {} out of range (have {n} clients)",
                    f.client
                )));
            }
        }
        match &self.mechanism {
            MechanismSpec::Sequential | MechanismSpec::Streams => {}
            MechanismSpec::TimeSliced {
                quantum_us,
                switch_us,
            } => {
                if !quantum_us.is_finite() || *quantum_us <= 0.0 {
                    return Err(bad(format!(
                        "engine.mechanism: quantum_us must be finite and > 0, got {quantum_us}"
                    )));
                }
                if !switch_us.is_finite() || *switch_us < 0.0 {
                    return Err(bad(format!(
                        "engine.mechanism: switch_us must be finite and ≥ 0, got {switch_us}"
                    )));
                }
            }
            MechanismSpec::Mps { partitions } => {
                if partitions.len() != n {
                    return Err(bad(format!(
                        "engine.mechanism: partitions.len() = {} must equal clients.len() = {n}",
                        partitions.len()
                    )));
                }
                for (i, p) in partitions.iter().enumerate() {
                    if !p.is_finite() || *p <= 0.0 || *p > 1.0 {
                        return Err(bad(format!(
                            "engine.mechanism: partitions[{i}] must be finite in (0, 1], got {p}"
                        )));
                    }
                }
            }
            MechanismSpec::Mig { slices, assignment } => {
                if slices.is_empty() {
                    return Err(bad("engine.mechanism: slices must be non-empty".into()));
                }
                let mut sum = 0u32;
                for (i, s) in slices.iter().enumerate() {
                    if ![1, 2, 3, 4, 7].contains(s) {
                        return Err(bad(format!(
                            "engine.mechanism: slices[{i}] must be one of 1/2/3/4/7, got {s}"
                        )));
                    }
                    sum += s;
                }
                if sum > 7 {
                    return Err(bad(format!(
                        "engine.mechanism: slices sum to {sum}, exceeding the 7 available"
                    )));
                }
                if assignment.len() != n {
                    return Err(bad(format!(
                        "engine.mechanism: assignment.len() = {} must equal clients.len() = {n}",
                        assignment.len()
                    )));
                }
                for (i, a) in assignment.iter().enumerate() {
                    if *a >= slices.len() {
                        return Err(bad(format!(
                            "engine.mechanism: assignment[{i}] = {a} out of range \
                             (have {} instances)",
                            slices.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total tasks across all clients.
    pub fn total_tasks(&self) -> usize {
        self.clients.iter().map(|c| c.tasks).sum()
    }
}

impl OnlineScenario {
    pub fn validate(&self) -> Result<()> {
        if self.workflows.is_empty() {
            return Err(bad("online: workflows must be non-empty".into()));
        }
        for (i, w) in self.workflows.iter().enumerate() {
            let ctx = format!("online.workflows[{i}]");
            if !w.size.is_finite() || w.size < 1.0 {
                return Err(bad(format!(
                    "{ctx}: size must be finite and ≥ 1, got {}",
                    w.size
                )));
            }
            if w.iterations == 0 {
                return Err(bad(format!("{ctx}: iterations must be ≥ 1, got 0")));
            }
            if !w.arrival.is_finite() || w.arrival < 0.0 {
                return Err(bad(format!(
                    "{ctx}: arrival must be finite and ≥ 0, got {}",
                    w.arrival
                )));
            }
        }
        if let Some(f) = &self.fault {
            check_unit("online.fault", "rate", f.rate, 0.0, 1.0)?;
        }
        Ok(())
    }

    pub fn total_tasks(&self) -> usize {
        self.workflows.iter().map(|w| w.iterations).sum()
    }
}

// ---------------------------------------------------------------------------
// Seeded generation.
// ---------------------------------------------------------------------------

/// Lane tags for `unit_hash` draws — distinct per field so draws are
/// independent. Values are arbitrary but must never change (they are the
/// generator's wire format: same seed must mean the same scenario
/// forever).
mod lane {
    pub const KIND: u64 = 0x01;
    pub const N_CLIENTS: u64 = 0x02;
    pub const MECHANISM: u64 = 0x03;
    pub const OVERHEAD: u64 = 0x04;
    pub const POWER_CAP: u64 = 0x05;
    pub const N_FAULTS: u64 = 0x06;
    pub const FAULT_AT: u64 = 0x07;
    pub const FAULT_CLIENT: u64 = 0x08;
    pub const PARTITION: u64 = 0x09;
    pub const MIG_LAYOUT: u64 = 0x0a;
    pub const MIG_ASSIGN: u64 = 0x0b;
    pub const TS_QUANTUM: u64 = 0x0c;
    pub const TS_SWITCH: u64 = 0x0d;
    pub const SM: u64 = 0x10;
    pub const BW: u64 = 0x11;
    pub const DUTY: u64 = 0x12;
    pub const DURATION: u64 = 0x13;
    pub const MEMORY: u64 = 0x14;
    pub const KERNELS: u64 = 0x15;
    pub const CACHE: u64 = 0x16;
    pub const CLIENT_SENS: u64 = 0x17;
    pub const TASKS: u64 = 0x18;
    pub const ARRIVAL: u64 = 0x19;
    pub const N_WORKFLOWS: u64 = 0x20;
    pub const WF_KIND: u64 = 0x21;
    pub const WF_SIZE: u64 = 0x22;
    pub const WF_ITER: u64 = 0x23;
    pub const WF_ARRIVAL: u64 = 0x24;
    pub const PRIORITY: u64 = 0x25;
    pub const STRATEGY: u64 = 0x26;
    pub const ONLINE_FAULT: u64 = 0x27;
    pub const ONLINE_RATE: u64 = 0x28;
}

/// Valid MIG layouts the generator draws from (slice sizes, sum ≤ 7).
const MIG_LAYOUTS: [&[u32]; 4] = [&[7], &[3, 4], &[2, 2, 3], &[1, 2, 4]];

fn range(u: f64, lo: f64, hi: f64) -> f64 {
    lo + u * (hi - lo)
}

fn pick(u: f64, n: usize) -> usize {
    ((u * n as f64) as usize).min(n - 1)
}

impl Scenario {
    /// Generates the scenario for `seed`. Pure: every draw goes through
    /// `unit_hash(seed, lanes)`, so generation is order-free and
    /// identical across serial and parallel campaigns.
    pub fn generate(seed: u64) -> Scenario {
        let d = |tag: u64, idx: u64| unit_hash(seed, &[tag, idx]);
        // ~1 in 6 scenarios exercises the online scheduler (slower per
        // run: profiling + planning + dispatch sims).
        if d(lane::KIND, 0) < 0.17 {
            Self::generate_online(seed)
        } else {
            Self::generate_engine(seed)
        }
    }

    fn generate_engine(seed: u64) -> Scenario {
        let d = |tag: u64, idx: u64| unit_hash(seed, &[tag, idx]);
        let n = 1 + pick(d(lane::N_CLIENTS, 0), 4);

        let clients: Vec<ClientSpec> = (0..n)
            .map(|i| {
                let di = |tag: u64| d(tag, i as u64);
                ClientSpec {
                    id: format!("c{i}"),
                    arrival: (range(di(lane::ARRIVAL), 0.0, 1.5) * 1e3).round() / 1e3,
                    tasks: 1 + pick(di(lane::TASKS), 3),
                    workload: SyntheticSpec {
                        sm_demand: range(di(lane::SM), 0.05, 1.0),
                        bw_demand: range(di(lane::BW), 0.0, 0.6),
                        duty_cycle: range(di(lane::DUTY), 0.25, 1.0),
                        duration: range(di(lane::DURATION), 0.3, 3.0),
                        memory_mib: 128 + (di(lane::MEMORY) * 8064.0) as u64,
                        kernels: 1 + pick(di(lane::KERNELS), 6),
                        cache_sensitivity: range(di(lane::CACHE), 0.0, 1.0),
                        client_sensitivity: range(di(lane::CLIENT_SENS), 0.0, 0.5),
                    },
                }
            })
            .collect();

        let mechanism = match pick(d(lane::MECHANISM, 0), 5) {
            0 => MechanismSpec::Sequential,
            1 => MechanismSpec::TimeSliced {
                quantum_us: range(d(lane::TS_QUANTUM, 0), 500.0, 5000.0).round(),
                switch_us: range(d(lane::TS_SWITCH, 0), 50.0, 200.0).round(),
            },
            2 => MechanismSpec::Mps {
                partitions: (0..n)
                    .map(|i| {
                        (range(d(lane::PARTITION, i as u64), 0.15, 1.0) * 100.0).round() / 100.0
                    })
                    .collect(),
            },
            3 => MechanismSpec::Streams,
            _ => {
                let layout = MIG_LAYOUTS[pick(d(lane::MIG_LAYOUT, 0), MIG_LAYOUTS.len())];
                MechanismSpec::Mig {
                    slices: layout.to_vec(),
                    assignment: (0..n)
                        .map(|i| pick(d(lane::MIG_ASSIGN, i as u64), layout.len()))
                        .collect(),
                }
            }
        };

        let sharing_overhead = match pick(d(lane::OVERHEAD, 0), 3) {
            0 => 0.0,
            1 => 0.002,
            _ => 0.01,
        };
        // A quarter of scenarios tighten the power cap to force DVFS
        // throttling (cap stays above the A100X 75 W idle draw).
        let power_cap_watts = if d(lane::POWER_CAP, 0) < 0.25 {
            Some(range(d(lane::POWER_CAP, 1), 150.0, 400.0).round())
        } else {
            None
        };

        let n_faults = pick(d(lane::N_FAULTS, 0), 3);
        let faults: Vec<FaultPoint> = (0..n_faults)
            .map(|i| FaultPoint {
                at: (range(d(lane::FAULT_AT, i as u64), 0.1, 4.0) * 1e3).round() / 1e3,
                client: pick(d(lane::FAULT_CLIENT, i as u64), n),
            })
            .collect();

        let mech_name = match &mechanism {
            MechanismSpec::Sequential => "seq",
            MechanismSpec::TimeSliced { .. } => "ts",
            MechanismSpec::Mps { .. } => "mps",
            MechanismSpec::Streams => "streams",
            MechanismSpec::Mig { .. } => "mig",
        };
        Scenario {
            seed,
            name: format!("engine/{mech_name}-{n}c-{n_faults}f"),
            expected_digest: None,
            run: RunSpec::Engine(EngineScenario {
                clients,
                mechanism,
                sharing_overhead,
                power_cap_watts,
                faults,
            }),
        }
    }

    fn generate_online(seed: u64) -> Scenario {
        let d = |tag: u64, idx: u64| unit_hash(seed, &[tag, idx]);
        let n = 1 + pick(d(lane::N_WORKFLOWS, 0), 3);
        const SIZES: [f64; 3] = [1.0, 2.0, 4.0];
        let workflows: Vec<OnlineEntry> = (0..n)
            .map(|i| OnlineEntry {
                kind: BenchmarkKind::ALL
                    [pick(d(lane::WF_KIND, i as u64), BenchmarkKind::ALL.len())],
                size: SIZES[pick(d(lane::WF_SIZE, i as u64), SIZES.len())],
                iterations: 1 + pick(d(lane::WF_ITER, i as u64), 3),
                arrival: range(d(lane::WF_ARRIVAL, i as u64), 0.0, 30.0).round(),
            })
            .collect();
        let priority = match pick(d(lane::PRIORITY, 0), 3) {
            0 => PriorityChoice::Throughput,
            1 => PriorityChoice::Energy,
            _ => PriorityChoice::Product,
        };
        let strategy = match pick(d(lane::STRATEGY, 0), 3) {
            0 => StrategyChoice::Greedy,
            1 => StrategyChoice::BestFit,
            _ => StrategyChoice::Auto,
        };
        let fault = if d(lane::ONLINE_FAULT, 0) < 0.3 {
            Some(OnlineFaultSpec {
                seed: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
                rate: (range(d(lane::ONLINE_RATE, 0), 0.02, 0.3) * 100.0).round() / 100.0,
            })
        } else {
            None
        };
        let f_tag = if fault.is_some() { "faulty" } else { "clean" };
        Scenario {
            seed,
            name: format!("online/{n}w-{f_tag}"),
            expected_digest: None,
            run: RunSpec::Online(OnlineScenario {
                workflows,
                priority,
                strategy,
                fault,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            a.validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid scenario: {e}"));
            // JSON round-trip preserves the scenario exactly.
            let back = Scenario::from_json(&a.to_json()).unwrap();
            assert_eq!(a, back, "seed {seed} JSON round-trip drifted");
        }
    }

    #[test]
    fn generator_covers_all_mechanisms() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..300u64 {
            if let RunSpec::Engine(e) = &Scenario::generate(seed).run {
                seen.insert(match &e.mechanism {
                    MechanismSpec::Sequential => "seq",
                    MechanismSpec::TimeSliced { .. } => "ts",
                    MechanismSpec::Mps { .. } => "mps",
                    MechanismSpec::Streams => "streams",
                    MechanismSpec::Mig { .. } => "mig",
                });
            } else {
                seen.insert("online");
            }
        }
        assert_eq!(seen.len(), 6, "missing coverage: {seen:?}");
    }

    fn engine_scenario() -> Scenario {
        Scenario {
            seed: 0,
            name: "hand/one".into(),
            expected_digest: None,
            run: RunSpec::Engine(EngineScenario {
                clients: vec![ClientSpec {
                    id: "a".into(),
                    arrival: 0.0,
                    tasks: 1,
                    workload: SyntheticSpec::light(),
                }],
                mechanism: MechanismSpec::Streams,
                sharing_overhead: 0.0,
                power_cap_watts: None,
                faults: vec![],
            }),
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        let mut dup = engine_scenario();
        if let RunSpec::Engine(e) = &mut dup.run {
            let mut second = e.clients[0].clone();
            second.id = "a".into();
            e.clients.push(second);
        }
        let err = dup.validate().unwrap_err().to_string();
        assert!(
            err.contains("clients[1]") && err.contains("duplicate"),
            "{err}"
        );

        let mut zero = engine_scenario();
        if let RunSpec::Engine(e) = &mut zero.run {
            e.clients[0].tasks = 0;
        }
        let err = zero.validate().unwrap_err().to_string();
        assert!(err.contains("tasks must be ≥ 1"), "{err}");

        let mut neg = engine_scenario();
        if let RunSpec::Engine(e) = &mut neg.run {
            e.clients[0].workload.duration = -1.0;
        }
        let err = neg.validate().unwrap_err().to_string();
        assert!(err.contains("duration"), "{err}");

        let mut nan_cap = engine_scenario();
        if let RunSpec::Engine(e) = &mut nan_cap.run {
            e.power_cap_watts = Some(f64::NAN);
        }
        let err = nan_cap.validate().unwrap_err().to_string();
        assert!(err.contains("power_cap_watts"), "{err}");

        let mut bad_fault = engine_scenario();
        if let RunSpec::Engine(e) = &mut bad_fault.run {
            e.faults.push(FaultPoint { at: 1.0, client: 9 });
        }
        let err = bad_fault.validate().unwrap_err().to_string();
        assert!(
            err.contains("faults[0]") && err.contains("out of range"),
            "{err}"
        );

        let bad_online = Scenario {
            seed: 0,
            name: "hand/online".into(),
            expected_digest: None,
            run: RunSpec::Online(OnlineScenario {
                workflows: vec![OnlineEntry {
                    kind: BenchmarkKind::Kripke,
                    size: 0.0,
                    iterations: 1,
                    arrival: 0.0,
                }],
                priority: PriorityChoice::Product,
                strategy: StrategyChoice::Auto,
                fault: None,
            }),
        };
        let err = bad_online.validate().unwrap_err().to_string();
        assert!(
            err.contains("workflows[0]") && err.contains("size"),
            "{err}"
        );
    }
}
