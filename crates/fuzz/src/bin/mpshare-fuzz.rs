//! `mpshare-fuzz` — seeded invariant fuzzing of the mpshare stack.
//!
//! ```text
//! mpshare-fuzz run  --count N [--base SEED] [--out FILE] [--no-shrink] [--serial]
//! mpshare-fuzz gen  SEED [--pin] [--out FILE]
//! mpshare-fuzz replay FILE.json [FILE.json ...]
//! mpshare-fuzz zoo  DIR
//! ```
//!
//! * `run` fuzzes a block of seeds and prints the canonical campaign
//!   report. Same seeds → byte-identical report, serial or parallel;
//!   failing scenarios are delta-debugged into minimal inline repros.
//! * `gen` prints the scenario a seed generates; `--pin` embeds the
//!   oracle digest so the file can join `configs/zoo/`.
//! * `replay` re-runs saved scenario files (shrunk repros, hand-written
//!   configs) through the oracle.
//! * `zoo` replays every scenario in a directory and fails on any
//!   violation or pinned-digest drift — the `make fuzz-smoke` gate.
//!
//! Exit code 0 = all clean, 1 = violations or drift, 2 = usage/config.

use mpshare_fuzz::{
    check_scenario, render_report, replay_zoo, run_campaign, CampaignConfig, Scenario,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: mpshare-fuzz run --count N [--base SEED] [--out FILE] [--no-shrink] [--serial]\n\
         \x20      mpshare-fuzz gen SEED [--pin] [--out FILE]\n\
         \x20      mpshare-fuzz replay FILE.json [FILE.json ...]\n\
         \x20      mpshare-fuzz zoo DIR"
    );
    std::process::exit(2);
}

fn emit(out: Option<&PathBuf>, body: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
        }
        None => {
            print!("{body}");
            Ok(())
        }
    }
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let mut count = None;
    let mut base = 0u64;
    let mut out = None;
    let mut shrink = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => {
                count = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--base" => {
                base = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--no-shrink" => shrink = false,
            "--serial" => mpshare_par::set_serial(true),
            _ => usage(),
        }
    }
    let config = CampaignConfig {
        base_seed: base,
        count: count.unwrap_or_else(|| usage()),
        shrink,
    };
    let campaign = run_campaign(&config);
    emit(out.as_ref(), &render_report(&campaign))?;
    let failing = campaign.failing().count();
    if failing > 0 {
        eprintln!("{failing} failing scenario(s)");
    }
    Ok(failing == 0)
}

fn cmd_gen(args: &[String]) -> Result<bool, String> {
    let mut seed = None;
    let mut pin = false;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pin" => pin = true,
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            other => match other.parse() {
                Ok(s) if seed.is_none() => seed = Some(s),
                _ => usage(),
            },
        }
    }
    let mut scenario = Scenario::generate(seed.unwrap_or_else(|| usage()));
    if pin {
        let report = check_scenario(&scenario).map_err(|e| e.to_string())?;
        if !report.violations.is_empty() {
            for v in &report.violations {
                eprintln!("{}: {}", v.check, v.detail);
            }
            return Err("refusing to pin a digest for a failing scenario".into());
        }
        scenario.expected_digest = Some(report.digest);
    }
    emit(out.as_ref(), &format!("{}\n", scenario.to_json()))?;
    Ok(true)
}

fn cmd_replay(files: &[String]) -> Result<bool, String> {
    if files.is_empty() {
        usage();
    }
    let mut all_clean = true;
    for f in files {
        let outcome = mpshare_fuzz::replay_file(&PathBuf::from(f)).map_err(|e| e.to_string())?;
        println!("{f}: {}", outcome.describe());
        all_clean &= outcome.is_clean();
    }
    Ok(all_clean)
}

fn cmd_zoo(args: &[String]) -> Result<bool, String> {
    let [dir] = args else { usage() };
    let outcomes = replay_zoo(&PathBuf::from(dir)).map_err(|e| e.to_string())?;
    let mut all_clean = true;
    for (path, outcome) in &outcomes {
        println!("{}: {}", path.display(), outcome.describe());
        all_clean &= outcome.is_clean();
    }
    println!(
        "zoo: {} scenario(s), {}",
        outcomes.len(),
        if all_clean { "all clean" } else { "FAILURES" }
    );
    Ok(all_clean)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let outcome = match cmd.as_str() {
        "run" => cmd_run(rest),
        "gen" => cmd_gen(rest),
        "replay" => cmd_replay(rest),
        "zoo" => cmd_zoo(rest),
        _ => usage(),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
