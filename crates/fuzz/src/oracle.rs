//! Invariant oracle: runs one scenario through the real execution paths
//! (`GpuRunner` or `OnlineScheduler`) and checks every cross-cutting
//! invariant the simulator and scheduler promise. A passing scenario also
//! yields a canonical output digest, which the zoo replayer pins against
//! drift.
//!
//! Checks, by scenario kind:
//!
//! **Engine** (direct simulator run)
//! * `invariant` — the full [`RunResult::invariant_violations`] suite:
//!   task-ledger closure, wasted-work totals vs per-client sums,
//!   fault/victim consistency, energy = telemetry integral, timeline
//!   sanity, no kernel activity after a client's abort.
//! * `event-log` — an event-logged run with ≥ 1 task must produce a
//!   non-empty log (this is the check that caught MIG dropping its
//!   instance logs on merge).
//! * `energy-floor` — board energy ≥ idle power × covered time (non-MIG:
//!   MIG instances integrate their own sliced idle draw).
//! * `incremental-vs-full` — the run repeated with the incremental
//!   contention re-solve disabled must be bit-identical (serialized
//!   `RunResult` equality).
//! * `component-vs-legacy` — the run repeated with the historical direct
//!   `while step()` engine loop (instead of the component/tick-heap core
//!   the runner uses by default) must be bit-identical.
//! * `order` — the canonical completion sequence must be a pure function
//!   of the completion records: seeded permutations of every per-client
//!   completion list, re-indexed, and the unindexed fallback path must
//!   all reproduce the same `(at, client, task)`-ordered sequence.
//! * `attribution` — for MPS/Streams, the per-client slowdown
//!   decomposition must close: every exactly-attributed client has
//!   |residual| ≤ 1e-9, and exactness coincides with completion.
//!
//! **Online** (planner + dispatcher)
//! * `outcome` — finiteness, goodput ≡ tasks / makespan, energy floor.
//! * `conservation` — fault-free runs complete every task and report no
//!   retries, faults, failures, or wasted energy; faulty runs never
//!   complete more than the queue holds, and failed-workflow indices are
//!   unique and in range.
//! * `determinism` — a second identical run must serialize identically.

use crate::scenario::{
    EngineScenario, MechanismSpec, OnlineScenario, PriorityChoice, RunSpec, Scenario,
    StrategyChoice,
};
use mpshare_core::{
    ArrivingWorkflow, ExecutorConfig, MetricPriority, OnlineFaultModel, OnlineOutcome,
    OnlineScheduler, Planner, PlannerStrategy, RecoveryPolicy,
};
use mpshare_gpusim::{
    ClientProgram, DeviceSpec, Engine, EngineConfig, FaultPlan, RunResult, SharingMode,
};
use mpshare_mps::{GpuRunner, GpuSharing, MigLayout, MigProfile, TimeSliceConfig};
use mpshare_profiler::ProfileStore;
use mpshare_types::{Error, Fraction, Power, Result, Seconds};
use mpshare_workloads::{ProblemSize, WorkflowSpec};

/// Attribution residual bound (the identity the paper's §V decomposition
/// promises for completed clients).
pub const ATTRIB_EPS: f64 = 1e-9;

/// One failed invariant: which check fired and what it saw.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    pub check: String,
    pub detail: String,
}

impl Violation {
    fn new(check: &str, detail: impl Into<String>) -> Self {
        Violation {
            check: check.into(),
            detail: detail.into(),
        }
    }
}

/// Outcome of running the oracle on one scenario.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Every invariant that failed (empty = scenario is clean).
    pub violations: Vec<Violation>,
    /// FNV-1a digest of the canonical serialized output — identical
    /// across serial/parallel runs and across processes.
    pub digest: String,
}

/// FNV-1a 64-bit over bytes: tiny, dependency-free, deterministic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Validates and runs `scenario`, returning the oracle report. `Err` is
/// reserved for malformed scenarios (validation failures) and internal
/// run errors — both count as failures for the campaign.
pub fn check_scenario(scenario: &Scenario) -> Result<OracleReport> {
    scenario.validate()?;
    match &scenario.run {
        RunSpec::Engine(e) => check_engine(e),
        RunSpec::Online(o) => check_online(o),
    }
}

fn build_device(sc: &EngineScenario) -> DeviceSpec {
    let mut device = DeviceSpec::a100x();
    if let Some(w) = sc.power_cap_watts {
        device.power_cap = Power::from_watts(w);
    }
    device
}

fn build_programs(sc: &EngineScenario, device: &DeviceSpec) -> Result<Vec<ClientProgram>> {
    sc.clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut p = c
                .workload
                .to_client_program(device, c.tasks, (i as u64) * 1000)?;
            p.label = c.id.clone();
            p.arrival = Seconds::new(c.arrival);
            Ok(p)
        })
        .collect()
}

fn build_sharing(sc: &EngineScenario, device: &DeviceSpec) -> Result<GpuSharing> {
    Ok(match &sc.mechanism {
        MechanismSpec::Sequential => GpuSharing::Sequential,
        MechanismSpec::Streams => GpuSharing::Streams,
        MechanismSpec::TimeSliced {
            quantum_us,
            switch_us,
        } => GpuSharing::TimeSliced(TimeSliceConfig::new(
            Seconds::new(quantum_us * 1e-6),
            Seconds::new(switch_us * 1e-6),
        )?),
        MechanismSpec::Mps { partitions } => GpuSharing::Mps {
            partitions: partitions.iter().map(|&p| Fraction::new(p)).collect(),
        },
        MechanismSpec::Mig { slices, assignment } => {
            let profiles: Vec<MigProfile> = slices
                .iter()
                .map(|s| match s {
                    1 => Ok(MigProfile::OneSlice),
                    2 => Ok(MigProfile::TwoSlice),
                    3 => Ok(MigProfile::ThreeSlice),
                    4 => Ok(MigProfile::FourSlice),
                    7 => Ok(MigProfile::SevenSlice),
                    other => Err(Error::InvalidConfig(format!("bad MIG slice count {other}"))),
                })
                .collect::<Result<_>>()?;
            GpuSharing::Mig {
                layout: MigLayout::new(device, &profiles)?,
                assignment: assignment.clone(),
            }
        }
    })
}

fn build_fault_plan(sc: &EngineScenario) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for f in &sc.faults {
        plan.push_client_fault(Seconds::new(f.at), f.client);
    }
    plan
}

fn canonical_result(result: &RunResult) -> String {
    serde_json::to_string(result).expect("RunResult serializes")
}

fn check_engine(sc: &EngineScenario) -> Result<OracleReport> {
    let device = build_device(sc);
    let programs = build_programs(sc, &device)?;
    let sharing = build_sharing(sc, &device)?;
    let faults = build_fault_plan(sc);
    let total_tasks = sc.total_tasks();

    let runner = GpuRunner::new(device.clone())
        .with_event_log(true)
        .with_sharing_overhead(sc.sharing_overhead);
    let result = runner.run_with_faults(&sharing, programs.clone(), &faults)?;

    let mut violations: Vec<Violation> = result
        .invariant_violations(Some(total_tasks))
        .into_iter()
        .map(|detail| Violation::new("invariant", detail))
        .collect();

    // Event-log presence: every scenario has ≥ 1 client with ≥ 1 task,
    // so an event-logged run must record *something* (at minimum the
    // first TaskStart or the aborting ClientFault). An empty log means a
    // mechanism path dropped it — exactly the MIG merge bug.
    if result.events.is_empty() {
        violations.push(Violation::new(
            "event-log",
            format!(
                "event logging was on and {total_tasks} tasks ran, but the merged log is empty"
            ),
        ));
    }

    // Board-energy floor: the device draws at least idle power over the
    // whole covered span. MIG is exempt — each instance integrates its
    // own sliced idle draw and the merged telemetry is a boundary sweep.
    if !matches!(sc.mechanism, MechanismSpec::Mig { .. }) {
        let covered = result.telemetry.total_time().value();
        let floor = device.idle_power.watts() * covered;
        let energy = result.telemetry.total_energy().joules();
        if energy < floor * (1.0 - 1e-9) - 1e-9 {
            violations.push(Violation::new(
                "energy-floor",
                format!(
                    "board energy {energy:.6} J below idle floor {floor:.6} J over {covered:.6} s"
                ),
            ));
        }
    }

    // Incremental vs forced-full contention re-solve: bit-identical.
    let full = runner
        .clone()
        .with_forced_full_resolve(true)
        .run_with_faults(&sharing, programs.clone(), &faults)?;
    let canon_inc = canonical_result(&result);
    let canon_full = canonical_result(&full);
    if canon_inc != canon_full {
        let at = canon_inc
            .bytes()
            .zip(canon_full.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| canon_inc.len().min(canon_full.len()));
        violations.push(Violation::new(
            "incremental-vs-full",
            format!(
                "incremental and full-resolve results diverge at byte {at} \
                 (lens {} vs {})",
                canon_inc.len(),
                canon_full.len()
            ),
        ));
    }

    // Component core vs the historical direct loop: the runner drives the
    // engine through the component/tick-heap core by default, and the
    // refactor promises to be observationally invisible. Forcing the
    // legacy `while step()` loop must reproduce the run bit-identically.
    let legacy = runner.clone().with_legacy_loop(true).run_with_faults(
        &sharing,
        programs.clone(),
        &faults,
    )?;
    let canon_legacy = canonical_result(&legacy);
    if canon_inc != canon_legacy {
        let at = canon_inc
            .bytes()
            .zip(canon_legacy.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| canon_inc.len().min(canon_legacy.len()));
        violations.push(Violation::new(
            "component-vs-legacy",
            format!(
                "component-core and legacy-loop results diverge at byte {at} \
                 (lens {} vs {})",
                canon_inc.len(),
                canon_legacy.len()
            ),
        ));
    }

    // Completion-order canonicalization: the `(at, client, task)` key is
    // total over distinct records, so the canonical sequence must be a
    // pure function of the records — independent of how the per-client
    // lists were assembled and of whether the precomputed index or the
    // merge-and-sort fallback produced it. Equal-time ties across clients
    // are exactly where an underspecified key would leak insertion order.
    let completion_seq = |r: &RunResult| -> String {
        serde_json::to_string(&r.completions()).expect("completions serialize")
    };
    let reference_seq = completion_seq(&result);
    let mut fallback = result.clone();
    fallback.completion_order.clear();
    if completion_seq(&fallback) != reference_seq {
        violations.push(Violation::new(
            "order",
            "unindexed completions() fallback diverged from the precomputed index".to_string(),
        ));
    }
    for seed in 0..8u64 {
        let mut shuffled = result.clone();
        for (ci, client) in shuffled.clients.iter_mut().enumerate() {
            // Seeded Fisher-Yates via the engine's own splitmix64 stream:
            // reproducible, no external RNG.
            for i in (1..client.completions.len()).rev() {
                let draw = mpshare_gpusim::unit_hash(seed, &[ci as u64, i as u64]);
                let j = (draw * (i + 1) as f64) as usize;
                client.completions.swap(i, j.min(i));
            }
        }
        shuffled.index_completions();
        if completion_seq(&shuffled) != reference_seq {
            violations.push(Violation::new(
                "order",
                format!("completion permutation seed {seed} changed the canonical sequence"),
            ));
        }
    }

    // Attribution identity (MPS / Streams only — the modes `attribute`
    // defines the decomposition for).
    let mode = match &sc.mechanism {
        MechanismSpec::Mps { partitions } => Some(SharingMode::Mps {
            partitions: partitions.iter().map(|&p| Fraction::new(p)).collect(),
        }),
        MechanismSpec::Streams => Some(SharingMode::Streams),
        _ => None,
    };
    let mut attrib_canon = String::new();
    if let Some(mode) = mode {
        // Mirror the runner: shared-domain mechanisms widen every fault.
        let config = EngineConfig::new(device.clone(), mode)
            .with_sharing_overhead(sc.sharing_overhead)
            .with_event_log(true)
            .with_fault_plan(faults.widen_to_domain());
        let attrib_result = Engine::new(config.clone(), programs.clone())?.run()?;
        let report = mpshare_obs::attribute(&config, &programs, &attrib_result)?;
        for c in &report.clients {
            if c.exact != c.completed {
                violations.push(Violation::new(
                    "attribution",
                    format!(
                        "client {} ({}): exact={} but completed={}",
                        c.client, c.label, c.exact, c.completed
                    ),
                ));
            }
            for (name, v) in [
                ("solo_turnaround", c.solo_turnaround),
                ("shared_turnaround", c.shared_turnaround),
                ("slowdown", c.slowdown),
                ("residual", c.residual),
            ] {
                if !v.is_finite() {
                    violations.push(Violation::new(
                        "attribution",
                        format!("client {} ({}): {name} is {v}", c.client, c.label),
                    ));
                }
            }
            if c.exact && c.residual.abs() > ATTRIB_EPS {
                violations.push(Violation::new(
                    "attribution",
                    format!(
                        "client {} ({}): residual {:.3e} exceeds {ATTRIB_EPS:.0e} \
                         — the slowdown decomposition does not close",
                        c.client, c.label, c.residual
                    ),
                ));
            }
            attrib_canon.push_str(&format!(
                "{}:{}:{}:{:?}:{:?};",
                c.client, c.completed, c.exact, c.slowdown, c.residual
            ));
        }
    }

    let digest = format!(
        "{:016x}",
        fnv1a64(format!("{canon_inc}|{attrib_canon}").as_bytes())
    );
    Ok(OracleReport { violations, digest })
}

fn check_online(sc: &OnlineScenario) -> Result<OracleReport> {
    let device = DeviceSpec::a100x();
    let specs: Vec<WorkflowSpec> = sc
        .workflows
        .iter()
        .map(|w| WorkflowSpec::uniform(w.kind, ProblemSize::new(w.size), w.iterations))
        .collect();
    let mut store = ProfileStore::new();
    store.profile_workflows(&device, &specs)?;
    let arrivals: Vec<ArrivingWorkflow> = specs
        .iter()
        .zip(&sc.workflows)
        .map(|(spec, w)| ArrivingWorkflow {
            spec: spec.clone(),
            arrival: Seconds::new(w.arrival),
        })
        .collect();

    let priority = match sc.priority {
        PriorityChoice::Throughput => MetricPriority::Throughput,
        PriorityChoice::Energy => MetricPriority::Energy,
        PriorityChoice::Product => MetricPriority::balanced_product(),
    };
    let strategy = match sc.strategy {
        StrategyChoice::Greedy => PlannerStrategy::Greedy,
        StrategyChoice::BestFit => PlannerStrategy::BestFit,
        StrategyChoice::Auto => PlannerStrategy::Auto,
    };
    let run_once = |force_cold: bool| -> Result<OnlineOutcome> {
        let scheduler = OnlineScheduler::new(
            ExecutorConfig::new(device.clone()),
            Planner::new(device.clone(), priority).with_forced_cold_start(force_cold),
            strategy,
        );
        match &sc.fault {
            None => scheduler.run(&arrivals, &store),
            Some(f) => scheduler.run_with_recovery(
                &arrivals,
                &store,
                Some(&OnlineFaultModel::new(f.seed, f.rate)?),
                &RecoveryPolicy::default(),
            ),
        }
    };

    let outcome = run_once(false)?;
    let mut violations = Vec::new();
    let total_tasks = sc.total_tasks();

    for (name, v) in [
        ("makespan", outcome.makespan.value()),
        ("energy", outcome.energy.joules()),
        ("mean_wait", outcome.mean_wait.value()),
        ("wasted_energy", outcome.wasted_energy.joules()),
        ("goodput", outcome.goodput),
    ] {
        if !v.is_finite() || v < 0.0 {
            violations.push(Violation::new(
                "outcome",
                format!("{name} must be finite and ≥ 0, got {v}"),
            ));
        }
    }
    let expect_goodput = if outcome.makespan.value() > 0.0 {
        outcome.tasks as f64 / outcome.makespan.value()
    } else {
        0.0
    };
    if (outcome.goodput - expect_goodput).abs() > 1e-9 * expect_goodput.max(1.0) {
        violations.push(Violation::new(
            "outcome",
            format!(
                "goodput {} ≠ tasks/makespan {}",
                outcome.goodput, expect_goodput
            ),
        ));
    }
    let floor = device.idle_power.watts() * outcome.makespan.value();
    if outcome.energy.joules() < floor * (1.0 - 1e-9) - 1e-9 {
        violations.push(Violation::new(
            "outcome",
            format!(
                "energy {:.6} J below idle floor {floor:.6} J over the makespan",
                outcome.energy.joules()
            ),
        ));
    }

    if sc.fault.is_none() {
        if outcome.tasks != total_tasks {
            violations.push(Violation::new(
                "conservation",
                format!(
                    "fault-free run completed {} of {total_tasks} queued tasks",
                    outcome.tasks
                ),
            ));
        }
        if outcome.retries != 0
            || outcome.faults != 0
            || !outcome.failed_workflows.is_empty()
            || outcome.wasted_energy.joules() != 0.0
        {
            violations.push(Violation::new(
                "conservation",
                format!(
                    "fault-free run reports retries={} faults={} failed={:?} wasted={} J",
                    outcome.retries,
                    outcome.faults,
                    outcome.failed_workflows,
                    outcome.wasted_energy.joules()
                ),
            ));
        }
    } else {
        if outcome.tasks > total_tasks {
            violations.push(Violation::new(
                "conservation",
                format!(
                    "run completed {} tasks but the queue only holds {total_tasks}",
                    outcome.tasks
                ),
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for &w in &outcome.failed_workflows {
            if w >= sc.workflows.len() {
                violations.push(Violation::new(
                    "conservation",
                    format!("failed workflow index {w} out of range"),
                ));
            }
            if !seen.insert(w) {
                violations.push(Violation::new(
                    "conservation",
                    format!("workflow {w} reported failed more than once"),
                ));
            }
        }
    }

    // Full-run determinism: an identical second run must serialize
    // byte-identically (planner, dispatcher, and fault draws are all
    // seeded and order-free).
    let canon = serde_json::to_string(&outcome).expect("outcome serializes");
    let second = run_once(false)?;
    let canon2 = serde_json::to_string(&second).expect("outcome serializes");
    if canon != canon2 {
        violations.push(Violation::new(
            "determinism",
            "two identical online runs produced different outcomes".to_string(),
        ));
    }

    // Warm-vs-cold planner equivalence: the scheduler replans with
    // warm-started state carried across free points; forcing every
    // planning call cold through the planner's escape hatch must yield a
    // byte-identical outcome, or the warm path changed a decision.
    let cold = run_once(true)?;
    let canon_cold = serde_json::to_string(&cold).expect("outcome serializes");
    if canon != canon_cold {
        violations.push(Violation::new(
            "warm_cold",
            "warm-started online run diverged from the forced-cold run".to_string(),
        ));
    }

    let digest = format!("{:016x}", fnv1a64(canon.as_bytes()));
    Ok(OracleReport { violations, digest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ClientSpec, FaultPoint, OnlineEntry, OnlineFaultSpec};
    use mpshare_workloads::{BenchmarkKind, SyntheticSpec};

    fn quick_workload() -> SyntheticSpec {
        SyntheticSpec {
            sm_demand: 0.5,
            bw_demand: 0.2,
            duty_cycle: 0.8,
            duration: 0.5,
            memory_mib: 256,
            kernels: 2,
            cache_sensitivity: 0.1,
            client_sensitivity: 0.1,
        }
    }

    fn mps_scenario(faults: Vec<FaultPoint>) -> Scenario {
        Scenario {
            seed: 0,
            name: "test/mps".into(),
            expected_digest: None,
            run: RunSpec::Engine(EngineScenario {
                clients: (0..2)
                    .map(|i| ClientSpec {
                        id: format!("c{i}"),
                        arrival: 0.1 * i as f64,
                        tasks: 2,
                        workload: quick_workload(),
                    })
                    .collect(),
                mechanism: MechanismSpec::Mps {
                    partitions: vec![0.5, 0.5],
                },
                sharing_overhead: 0.002,
                power_cap_watts: None,
                faults,
            }),
        }
    }

    #[test]
    fn clean_mps_scenario_passes_all_checks() {
        let report = check_scenario(&mps_scenario(vec![])).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.digest.len(), 16);
    }

    #[test]
    fn faulty_mps_scenario_passes_all_checks() {
        let report =
            check_scenario(&mps_scenario(vec![FaultPoint { at: 0.3, client: 1 }])).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn oracle_is_deterministic_per_scenario() {
        let sc = mps_scenario(vec![FaultPoint { at: 0.3, client: 0 }]);
        let a = check_scenario(&sc).unwrap();
        let b = check_scenario(&sc).unwrap();
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn clean_online_scenario_passes_all_checks() {
        let sc = Scenario {
            seed: 0,
            name: "test/online".into(),
            expected_digest: None,
            run: RunSpec::Online(OnlineScenario {
                workflows: vec![OnlineEntry {
                    kind: BenchmarkKind::Kripke,
                    size: 1.0,
                    iterations: 2,
                    arrival: 0.0,
                }],
                priority: PriorityChoice::Product,
                strategy: StrategyChoice::Greedy,
                fault: None,
            }),
        };
        let report = check_scenario(&sc).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn faulty_online_scenario_passes_all_checks() {
        let sc = Scenario {
            seed: 0,
            name: "test/online-faulty".into(),
            expected_digest: None,
            run: RunSpec::Online(OnlineScenario {
                workflows: vec![OnlineEntry {
                    kind: BenchmarkKind::Lammps,
                    size: 1.0,
                    iterations: 1,
                    arrival: 0.0,
                }],
                priority: PriorityChoice::Throughput,
                strategy: StrategyChoice::Greedy,
                fault: Some(OnlineFaultSpec { seed: 7, rate: 0.5 }),
            }),
        };
        let report = check_scenario(&sc).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn invalid_scenario_is_rejected_before_running() {
        let mut sc = mps_scenario(vec![]);
        if let RunSpec::Engine(e) = &mut sc.run {
            e.clients[1].id = "c0".into();
        }
        let err = check_scenario(&sc).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
    }
}
