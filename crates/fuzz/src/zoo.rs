//! Zoo replay: pinned scenarios under `configs/zoo/` are the fuzzer's
//! survivors — shrunk repros of past bugs and curated coverage of every
//! mechanism. Each carries an `expected_digest`; replay fails on any
//! invariant violation *or* on digest drift, so behaviour changes that
//! alter simulator output must consciously re-pin the digest.

use crate::oracle::{check_scenario, Violation};
use crate::scenario::Scenario;
use mpshare_types::{Error, Result};
use std::path::{Path, PathBuf};

/// Result of replaying one pinned scenario.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    pub name: String,
    pub violations: Vec<Violation>,
    pub digest: String,
    pub expected_digest: Option<String>,
}

impl ReplayOutcome {
    /// Clean: no violations and (when pinned) no digest drift.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self
                .expected_digest
                .as_ref()
                .is_none_or(|want| *want == self.digest)
    }

    pub fn describe(&self) -> String {
        if self.is_clean() {
            format!("{:<28} ok    {}", self.name, self.digest)
        } else {
            let mut s = format!("{:<28} FAIL", self.name);
            if let Some(want) = &self.expected_digest {
                if *want != self.digest {
                    s.push_str(&format!(
                        "\n    digest drift: expected {want}, got {}",
                        self.digest
                    ));
                }
            }
            for v in &self.violations {
                s.push_str(&format!("\n    {}: {}", v.check, v.detail));
            }
            s
        }
    }
}

/// Replays one scenario file.
pub fn replay_file(path: &Path) -> Result<ReplayOutcome> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| Error::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
    let scenario = Scenario::from_json(&body)?;
    let report = check_scenario(&scenario)?;
    Ok(ReplayOutcome {
        name: scenario.name,
        violations: report.violations,
        digest: report.digest,
        expected_digest: scenario.expected_digest,
    })
}

/// Replays every `*.json` in `dir`, sorted by file name (deterministic
/// order). Errors if the directory is unreadable or holds no scenarios —
/// an empty zoo almost certainly means a wrong path, and silently
/// passing would make the gate vacuous.
pub fn replay_zoo(dir: &Path) -> Result<Vec<(PathBuf, ReplayOutcome)>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::InvalidConfig(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    if files.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "zoo {} holds no scenario .json files",
            dir.display()
        )));
    }
    files.sort();
    files
        .into_iter()
        .map(|p| replay_file(&p).map(|o| (p, o)))
        .collect()
}
