//! `mpshare-workloads` — the paper's benchmark repository, as workload
//! models.
//!
//! The paper's third contribution is "a repository of bare-metal HPC
//! benchmarks that can be run on small prototype HPC clusters … and
//! incorporates easy scaling of resources and problem size". The seven
//! codes (AthenaPK, BerkeleyGW-Epsilon, Cholla-Gravity, Cholla-MHD, Kripke,
//! LAMMPS, WarpX) cannot run here — they need real GPUs — so this crate
//! models each as a phase-level kernel mix whose *profiled* behaviour on
//! the `mpshare-gpusim` simulator reproduces the paper's published
//! measurements:
//!
//! * **Table I** — average achieved and theoretical warp occupancy, via
//!   per-benchmark launch geometries whose occupancy-calculator results
//!   land on the reported values;
//! * **Table II** — max memory, average memory-bandwidth and SM
//!   utilization, average power and energy at 1× and 4× problem sizes, via
//!   demand coefficients and duty cycles anchored to those rows.
//!
//! The anchors pin only *solo* profiles — exactly what the paper's offline
//! profiling step pins. Everything that happens under co-scheduling
//! (contention, throttling, energy amortization) is emergent from the
//! simulator's contention model.
//!
//! [`workflow`] builds multi-task workflows and the paper's Table III
//! combinations; [`synthetic`] generates parameterized artificial
//! workloads for property tests and ablations.

pub mod benchmarks;
pub mod builder;
pub mod calibration;
pub mod catalog;
pub mod generator;
pub mod spec;
pub mod synthetic;
pub mod workflow;

pub use builder::build_task;
pub use calibration::{fit_power_model, PowerFit};
pub use catalog::{all_benchmarks, benchmark, Benchmark};
pub use generator::QueueGenerator;
pub use spec::{AnchorProfile, BenchmarkKind, OccupancyTargets, ProblemSize};
pub use synthetic::{SyntheticSpec, SyntheticWorkloadGen};
pub use workflow::{table3_combinations, Combination, TaskSource, WorkflowSpec, WorkflowTask};
