//! The benchmark catalog: all seven codes with their published anchors.
//!
//! Table I (occupancy) and Table II (utilization/power/energy at 1× and 4×)
//! of the paper are encoded verbatim as anchors. The remaining fields are
//! model design parameters:
//!
//! * the launch geometry (`threads_per_block`, `regs_per_thread`) is chosen
//!   so the CUDA occupancy calculator lands on the benchmark's Table I
//!   *theoretical* occupancy;
//! * `main_grid_1x` sizes the dominant kernel's grid so that its
//!   throughput-vs-partition curve saturates where the paper's Figure 1
//!   shows it saturating (the "granularity" effect);
//! * `duty_cycle` in the anchors splits average utilization into
//!   burst-utilization × busy-fraction (bursty AMR codes vs. streaming
//!   stencils);
//! * `cache_sensitivity` sets how strongly the benchmark suffers from
//!   co-runner memory/cache pressure under MPS.

use crate::spec::{
    log_lerp, power_law, AnchorProfile, BenchmarkKind, OccupancyTargets, ProblemSize,
};
use mpshare_types::{Energy, MemBytes, Percent, Power};
use serde::{Deserialize, Serialize};

/// A fully specified benchmark model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    pub kind: BenchmarkKind,
    /// Table I occupancy targets (at 1×).
    pub occupancy: OccupancyTargets,
    /// Table II anchor at 1× (always present).
    pub anchor_1x: AnchorProfile,
    /// Table II anchor at 4× (absent for BerkeleyGW-Epsilon, which the
    /// paper could not scale on its evaluation hardware).
    pub anchor_4x: Option<AnchorProfile>,
    /// Threads per block of the model kernels.
    pub threads_per_block: u32,
    /// Registers per thread of the model kernels.
    pub regs_per_thread: u32,
    /// Grid of the dominant ("main") kernel at 1×. Sized below one full
    /// device wave so the kernel saturates at a partial MPS partition.
    pub main_grid_1x: u32,
    /// Grid of the dense ("fill") kernel at 1× — an exact multiple of the
    /// device wave capacity.
    pub fill_grid_1x: u32,
    /// Share of GPU-busy time spent in the main kernel.
    pub main_weight: f64,
    /// Co-runner cache/memory-pressure sensitivity.
    pub cache_sensitivity: f64,
    /// Per-co-runner MPS client-pressure sensitivity (shared launch path /
    /// scheduling hardware). High for codes that issue many small kernels
    /// (AMR, short tasks), low for long streaming kernels.
    pub client_sensitivity: f64,
}

impl Benchmark {
    /// Interpolated/extrapolated Table II profile at an arbitrary size.
    ///
    /// With both anchors, utilizations and duration follow fitted power
    /// laws, memory interpolates linearly, and duty cycle interpolates in
    /// log-size. With only the 1× anchor (Epsilon), the paper's published
    /// O(N⁴) complexity drives duration and near-linear laws drive the
    /// rest.
    pub fn profile_at(&self, size: ProblemSize) -> AnchorProfile {
        let s = size.factor();
        if (s - 1.0).abs() < 1e-9 {
            return self.anchor_1x;
        }
        let a1 = &self.anchor_1x;
        match &self.anchor_4x {
            Some(a4) if (s - 4.0).abs() < 1e-9 => *a4,
            Some(a4) => {
                let sm = power_law(1.0, a1.avg_sm_util.value(), 4.0, a4.avg_sm_util.value(), s)
                    .clamp(0.0, 98.0);
                let bw = power_law(1.0, a1.avg_bw_util.value(), 4.0, a4.avg_bw_util.value(), s)
                    .clamp(0.0, 98.0);
                let duration = power_law(1.0, a1.duration().value(), 4.0, a4.duration().value(), s);
                let duty = log_lerp(1.0, a1.duty_cycle, 4.0, a4.duty_cycle, s).clamp(0.05, 0.98);
                let mem_mib = (a1.max_memory.mib()
                    + (a4.max_memory.mib() - a1.max_memory.mib()) * (s - 1.0) / 3.0)
                    .max(a1.max_memory.mib().min(a4.max_memory.mib()));
                let power = log_lerp(1.0, a1.avg_power.watts(), 4.0, a4.avg_power.watts(), s)
                    .clamp(50.0, 300.0);
                AnchorProfile {
                    size,
                    max_memory: MemBytes::from_mib(mem_mib.round() as u64),
                    avg_bw_util: Percent::clamped(bw),
                    avg_sm_util: Percent::clamped(sm),
                    avg_power: Power::from_watts(power),
                    energy: Energy::from_joules(power * duration),
                    duty_cycle: duty,
                }
            }
            None => {
                // Single anchor: Epsilon's O(N⁴) compute with near-linear
                // utilization and memory growth.
                let duration = a1.duration().value() * s.powf(4.0);
                let sm = (a1.avg_sm_util.value() * s.powf(0.8)).clamp(0.0, 98.0);
                let bw = (a1.avg_bw_util.value() * s.powf(0.8)).clamp(0.0, 98.0);
                let mem_mib = a1.max_memory.mib() * s;
                let power = (a1.avg_power.watts()
                    + 1.75 * (sm - a1.avg_sm_util.value())
                    + (bw - a1.avg_bw_util.value()))
                .clamp(50.0, 300.0);
                AnchorProfile {
                    size,
                    max_memory: MemBytes::from_mib(mem_mib.round() as u64),
                    avg_bw_util: Percent::clamped(bw),
                    avg_sm_util: Percent::clamped(sm),
                    avg_power: Power::from_watts(power),
                    energy: Energy::from_joules(power * duration),
                    duty_cycle: a1.duty_cycle,
                }
            }
        }
    }
}

/// Builds a Table II anchor row (helper for the benchmark modules).
pub(crate) fn anchor(
    size: ProblemSize,
    mem_mib: u64,
    bw: f64,
    sm: f64,
    power: f64,
    energy: f64,
    duty: f64,
) -> AnchorProfile {
    AnchorProfile {
        size,
        max_memory: MemBytes::from_mib(mem_mib),
        avg_bw_util: Percent::new(bw),
        avg_sm_util: Percent::new(sm),
        avg_power: Power::from_watts(power),
        energy: Energy::from_joules(energy),
        duty_cycle: duty,
    }
}

/// Builds a Table I occupancy target (helper for the benchmark modules).
pub(crate) fn occ(achieved: f64, theoretical: f64) -> OccupancyTargets {
    OccupancyTargets {
        achieved: Percent::new(achieved),
        theoretical: Percent::new(theoretical),
    }
}

/// Returns the model for one benchmark. The definitions (anchors from the
/// paper's Tables I & II, plus the model parameters and their rationale)
/// live in [`crate::benchmarks`], one module per code.
pub fn benchmark(kind: BenchmarkKind) -> Benchmark {
    use crate::benchmarks::*;
    match kind {
        BenchmarkKind::AthenaPk => athenapk::model(),
        BenchmarkKind::BerkeleyGwEpsilon => epsilon::model(),
        BenchmarkKind::ChollaGravity => gravity::model(),
        BenchmarkKind::ChollaMhd => mhd::model(),
        BenchmarkKind::Kripke => kripke::model(),
        BenchmarkKind::Lammps => lammps::model(),
        BenchmarkKind::WarpX => warpx::model(),
    }
}

/// All seven benchmarks, in the paper's Table I order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    BenchmarkKind::ALL.iter().map(|&k| benchmark(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 7);
        for b in &all {
            assert!(b.anchor_1x.duty_cycle > 0.0 && b.anchor_1x.duty_cycle <= 1.0);
            assert!(b.main_weight > 0.0 && b.main_weight < 1.0);
            // Active (burst) utilization must be a valid fraction.
            assert!(
                b.anchor_1x.active_sm_util() <= 1.0,
                "{}: active SM util {} > 1",
                b.kind,
                b.anchor_1x.active_sm_util()
            );
            if let Some(a4) = &b.anchor_4x {
                assert!(a4.active_sm_util() <= 1.0);
                assert!(a4.duration() > b.anchor_1x.duration());
            }
        }
    }

    #[test]
    fn anchors_match_table2_rows() {
        let l = benchmark(BenchmarkKind::Lammps);
        assert_eq!(l.anchor_1x.max_memory, MemBytes::from_mib(2321));
        assert_eq!(l.anchor_1x.avg_sm_util.value(), 63.0);
        assert_eq!(l.anchor_4x.unwrap().energy.joules(), 29_390.48);

        let w = benchmark(BenchmarkKind::WarpX);
        assert_eq!(w.anchor_1x.max_memory, w.anchor_4x.unwrap().max_memory);

        let e = benchmark(BenchmarkKind::BerkeleyGwEpsilon);
        assert!(e.anchor_4x.is_none());
        assert!(e.anchor_1x.duration().value() > 3000.0); // ~56 minutes
    }

    #[test]
    fn profile_at_returns_exact_anchors() {
        for b in all_benchmarks() {
            let p1 = b.profile_at(ProblemSize::X1);
            assert_eq!(p1, b.anchor_1x);
            if let Some(a4) = b.anchor_4x {
                assert_eq!(b.profile_at(ProblemSize::X4), a4);
            }
        }
    }

    #[test]
    fn interpolated_2x_sits_between_anchors() {
        let k = benchmark(BenchmarkKind::Kripke);
        let p2 = k.profile_at(ProblemSize::X2);
        assert!(p2.avg_sm_util > k.anchor_1x.avg_sm_util);
        assert!(p2.avg_sm_util < k.anchor_4x.unwrap().avg_sm_util);
        assert!(p2.duration() > k.anchor_1x.duration());
        assert!(p2.duration() < k.anchor_4x.unwrap().duration());
        assert!(p2.max_memory > k.anchor_1x.max_memory);
        assert!(p2.max_memory < k.anchor_4x.unwrap().max_memory);
    }

    #[test]
    fn extrapolated_8x_grows_but_stays_bounded() {
        let a = benchmark(BenchmarkKind::AthenaPk);
        let p8 = a.profile_at(ProblemSize::X8);
        assert!(p8.avg_sm_util > a.anchor_4x.unwrap().avg_sm_util);
        assert!(p8.avg_sm_util.value() <= 98.0);
        assert!(p8.duty_cycle <= 0.98);
        assert!(p8.duration() > a.anchor_4x.unwrap().duration());
        assert!(p8.avg_power.watts() <= 300.0);
    }

    #[test]
    fn epsilon_scales_with_n4_complexity() {
        let e = benchmark(BenchmarkKind::BerkeleyGwEpsilon);
        let p2 = e.profile_at(ProblemSize::X2);
        let ratio = p2.duration().value() / e.anchor_1x.duration().value();
        assert!(
            (ratio - 16.0).abs() < 0.5,
            "O(N^4): 2x should be ~16x longer, got {ratio}"
        );
    }

    #[test]
    fn warpx_memory_is_flat_across_sizes() {
        let w = benchmark(BenchmarkKind::WarpX);
        let p2 = w.profile_at(ProblemSize::X2);
        assert_eq!(p2.max_memory, w.anchor_1x.max_memory);
    }

    #[test]
    fn lammps_is_the_hottest_1x_benchmark_after_mhd() {
        // Sanity on relative intensity used throughout the paper's
        // narrative: LAMMPS and MHD are the heavy hitters.
        let mut by_sm: Vec<(f64, BenchmarkKind)> = all_benchmarks()
            .iter()
            .map(|b| (b.anchor_1x.avg_sm_util.value(), b.kind))
            .collect();
        by_sm.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        assert_eq!(by_sm[0].1, BenchmarkKind::ChollaMhd);
        assert_eq!(by_sm[1].1, BenchmarkKind::Lammps);
        assert_eq!(by_sm[6].1, BenchmarkKind::AthenaPk);
    }
}
