//! Calibration self-checks: the arithmetic that ties the model to the
//! paper's published numbers, recomputed from first principles.
//!
//! The A100X device's power coefficients (`idle ≈ 75 W`, `a ≈ 1.75 W/%SM`,
//! `b ≈ 1.0 W/%BW`) were fitted to Table II. This module recomputes that
//! fit by least squares over all thirteen anchor rows and exposes the
//! residuals, so the claim "the linear model reproduces Table II" is
//! checked by code, not by prose.

use crate::catalog::all_benchmarks;
use serde::{Deserialize, Serialize};

/// One Table II observation: `(sm%, bw%, watts)`.
pub type Observation = (f64, f64, f64);

/// All Table II observations (13 rows: 7 benchmarks, 6 with two sizes).
pub fn table2_observations() -> Vec<Observation> {
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let mut push = |a: &crate::spec::AnchorProfile| {
            rows.push((
                a.avg_sm_util.value(),
                a.avg_bw_util.value(),
                a.avg_power.watts(),
            ))
        };
        push(&b.anchor_1x);
        if let Some(a4) = &b.anchor_4x {
            push(a4);
        }
    }
    rows
}

/// A fitted linear power model `P = idle + a·SM% + b·BW%`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerFit {
    pub idle_watts: f64,
    pub watts_per_sm_pct: f64,
    pub watts_per_bw_pct: f64,
    /// Root-mean-square residual over the observations, watts.
    pub rms_residual: f64,
}

impl PowerFit {
    pub fn predict(&self, sm_pct: f64, bw_pct: f64) -> f64 {
        self.idle_watts + self.watts_per_sm_pct * sm_pct + self.watts_per_bw_pct * bw_pct
    }
}

/// Ordinary least squares for `P = c0 + c1·sm + c2·bw` via the normal
/// equations (3×3 Gaussian elimination — no linear-algebra dependency).
pub fn fit_power_model(observations: &[Observation]) -> PowerFit {
    assert!(
        observations.len() >= 3,
        "need at least three observations for a 3-parameter fit"
    );
    // Normal equations: AᵀA x = Aᵀy with rows [1, sm, bw].
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for &(sm, bw, p) in observations {
        let row = [1.0, sm, bw];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            aty[i] += row[i] * p;
        }
    }
    let x = solve3(ata, aty);
    let mut sq = 0.0;
    for &(sm, bw, p) in observations {
        let r = p - (x[0] + x[1] * sm + x[2] * bw);
        sq += r * r;
    }
    PowerFit {
        idle_watts: x[0],
        watts_per_sm_pct: x[1],
        watts_per_bw_pct: x[2],
        rms_residual: (sq / observations.len() as f64).sqrt(),
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Panics on a singular system (cannot happen for the normal
/// equations of ≥3 distinct observations).
fn solve3(mut a: [[f64; 3]; 3], mut y: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        a.swap(col, pivot);
        y.swap(col, pivot);
        assert!(a[col][col].abs() > 1e-12, "singular system");
        // Eliminate below.
        for row in col + 1..3 {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (entry, pivot) in a[row][col..3].iter_mut().zip(&pivot_row[col..3]) {
                *entry -= factor * pivot;
            }
            y[row] -= factor * y[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 3];
    for col in (0..3).rev() {
        let mut acc = y[col];
        for k in col + 1..3 {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;

    #[test]
    fn solve3_recovers_known_coefficients() {
        // y = 2 + 3·u + 0.5·v at three points.
        let pts = [
            (0.0, 0.0, 2.0),
            (1.0, 0.0, 5.0),
            (0.0, 2.0, 3.0),
            (1.0, 2.0, 6.0),
        ];
        let fit = fit_power_model(&pts);
        assert!((fit.idle_watts - 2.0).abs() < 1e-9);
        assert!((fit.watts_per_sm_pct - 3.0).abs() < 1e-9);
        assert!((fit.watts_per_bw_pct - 0.5).abs() < 1e-9);
        assert!(fit.rms_residual < 1e-9);
    }

    #[test]
    fn table2_fit_matches_the_device_coefficients() {
        // The least-squares fit over the paper's own Table II should land
        // near the A100X model coefficients the device spec hard-codes.
        let fit = fit_power_model(&table2_observations());
        let d = DeviceSpec::a100x();
        assert!(
            (fit.idle_watts - d.idle_power.watts()).abs() < 15.0,
            "fitted idle {} vs device {}",
            fit.idle_watts,
            d.idle_power.watts()
        );
        assert!(
            (fit.watts_per_sm_pct - d.power_per_sm_pct).abs() < 0.4,
            "fitted a {} vs device {}",
            fit.watts_per_sm_pct,
            d.power_per_sm_pct
        );
        assert!(
            (fit.watts_per_bw_pct - d.power_per_bw_pct).abs() < 1.0,
            "fitted b {} vs device {}",
            fit.watts_per_bw_pct,
            d.power_per_bw_pct
        );
        // The linear model explains Table II to within ~17 W RMS — the
        // remainder is what each benchmark's power_scale absorbs.
        assert!(fit.rms_residual < 18.0, "rms {}", fit.rms_residual);
    }

    #[test]
    fn fit_predicts_the_extremes_sanely() {
        let fit = fit_power_model(&table2_observations());
        // An idle GPU.
        assert!(fit.predict(0.0, 0.0) > 50.0 && fit.predict(0.0, 0.0) < 110.0);
        // Flat out: near (but possibly above) the 300 W cap.
        assert!(fit.predict(100.0, 40.0) > 250.0);
    }

    #[test]
    fn observations_cover_all_thirteen_rows() {
        assert_eq!(table2_observations().len(), 13);
    }
}
