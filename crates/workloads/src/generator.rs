//! Queue generation: seeded, NERSC-flavoured mixes of the seven
//! benchmarks.
//!
//! The paper motivates its scheduler with NERSC workload analysis — many
//! codes, few algorithmic families, wildly varying utilization. This
//! generator produces realistic mixed queues for examples, benches, and
//! stress tests: each workflow draws a benchmark from a weighted
//! population, a problem size, and an iteration count scaled so workflow
//! durations land in a target band.

use crate::catalog::benchmark;
use crate::spec::{BenchmarkKind, ProblemSize};
use crate::workflow::WorkflowSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the queue generator.
#[derive(Debug, Clone)]
pub struct QueueGenerator {
    rng: StdRng,
    /// Sampling weights per benchmark (paper's suite order). Defaults
    /// favour the lighter codes, like a real shared queue.
    pub weights: [f64; 7],
    /// Candidate problem sizes.
    pub sizes: Vec<ProblemSize>,
    /// Target solo duration band for one workflow, seconds.
    pub duration_band: (f64, f64),
}

impl QueueGenerator {
    pub fn new(seed: u64) -> Self {
        QueueGenerator {
            rng: StdRng::seed_from_u64(seed),
            // AthenaPK, Epsilon, Gravity, MHD, Kripke, LAMMPS, WarpX.
            weights: [3.0, 0.3, 2.0, 1.0, 3.0, 1.5, 1.0],
            sizes: vec![ProblemSize::X1, ProblemSize::X2, ProblemSize::X4],
            duration_band: (60.0, 600.0),
        }
    }

    fn sample_kind(&mut self) -> BenchmarkKind {
        let total: f64 = self.weights.iter().sum();
        let mut draw = self.rng.random_range(0.0..total);
        for (kind, w) in BenchmarkKind::ALL.iter().zip(self.weights) {
            if draw < w {
                return *kind;
            }
            draw -= w;
        }
        BenchmarkKind::ALL[6]
    }

    /// Draws one workflow: a benchmark, a size, and enough iterations to
    /// land the solo duration inside the band (at least one).
    pub fn sample_workflow(&mut self) -> WorkflowSpec {
        let kind = self.sample_kind();
        let size = self.sizes[self.rng.random_range(0..self.sizes.len())];
        let task_duration = benchmark(kind).profile_at(size).duration().value();
        let target = self
            .rng
            .random_range(self.duration_band.0..=self.duration_band.1);
        let iterations = ((target / task_duration).round() as usize).max(1);
        WorkflowSpec::uniform(kind, size, iterations)
    }

    /// Draws a queue of `n` workflows.
    pub fn sample_queue(&mut self, n: usize) -> Vec<WorkflowSpec> {
        (0..n).map(|_| self.sample_workflow()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = QueueGenerator::new(11).sample_queue(10);
        let b = QueueGenerator::new(11).sample_queue(10);
        assert_eq!(a, b);
        let c = QueueGenerator::new(12).sample_queue(10);
        assert_ne!(a, c);
    }

    #[test]
    fn workflow_durations_land_near_the_band() {
        use crate::workflow::TaskSource;
        let mut generator = QueueGenerator::new(7);
        for w in generator.sample_queue(30) {
            let entry = &w.entries[0];
            let TaskSource::Benchmark { kind, size } = entry.source else {
                panic!("generator only draws benchmarks");
            };
            let task = benchmark(kind).profile_at(size).duration().value();
            let total = task * entry.iterations as f64;
            // One task can overshoot the band (iterations >= 1), but the
            // total should never exceed band-top + one task.
            assert!(total <= 600.0 + task + 1e-6, "{}: {total}", w.label());
            assert!(entry.iterations >= 1);
        }
    }

    #[test]
    fn population_is_diverse() {
        let mut generator = QueueGenerator::new(3);
        let kinds: BTreeSet<BenchmarkKind> = generator
            .sample_queue(60)
            .iter()
            .map(|w| match w.entries[0].source {
                crate::workflow::TaskSource::Benchmark { kind, .. } => kind,
                _ => unreachable!("generator only draws benchmarks"),
            })
            .collect();
        assert!(kinds.len() >= 5, "only {} kinds drawn", kinds.len());
    }

    #[test]
    fn generated_queues_are_materializable() {
        use mpshare_gpusim::DeviceSpec;
        use mpshare_types::IdAllocator;
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let mut generator = QueueGenerator::new(99);
        for w in generator.sample_queue(10) {
            w.to_client_program(&device, &mut ids).unwrap();
        }
    }
}
