//! Benchmark specifications: identity, anchors, and scaling laws.
//!
//! Each benchmark carries *anchor profiles* at the paper's measured
//! problem sizes (1× always, 4× where Table II reports one) and derives
//! profiles at other sizes (2×, 8×, …) by fitting power laws between the
//! anchors — the paper's §IV-A observation that "scaling is well-understood
//! for a vast majority of HPC codes" and larger sizes can be inferred from
//! smaller profiles.

use mpshare_types::{Energy, MemBytes, Percent, Power, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven benchmarks of the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BenchmarkKind {
    /// Astrophysical fluid dynamics (Athena++ solvers on Parthenon/Kokkos).
    AthenaPk,
    /// BerkeleyGW Epsilon module: dielectric-function computation.
    BerkeleyGwEpsilon,
    /// Cholla gravitational-collapse test problem.
    ChollaGravity,
    /// Cholla magnetohydrodynamics (advecting field loop).
    ChollaMhd,
    /// LLNL neutral-particle-transport proxy app.
    Kripke,
    /// Molecular dynamics (the ParSplice workhorse).
    Lammps,
    /// Electromagnetic particle-in-cell (PWFA test problem).
    WarpX,
}

impl BenchmarkKind {
    pub const ALL: [BenchmarkKind; 7] = [
        BenchmarkKind::AthenaPk,
        BenchmarkKind::BerkeleyGwEpsilon,
        BenchmarkKind::ChollaGravity,
        BenchmarkKind::ChollaMhd,
        BenchmarkKind::Kripke,
        BenchmarkKind::Lammps,
        BenchmarkKind::WarpX,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkKind::AthenaPk => "AthenaPK",
            BenchmarkKind::BerkeleyGwEpsilon => "BerkeleyGW-Epsilon",
            BenchmarkKind::ChollaGravity => "Cholla-Gravity",
            BenchmarkKind::ChollaMhd => "Cholla-MHD",
            BenchmarkKind::Kripke => "Kripke",
            BenchmarkKind::Lammps => "LAMMPS",
            BenchmarkKind::WarpX => "WarpX",
        }
    }
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A problem-size multiplier (the paper's 1x/2x/4x/8x notation).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProblemSize(f64);

impl ProblemSize {
    pub const X1: ProblemSize = ProblemSize(1.0);
    pub const X2: ProblemSize = ProblemSize(2.0);
    pub const X4: ProblemSize = ProblemSize(4.0);
    pub const X8: ProblemSize = ProblemSize(8.0);

    #[track_caller]
    pub fn new(factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "problem size factor must be ≥ 1, got {factor}"
        );
        ProblemSize(factor)
    }

    pub fn factor(self) -> f64 {
        self.0
    }
}

impl fmt::Display for ProblemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.0 - self.0.round()).abs() < 1e-9 {
            write!(f, "{}x", self.0.round() as i64)
        } else {
            write!(f, "{:.2}x", self.0)
        }
    }
}

/// One row of the paper's Table II: a solo utilization/power profile at a
/// fixed problem size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnchorProfile {
    pub size: ProblemSize,
    /// Maximum resident device memory.
    pub max_memory: MemBytes,
    /// Average memory-bandwidth utilization over the whole task.
    pub avg_bw_util: Percent,
    /// Average SM utilization over the whole task.
    pub avg_sm_util: Percent,
    /// Average board power over the whole task.
    pub avg_power: Power,
    /// Total GPU energy of one task.
    pub energy: Energy,
    /// Fraction of wall-clock time with kernels resident (GPU busy). Not in
    /// Table II directly; chosen per benchmark from the workload's
    /// character (bursty AMR vs. streaming stencil) and exposed so the
    /// calibration tests can check the decomposition stays consistent.
    pub duty_cycle: f64,
}

impl AnchorProfile {
    /// Task wall-clock duration implied by the anchor: energy / power.
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.energy.joules() / self.avg_power.watts())
    }

    /// SM utilization *while kernels run* (the average divided by the duty
    /// cycle), capped at 100 %.
    pub fn active_sm_util(&self) -> f64 {
        (self.avg_sm_util.value() / 100.0 / self.duty_cycle).min(1.0)
    }

    /// Bandwidth utilization while kernels run.
    pub fn active_bw_util(&self) -> f64 {
        (self.avg_bw_util.value() / 100.0 / self.duty_cycle).min(1.0)
    }
}

/// One row of the paper's Table I: occupancy targets at 1×.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyTargets {
    pub achieved: Percent,
    pub theoretical: Percent,
}

impl OccupancyTargets {
    /// "% of theoretical achieved" — the paper's third column.
    pub fn achieved_ratio(&self) -> f64 {
        self.achieved.value() / self.theoretical.value()
    }
}

/// Power-law interpolation between two anchor points `(x1, y1)`, `(x2, y2)`
/// evaluated at `x`: `y = y1 · (x/x1)^β` with `β = ln(y2/y1)/ln(x2/x1)`.
/// Falls back to a constant when either anchor value is ~zero.
pub fn power_law(x1: f64, y1: f64, x2: f64, y2: f64, x: f64) -> f64 {
    if y1 <= 1e-12 || y2 <= 1e-12 || (x2 - x1).abs() < 1e-12 {
        // Degenerate anchors: interpolate linearly instead.
        if (x2 - x1).abs() < 1e-12 {
            return y1;
        }
        return y1 + (y2 - y1) * (x - x1) / (x2 - x1);
    }
    let beta = (y2 / y1).ln() / (x2 / x1).ln();
    y1 * (x / x1).powf(beta)
}

/// Linear interpolation in `ln(x)` between two anchors — used for bounded
/// quantities like duty cycles and power scales where a power law would
/// extrapolate wildly.
pub fn log_lerp(x1: f64, y1: f64, x2: f64, y2: f64, x: f64) -> f64 {
    if (x2 - x1).abs() < 1e-12 {
        return y1;
    }
    let t = (x.ln() - x1.ln()) / (x2.ln() - x1.ln());
    y1 + (y2 - y1) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_names_match_paper() {
        assert_eq!(BenchmarkKind::AthenaPk.name(), "AthenaPK");
        assert_eq!(
            BenchmarkKind::BerkeleyGwEpsilon.to_string(),
            "BerkeleyGW-Epsilon"
        );
        assert_eq!(BenchmarkKind::ALL.len(), 7);
    }

    #[test]
    fn problem_size_displays_like_paper_notation() {
        assert_eq!(ProblemSize::X1.to_string(), "1x");
        assert_eq!(ProblemSize::X4.to_string(), "4x");
        assert_eq!(ProblemSize::new(2.5).to_string(), "2.50x");
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn problem_size_rejects_sub_unity() {
        let _ = ProblemSize::new(0.5);
    }

    #[test]
    fn anchor_duration_is_energy_over_power() {
        let a = AnchorProfile {
            size: ProblemSize::X1,
            max_memory: MemBytes::from_mib(100),
            avg_bw_util: Percent::new(2.0),
            avg_sm_util: Percent::new(20.0),
            avg_power: Power::from_watts(100.0),
            energy: Energy::from_joules(500.0),
            duty_cycle: 0.5,
        };
        assert_eq!(a.duration().value(), 5.0);
        assert!((a.active_sm_util() - 0.4).abs() < 1e-12);
        assert!((a.active_bw_util() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn active_utils_cap_at_one() {
        let a = AnchorProfile {
            size: ProblemSize::X1,
            max_memory: MemBytes::ZERO,
            avg_bw_util: Percent::new(90.0),
            avg_sm_util: Percent::new(95.0),
            avg_power: Power::from_watts(100.0),
            energy: Energy::from_joules(100.0),
            duty_cycle: 0.9,
        };
        assert_eq!(a.active_sm_util(), 1.0);
    }

    #[test]
    fn occupancy_ratio_matches_paper_column() {
        let t = OccupancyTargets {
            achieved: Percent::new(23.97),
            theoretical: Percent::new(41.67),
        };
        assert!((t.achieved_ratio() - 0.5752).abs() < 1e-3);
    }

    #[test]
    fn power_law_hits_both_anchors() {
        let f = |x| power_law(1.0, 10.0, 4.0, 40.0, x);
        assert!((f(1.0) - 10.0).abs() < 1e-9);
        assert!((f(4.0) - 40.0).abs() < 1e-9);
        assert!((f(2.0) - 20.0).abs() < 1e-9); // linear case β = 1
    }

    #[test]
    fn power_law_superlinear_growth() {
        // y ∝ x²: anchors (1, 1), (4, 16).
        let f = |x| power_law(1.0, 1.0, 4.0, 16.0, x);
        assert!((f(2.0) - 4.0).abs() < 1e-9);
        assert!((f(8.0) - 64.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_degenerates_safely() {
        assert_eq!(power_law(1.0, 0.0, 4.0, 8.0, 2.0), 0.0 + 8.0 * (1.0 / 3.0));
        assert_eq!(power_law(1.0, 5.0, 1.0, 9.0, 3.0), 5.0);
    }

    #[test]
    fn log_lerp_hits_anchors_and_midpoint() {
        let f = |x| log_lerp(1.0, 0.4, 4.0, 0.8, x);
        assert!((f(1.0) - 0.4).abs() < 1e-12);
        assert!((f(4.0) - 0.8).abs() < 1e-12);
        assert!((f(2.0) - 0.6).abs() < 1e-12); // ln-midpoint of 1 and 4
    }
}
