//! Task construction: turns a benchmark model + problem size into a
//! concrete [`TaskProgram`] for the simulator.
//!
//! The construction inverts the profiling arithmetic: given the Table II
//! anchor (average SM/BW utilization, power, energy, duty cycle) the
//! builder emits a kernel sequence whose *solo profile on the simulator*
//! reproduces the anchor:
//!
//! * wall time `T = energy / power`;
//! * GPU-busy time `duty · (T − setup)`, split across `n` kernels;
//! * each kernel's SM/BW demand is the anchor average divided by the duty
//!   cycle (burst utilization);
//! * a host gap proportional to each kernel's duration keeps the duty
//!   cycle constant throughout the task;
//! * the per-benchmark `power_scale` closes the gap between the device's
//!   global linear power model and the benchmark's measured average power;
//! * the kernel mix (a partition-saturating "main" kernel and a dense
//!   "fill" kernel) lands the duration-weighted occupancy on Table I.

use crate::catalog::Benchmark;
use crate::spec::ProblemSize;
use mpshare_gpusim::{occupancy, DeviceSpec, KernelSpec, LaunchConfig, TaskProgram};
use mpshare_types::{Fraction, Result, Seconds, TaskId};

/// Target solo duration of one model kernel, seconds. Tasks are split into
/// enough kernels to approach this, bounded below/above to keep event
/// counts reasonable.
const TARGET_KERNEL_SECONDS: f64 = 0.5;
const MIN_KERNELS: usize = 8;
const MAX_KERNELS: usize = 400;

/// Host-side setup fraction of a task's wall time (input reading, MPI
/// wire-up, H2D transfers).
const SETUP_FRACTION: f64 = 0.01;

/// Builds the task program for `benchmark` at `size`.
pub fn build_task(
    device: &DeviceSpec,
    benchmark: &Benchmark,
    size: ProblemSize,
    id: TaskId,
) -> Result<TaskProgram> {
    let profile = benchmark.profile_at(size);
    let wall = profile.duration().value();
    let setup = wall * SETUP_FRACTION;
    let busy = profile.duty_cycle * (wall - setup);
    let gap_total = (1.0 - profile.duty_cycle) * (wall - setup);

    let u_active = profile.active_sm_util();
    let bw_active = profile.active_bw_util();
    let power_scale = fit_power_scale(device, &profile);

    // Launch geometries. The main grid scales with problem size (larger
    // problems fill more of the device per wave -> more linear partition
    // response, as the paper's Fig. 1c observes); the fill grid stays an
    // exact multiple of the wave capacity.
    let scale = size.factor();
    let main_launch = LaunchConfig {
        grid_blocks: ((benchmark.main_grid_1x as f64 * scale).round() as u32).max(1),
        threads_per_block: benchmark.threads_per_block,
        regs_per_thread: benchmark.regs_per_thread,
        shared_mem_per_block: 0,
        issue_efficiency: Fraction::ONE, // placeholder; set below
    };
    let fill_launch = LaunchConfig {
        grid_blocks: benchmark.fill_grid_1x * (scale.round().max(1.0) as u32),
        ..main_launch
    };

    let issue = fit_issue_efficiency(device, benchmark);
    let main_launch = main_launch.with_issue_efficiency(issue);
    let fill_launch = fill_launch.with_issue_efficiency(issue);

    // Kernel counts and durations: `main_weight` of the busy time in main
    // kernels, the rest in fill kernels.
    let n = ((busy / TARGET_KERNEL_SECONDS).round() as usize).clamp(MIN_KERNELS, MAX_KERNELS);
    let n_main = ((benchmark.main_weight * n as f64).round() as usize).clamp(1, n - 1);
    let n_fill = n - n_main;
    let d_main = benchmark.main_weight * busy / n_main as f64;
    let d_fill = (1.0 - benchmark.main_weight) * busy / n_fill as f64;
    let gap_per_busy = gap_total / busy;

    let make_kernel = |launch: LaunchConfig, dur: f64| KernelSpec {
        launch,
        solo_duration: Seconds::new(dur),
        sm_demand: Fraction::clamped(u_active),
        bw_demand: Fraction::clamped(bw_active),
        cache_sensitivity: benchmark.cache_sensitivity,
        client_sensitivity: benchmark.client_sensitivity,
        power_scale,
        reference_sms: device.num_sms,
        reference_bandwidth: device.memory_bandwidth_bytes_per_sec,
        host_gap: Seconds::new(dur * gap_per_busy),
    };

    // Extrapolated footprints cap at what the device can actually hold
    // (the real code would shard or page; the model keeps one resident
    // allocation).
    let memory = profile.max_memory.min(device.memory_capacity.scale(0.95));
    let mut task = TaskProgram::new(id, format!("{} {}", benchmark.kind, size), memory)
        .with_setup(Seconds::new(setup));

    // Interleave fill kernels evenly among main kernels so bursts are
    // homogeneous over the task's lifetime.
    let stride = n as f64 / n_fill as f64;
    let mut next_fill = stride / 2.0;
    let mut placed_fill = 0usize;
    for slot in 0..n {
        if placed_fill < n_fill && (slot as f64) >= next_fill {
            task.push_kernel(make_kernel(fill_launch, d_fill));
            placed_fill += 1;
            next_fill += stride;
        } else {
            task.push_kernel(make_kernel(main_launch, d_main));
        }
    }
    // Any stragglers (rounding) go at the end.
    for _ in placed_fill..n_fill {
        task.push_kernel(make_kernel(fill_launch, d_fill));
    }

    task.validate(device)?;
    Ok(task)
}

/// Fits the per-benchmark dynamic-power multiplier so the simulator's
/// average power over the task equals the anchor's measured average.
fn fit_power_scale(device: &DeviceSpec, profile: &crate::spec::AnchorProfile) -> f64 {
    let dyn_model = device.power_per_sm_pct * profile.avg_sm_util.value()
        + device.power_per_bw_pct * profile.avg_bw_util.value();
    if dyn_model < 1e-6 {
        return 1.0;
    }
    let measured_dyn = (profile.avg_power.watts() - device.idle_power.watts()).max(0.0);
    (measured_dyn / dyn_model).clamp(0.05, 3.0)
}

/// Fits the issue efficiency so the duration-weighted achieved occupancy of
/// the 1× kernel mix equals the Table I target.
fn fit_issue_efficiency(device: &DeviceSpec, benchmark: &Benchmark) -> Fraction {
    let base = |grid: u32| LaunchConfig {
        grid_blocks: grid,
        threads_per_block: benchmark.threads_per_block,
        regs_per_thread: benchmark.regs_per_thread,
        shared_mem_per_block: 0,
        issue_efficiency: Fraction::ONE,
    };
    let grid_eff = |grid: u32| {
        let rep = occupancy::report(device, &base(grid));
        if rep.theoretical.value() <= 0.0 {
            0.0
        } else {
            rep.achieved.value() / rep.theoretical.value()
        }
    };
    let eff_main = grid_eff(benchmark.main_grid_1x);
    let eff_fill = grid_eff(benchmark.fill_grid_1x);
    let w = benchmark.main_weight;
    let mix_eff = w * eff_main + (1.0 - w) * eff_fill;
    let target = benchmark.occupancy.achieved_ratio();
    Fraction::clamped((target / mix_eff.max(1e-9)).clamp(0.05, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{all_benchmarks, benchmark};
    use crate::spec::BenchmarkKind;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn every_benchmark_builds_valid_tasks_at_all_sizes() {
        let d = dev();
        for b in all_benchmarks() {
            for size in [ProblemSize::X1, ProblemSize::X2, ProblemSize::X4] {
                let t = build_task(&d, &b, size, TaskId::new(0))
                    .unwrap_or_else(|e| panic!("{} {size}: {e}", b.kind));
                assert!(!t.kernels.is_empty());
                assert!(t.memory <= d.memory_capacity);
            }
        }
    }

    #[test]
    fn task_wall_time_matches_anchor_duration() {
        let d = dev();
        for b in all_benchmarks() {
            let profile = b.profile_at(ProblemSize::X1);
            let t = build_task(&d, &b, ProblemSize::X1, TaskId::new(0)).unwrap();
            let expected = profile.duration().value();
            let got = t.solo_wall_time().value();
            assert!(
                (got - expected).abs() / expected < 0.01,
                "{}: wall {got} vs anchor {expected}",
                b.kind
            );
        }
    }

    #[test]
    fn busy_fraction_matches_duty_cycle() {
        let d = dev();
        let b = benchmark(BenchmarkKind::Kripke);
        let t = build_task(&d, &b, ProblemSize::X1, TaskId::new(0)).unwrap();
        let busy = t.solo_busy_time().value();
        let wall = t.solo_wall_time().value();
        let duty = busy / wall;
        assert!(
            (duty - b.anchor_1x.duty_cycle).abs() < 0.02,
            "duty {duty} vs {}",
            b.anchor_1x.duty_cycle
        );
    }

    #[test]
    fn kernel_demands_equal_burst_utilization() {
        let d = dev();
        let b = benchmark(BenchmarkKind::Lammps);
        let t = build_task(&d, &b, ProblemSize::X4, TaskId::new(0)).unwrap();
        let expected = b.anchor_4x.unwrap().active_sm_util();
        for k in &t.kernels {
            assert!((k.sm_demand.value() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn occupancy_mix_lands_on_table1_targets() {
        let d = dev();
        for b in all_benchmarks() {
            let t = build_task(&d, &b, ProblemSize::X1, TaskId::new(0)).unwrap();
            // Duration-weighted achieved and theoretical occupancy.
            let mut ach = 0.0;
            let mut theo = 0.0;
            let mut total = 0.0;
            for k in &t.kernels {
                let rep = occupancy::report(&d, &k.launch);
                let w = k.solo_duration.value();
                ach += rep.achieved.value() * w;
                theo += rep.theoretical.value() * w;
                total += w;
            }
            ach /= total;
            theo /= total;
            let t_theo = b.occupancy.theoretical.value();
            let t_ach = b.occupancy.achieved.value();
            assert!(
                (theo - t_theo).abs() / t_theo < 0.03,
                "{}: theoretical {theo:.2} vs paper {t_theo:.2}",
                b.kind
            );
            assert!(
                (ach - t_ach).abs() / t_ach < 0.10,
                "{}: achieved {ach:.2} vs paper {t_ach:.2}",
                b.kind
            );
        }
    }

    #[test]
    fn main_kernel_saturates_fill_kernel_scales() {
        let d = dev();
        let b = benchmark(BenchmarkKind::BerkeleyGwEpsilon);
        let t = build_task(&d, &b, ProblemSize::X1, TaskId::new(0)).unwrap();
        let main = t
            .kernels
            .iter()
            .find(|k| k.launch.grid_blocks == b.main_grid_1x)
            .expect("main kernel present");
        // Epsilon's main kernel saturates near a 45-SM partition.
        assert_eq!(main.speed_at_sms(&d, 108), 1.0);
        assert_eq!(main.speed_at_sms(&d, 54), 1.0);
        assert!(main.speed_at_sms(&d, 22) < 1.0);
    }

    #[test]
    fn larger_problems_have_more_linear_main_kernels() {
        // Fig. 1c: WarpX 4x responds to partition almost linearly while 1x
        // saturates.
        let d = dev();
        let b = benchmark(BenchmarkKind::WarpX);
        let t1 = build_task(&d, &b, ProblemSize::X1, TaskId::new(0)).unwrap();
        let t4 = build_task(&d, &b, ProblemSize::X4, TaskId::new(1)).unwrap();
        // Compare the dominant (main) kernels: smallest grid in each mix.
        let main_speed_at_half = |t: &TaskProgram| {
            let k = t
                .kernels
                .iter()
                .min_by_key(|k| k.launch.grid_blocks)
                .unwrap();
            k.speed_at_sms(&d, 54)
        };
        // 1x main kernel still runs at full speed on half the device...
        assert_eq!(main_speed_at_half(&t1), 1.0);
        // ...while the 4x main kernel has already slowed.
        assert!(main_speed_at_half(&t4) < 0.8);
    }

    #[test]
    fn power_scale_reproduces_anchor_power() {
        let d = dev();
        for b in all_benchmarks() {
            let p = b.profile_at(ProblemSize::X1);
            let scale = fit_power_scale(&d, &p);
            let dyn_model = d.power_per_sm_pct * p.avg_sm_util.value()
                + d.power_per_bw_pct * p.avg_bw_util.value();
            let predicted = d.idle_power.watts() + scale * dyn_model;
            assert!(
                (predicted - p.avg_power.watts()).abs() < 1.0,
                "{}: predicted {predicted} vs anchor {}",
                b.kind,
                p.avg_power.watts()
            );
        }
    }

    #[test]
    fn kernel_count_respects_bounds() {
        let d = dev();
        // Short task (AthenaPK 1x ~2.6 s) -> MIN_KERNELS.
        let a = benchmark(BenchmarkKind::AthenaPk);
        let t = build_task(&d, &a, ProblemSize::X1, TaskId::new(0)).unwrap();
        assert_eq!(t.kernels.len(), MIN_KERNELS);
        // Long task (Epsilon ~3384 s) -> MAX_KERNELS.
        let e = benchmark(BenchmarkKind::BerkeleyGwEpsilon);
        let t = build_task(&d, &e, ProblemSize::X1, TaskId::new(1)).unwrap();
        assert_eq!(t.kernels.len(), MAX_KERNELS);
    }
}
