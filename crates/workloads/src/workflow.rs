//! Workflows and the paper's Table III combinations.
//!
//! A workflow is an ordered list of tasks (benchmark runs) with data
//! dependencies between consecutive tasks — the unit the scheduler
//! co-schedules. The paper evaluates ten specific combinations of two to
//! four workflows (Table III); [`table3_combinations`] reproduces them
//! verbatim.

use crate::builder::build_task;
use crate::catalog::benchmark;
use crate::spec::{BenchmarkKind, ProblemSize};
use crate::synthetic::SyntheticSpec;
use mpshare_gpusim::{ClientProgram, DeviceSpec, TaskProgram};
use mpshare_types::{IdAllocator, Result, TaskId};
use serde::{Deserialize, Serialize};

/// What a workflow task actually runs: one of the paper's seven calibrated
/// benchmarks, or a user-supplied analytic workload (so downstream users
/// can schedule *their* codes through the same pipeline after profiling
/// them with [`SyntheticSpec`] parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskSource {
    /// One of the calibrated paper benchmarks at a problem size.
    Benchmark {
        kind: BenchmarkKind,
        size: ProblemSize,
    },
    /// A user-defined analytic workload.
    Custom { name: String, spec: SyntheticSpec },
}

impl TaskSource {
    /// Builds one task instance.
    pub fn build(&self, device: &DeviceSpec, id: TaskId) -> Result<TaskProgram> {
        match self {
            TaskSource::Benchmark { kind, size } => {
                build_task(device, &benchmark(*kind), *size, id)
            }
            TaskSource::Custom { name, spec } => {
                let mut task = spec.to_task(device, id)?;
                task.label = name.clone();
                Ok(task)
            }
        }
    }

    /// Display label, e.g. `"Kripke 4x"` or `"my-cfd-solver"`.
    pub fn label(&self) -> String {
        match self {
            TaskSource::Benchmark { kind, size } => format!("{kind} {size}"),
            TaskSource::Custom { name, .. } => name.clone(),
        }
    }
}

/// One entry of a workflow: a task source repeated `iterations` times as
/// sequential tasks.
///
/// JSON forms (both accepted; the flat ones are emitted):
/// `{"kind": "Kripke", "size": 2.0, "iterations": 10}` for benchmarks,
/// `{"name": "my-solver", "spec": {…}, "iterations": 3}` for custom
/// workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "TaskOnDisk", into = "TaskOnDisk")]
pub struct WorkflowTask {
    pub source: TaskSource,
    pub iterations: usize,
}

/// Serialization surrogate keeping the queue-spec JSON flat and stable.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
enum TaskOnDisk {
    Benchmark {
        kind: BenchmarkKind,
        size: ProblemSize,
        iterations: usize,
    },
    Custom {
        name: String,
        spec: SyntheticSpec,
        iterations: usize,
    },
}

impl From<TaskOnDisk> for WorkflowTask {
    fn from(disk: TaskOnDisk) -> Self {
        match disk {
            TaskOnDisk::Benchmark {
                kind,
                size,
                iterations,
            } => WorkflowTask::new(kind, size, iterations),
            TaskOnDisk::Custom {
                name,
                spec,
                iterations,
            } => WorkflowTask::custom(name, spec, iterations),
        }
    }
}

impl From<WorkflowTask> for TaskOnDisk {
    fn from(task: WorkflowTask) -> Self {
        match task.source {
            TaskSource::Benchmark { kind, size } => TaskOnDisk::Benchmark {
                kind,
                size,
                iterations: task.iterations,
            },
            TaskSource::Custom { name, spec } => TaskOnDisk::Custom {
                name,
                spec,
                iterations: task.iterations,
            },
        }
    }
}

impl WorkflowTask {
    /// A calibrated-benchmark entry.
    pub fn new(kind: BenchmarkKind, size: ProblemSize, iterations: usize) -> Self {
        WorkflowTask {
            source: TaskSource::Benchmark { kind, size },
            iterations,
        }
    }

    /// A user-defined workload entry.
    pub fn custom(name: impl Into<String>, spec: SyntheticSpec, iterations: usize) -> Self {
        WorkflowTask {
            source: TaskSource::Custom {
                name: name.into(),
                spec,
            },
            iterations,
        }
    }
}

/// A workflow specification: the tasks one client process executes in
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    pub entries: Vec<WorkflowTask>,
}

impl WorkflowSpec {
    pub fn new(entries: Vec<WorkflowTask>) -> Self {
        WorkflowSpec { entries }
    }

    /// Validates a deserialized workflow before it reaches the profiler
    /// or the engine. `#[serde(transparent)]` problem sizes and plain
    /// floats bypass the constructors' range asserts at parse time, so a
    /// queue loader calls this to reject zero/negative sizes, zero
    /// iteration counts, and non-finite values with an error naming the
    /// offending field. `ctx` prefixes the error, e.g. `"workflows[2]"`.
    pub fn validate_fields(&self, ctx: &str) -> Result<()> {
        if self.entries.is_empty() {
            return Err(mpshare_types::Error::InvalidConfig(format!(
                "{ctx}: entries must not be empty"
            )));
        }
        for (i, entry) in self.entries.iter().enumerate() {
            let ectx = format!("{ctx}.entries[{i}]");
            if entry.iterations == 0 {
                return Err(mpshare_types::Error::InvalidConfig(format!(
                    "{ectx}: iterations must be at least 1"
                )));
            }
            match &entry.source {
                TaskSource::Benchmark { size, .. } => {
                    let factor = size.factor();
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(mpshare_types::Error::InvalidConfig(format!(
                            "{ectx}: size must be a finite factor ≥ 1, got {factor}"
                        )));
                    }
                }
                TaskSource::Custom { name, spec } => {
                    if name.is_empty() {
                        return Err(mpshare_types::Error::InvalidConfig(format!(
                            "{ectx}: name must not be empty"
                        )));
                    }
                    spec.validate_fields(&ectx)?;
                }
            }
        }
        Ok(())
    }

    /// A workflow of `iterations` runs of a single benchmark.
    pub fn uniform(kind: BenchmarkKind, size: ProblemSize, iterations: usize) -> Self {
        WorkflowSpec::new(vec![WorkflowTask::new(kind, size, iterations)])
    }

    /// Total number of tasks in the workflow.
    pub fn task_count(&self) -> usize {
        self.entries.iter().map(|e| e.iterations).sum()
    }

    /// Human-readable label, e.g. `"Kripke 4x ×11 + WarpX 2x ×8"`.
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{} ×{}", e.source.label(), e.iterations))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Materializes the workflow as a client program for the simulator.
    pub fn to_client_program(
        &self,
        device: &DeviceSpec,
        ids: &mut IdAllocator,
    ) -> Result<ClientProgram> {
        let mut program = ClientProgram::new(self.label());
        for entry in &self.entries {
            for _ in 0..entry.iterations {
                program.push_task(entry.source.build(device, ids.next_task())?);
            }
        }
        Ok(program)
    }
}

/// One of the paper's Table III workflow combinations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Combination {
    /// The paper's combination number (1–10).
    pub number: usize,
    pub workflows: Vec<WorkflowSpec>,
}

impl Combination {
    /// Materializes all workflows as client programs.
    pub fn to_client_programs(
        &self,
        device: &DeviceSpec,
        ids: &mut IdAllocator,
    ) -> Result<Vec<ClientProgram>> {
        self.workflows
            .iter()
            .map(|w| w.to_client_program(device, ids))
            .collect()
    }

    /// Total tasks across all workflows.
    pub fn task_count(&self) -> usize {
        self.workflows.iter().map(|w| w.task_count()).sum()
    }
}

/// The paper's Table III, verbatim: ten combinations of workflows.
///
/// ```
/// use mpshare_workloads::table3_combinations;
///
/// let combos = table3_combinations();
/// assert_eq!(combos.len(), 10);
/// // Combination 8 is the 700-task AthenaPK/Cholla-Gravity quartet.
/// assert_eq!(combos[7].workflows.len(), 4);
/// assert_eq!(combos[7].task_count(), 700);
/// ```
pub fn table3_combinations() -> Vec<Combination> {
    use BenchmarkKind::*;
    use ProblemSize as S;
    let wf = WorkflowSpec::uniform;
    vec![
        Combination {
            number: 1,
            workflows: vec![wf(AthenaPk, S::X4, 5), wf(Lammps, S::X4, 3)],
        },
        Combination {
            number: 2,
            workflows: vec![
                wf(BerkeleyGwEpsilon, S::X1, 1),
                wf(AthenaPk, S::X8, 1),
                wf(AthenaPk, S::X4, 14),
            ],
        },
        Combination {
            number: 3,
            workflows: vec![wf(Kripke, S::X4, 11), wf(WarpX, S::X2, 8)],
        },
        Combination {
            number: 4,
            workflows: vec![wf(Kripke, S::X4, 13), wf(WarpX, S::X4, 2)],
        },
        Combination {
            number: 5,
            workflows: vec![wf(BerkeleyGwEpsilon, S::X1, 1), wf(ChollaMhd, S::X4, 2)],
        },
        Combination {
            number: 6,
            workflows: vec![wf(ChollaGravity, S::X4, 4), wf(Kripke, S::X2, 48)],
        },
        Combination {
            number: 7,
            workflows: vec![wf(ChollaMhd, S::X4, 2), wf(Lammps, S::X4, 8)],
        },
        Combination {
            number: 8,
            workflows: vec![
                wf(AthenaPk, S::X1, 300),
                wf(ChollaGravity, S::X1, 50),
                wf(AthenaPk, S::X1, 300),
                wf(ChollaGravity, S::X1, 50),
            ],
        },
        Combination {
            number: 9,
            workflows: vec![wf(AthenaPk, S::X1, 300), wf(ChollaGravity, S::X1, 50)],
        },
        Combination {
            number: 10,
            workflows: vec![
                wf(ChollaMhd, S::X4, 1),
                wf(Lammps, S::X4, 4),
                wf(ChollaMhd, S::X4, 1),
                wf(Lammps, S::X4, 4),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;

    #[test]
    fn table3_has_ten_combinations_with_paper_shapes() {
        let combos = table3_combinations();
        assert_eq!(combos.len(), 10);
        assert_eq!(combos[0].workflows.len(), 2);
        assert_eq!(combos[1].workflows.len(), 3);
        assert_eq!(combos[7].workflows.len(), 4);
        assert_eq!(combos[9].workflows.len(), 4);
        // Combination numbers are 1..=10 in order.
        for (i, c) in combos.iter().enumerate() {
            assert_eq!(c.number, i + 1);
        }
    }

    #[test]
    fn task_counts_match_iteration_sums() {
        let combos = table3_combinations();
        assert_eq!(combos[0].task_count(), 5 + 3);
        assert_eq!(combos[1].task_count(), 1 + 1 + 14);
        assert_eq!(combos[8].task_count(), 350);
        assert_eq!(combos[7].task_count(), 700);
    }

    #[test]
    fn workflow_label_is_descriptive() {
        let w = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 11);
        assert_eq!(w.label(), "Kripke 4x ×11");
        let combo = &table3_combinations()[1];
        assert!(combo.workflows[0].label().contains("BerkeleyGW-Epsilon"));
    }

    #[test]
    fn to_client_program_materializes_all_tasks() {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let w = WorkflowSpec::new(vec![
            WorkflowTask::new(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
            WorkflowTask::new(BenchmarkKind::Kripke, ProblemSize::X1, 3),
        ]);
        let p = w.to_client_program(&device, &mut ids).unwrap();
        assert_eq!(p.task_count(), 5);
        assert!(p.tasks[0].label.contains("AthenaPK"));
        assert!(p.tasks[4].label.contains("Kripke"));
        // Task ids are unique.
        let mut ids_seen: Vec<u64> = p.tasks.iter().map(|t| t.id.raw()).collect();
        ids_seen.dedup();
        assert_eq!(ids_seen.len(), 5);
    }

    #[test]
    fn workflow_task_json_stays_flat_and_accepts_both_kinds() {
        // Benchmark entries keep the original flat JSON shape.
        let w: WorkflowTask =
            serde_json::from_str(r#"{"kind": "Kripke", "size": 2.0, "iterations": 10}"#).unwrap();
        assert_eq!(
            w,
            WorkflowTask::new(BenchmarkKind::Kripke, ProblemSize::X2, 10)
        );
        let json = serde_json::to_string(&w).unwrap();
        assert!(json.contains("\"kind\""), "{json}");
        let back: WorkflowTask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);

        // Custom entries round-trip too.
        use crate::synthetic::SyntheticSpec;
        let c = WorkflowTask::custom("my-solver", SyntheticSpec::light(), 3);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("my-solver"));
        let back: WorkflowTask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn custom_sources_build_through_the_same_pipeline() {
        use crate::synthetic::SyntheticSpec;
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let w = WorkflowSpec::new(vec![
            WorkflowTask::custom("my-cfd-solver", SyntheticSpec::light(), 2),
            WorkflowTask::new(BenchmarkKind::Kripke, ProblemSize::X1, 1),
        ]);
        assert_eq!(w.label(), "my-cfd-solver ×2 + Kripke 1x ×1");
        let p = w.to_client_program(&device, &mut ids).unwrap();
        assert_eq!(p.task_count(), 3);
        assert_eq!(p.tasks[0].label, "my-cfd-solver");
        assert!(p.tasks[2].label.contains("Kripke"));
    }

    #[test]
    fn combination_programs_have_one_client_per_workflow() {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let combo = &table3_combinations()[0];
        let programs = combo.to_client_programs(&device, &mut ids).unwrap();
        assert_eq!(programs.len(), 2);
        assert_eq!(programs[0].task_count(), 5);
        assert_eq!(programs[1].task_count(), 3);
    }
}
