//! **WarpX** — electromagnetic/electrostatic particle-in-cell code for
//! advanced particle-accelerator design; test problem: a beam-driven
//! plasma-wakefield accelerator stage.
//!
//! Two signatures make it special in the suite: a 60 GiB memory footprint
//! that is *independent of problem size* (the particle buffers are
//! preallocated), which makes any WarpX pair memory-infeasible on an
//! 80 GiB device; and the largest gap between theoretical (92.6 %) and
//! achieved (24.8 %) occupancy — particle scatter/gather stalls.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The WarpX model.
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::WarpX,
        occupancy: occ(24.81, 92.55),
        anchor_1x: anchor(ProblemSize::X1, 61_453, 0.04, 33.29, 117.14, 2588.8, 0.60),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            61_453,
            19.75,
            77.28,
            244.32,
            85_756.49,
            0.85,
        )),
        // 10 warps × 6 blocks = 60/64 -> 93.75 % theoretical.
        threads_per_block: 320,
        regs_per_thread: 32,
        main_grid_1x: 324, // half of the 648-block wave (Fig. 1c)
        fill_grid_1x: 648,
        main_weight: 0.7,
        cache_sensitivity: 0.60,
        client_sensitivity: 0.04,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_benchmarks;
    use mpshare_types::MemBytes;

    #[test]
    fn warpx_memory_is_size_independent_and_huge() {
        let m = model();
        assert_eq!(m.anchor_1x.max_memory, m.anchor_4x.unwrap().max_memory);
        assert!(m.anchor_1x.max_memory > MemBytes::from_gib(59));
        // Two WarpX instances cannot share an 80 GiB device.
        assert!(m.anchor_1x.max_memory + m.anchor_1x.max_memory > MemBytes::from_gib(80));
    }

    #[test]
    fn warpx_has_the_widest_occupancy_gap() {
        let m = model();
        for other in all_benchmarks() {
            let gap = |b: &crate::catalog::Benchmark| {
                b.occupancy.theoretical.value() - b.occupancy.achieved.value()
            };
            assert!(gap(&m) >= gap(&other));
        }
    }
}
