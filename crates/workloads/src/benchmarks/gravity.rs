//! **Cholla-Gravity** — 3-D gravitational collapse of a spherical
//! overdensity in Cholla, the GPU-native astrophysical hydrodynamics code.
//!
//! Mid-pack utilization with strong scaling: SM utilization more than
//! triples from 1× to 4× and power rises by 50 W. Short tasks — like
//! AthenaPK it relaunches often, so it carries elevated client pressure.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The Cholla-Gravity model.
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::ChollaGravity,
        occupancy: occ(31.45, 37.5),
        anchor_1x: anchor(ProblemSize::X1, 615, 0.51, 13.6, 88.43, 309.51, 0.50),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            5063,
            4.45,
            45.16,
            138.75,
            20_285.8,
            0.70,
        )),
        // 8 warps × 3 blocks = 24/64 -> 37.5 % theoretical (exact).
        threads_per_block: 256,
        regs_per_thread: 72,
        main_grid_1x: 259, // ~0.8 of the wave: Table I's 84 % achieved ratio needs late saturation
        fill_grid_1x: 324,
        main_weight: 0.7,
        cache_sensitivity: 0.30,
        client_sensitivity: 0.10, // short tasks, frequent relaunches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_achieves_most_of_its_theoretical_occupancy() {
        let m = model();
        assert!(m.occupancy.achieved_ratio() > 0.8);
    }

    #[test]
    fn gravity_scales_superlinearly_in_time() {
        // 20285.8 J / 138.75 W ≈ 146 s at 4x vs 3.5 s at 1x: ~42x for 4x
        // the problem — far past linear.
        let m = model();
        let t1 = m.anchor_1x.duration().value();
        let t4 = m.anchor_4x.unwrap().duration().value();
        assert!(t4 / t1 > 8.0);
    }
}
