//! **Cholla-MHD** — the magnetohydrodynamics extension of Cholla; test
//! problem: 3-D advecting field loop (Gardiner & Stone's unsplit Godunov
//! constrained-transport scheme).
//!
//! The suite's *bandwidth monster*: 31–41 % of device memory bandwidth
//! with the highest average power (234–262 W, brushing the 300 W cap).
//! Its low theoretical occupancy (19 %) is register-bound — big stencil
//! kernels — yet it achieves 92 % of it: a streaming code. Most
//! cache-sensitive benchmark in the suite, and the main ingredient of the
//! combinations where MPS co-scheduling backfires (7 and 10).

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The Cholla-MHD model.
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::ChollaMhd,
        occupancy: occ(17.72, 19.32),
        anchor_1x: anchor(ProblemSize::X1, 2175, 31.01, 72.58, 234.24, 9849.99, 0.85),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            6753,
            41.29,
            88.58,
            261.64,
            127_249.21,
            0.92,
        )),
        // 12 warps × 1 block = 12/64 -> 18.75 % theoretical.
        threads_per_block: 384,
        regs_per_thread: 88,
        main_grid_1x: 97,  // of a 108-block wave: streams nearly linearly
        fill_grid_1x: 432, // four waves
        main_weight: 0.7,
        cache_sensitivity: 1.20, // bandwidth-heavy: most cache-sensitive
        client_sensitivity: 0.02,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_benchmarks;

    #[test]
    fn mhd_is_the_bandwidth_and_power_leader() {
        let m = model();
        for other in all_benchmarks() {
            assert!(m.anchor_1x.avg_bw_util >= other.anchor_1x.avg_bw_util);
            assert!(m.anchor_1x.avg_power >= other.anchor_1x.avg_power);
        }
    }

    #[test]
    fn mhd_has_the_lowest_theoretical_occupancy() {
        let m = model();
        for other in all_benchmarks() {
            assert!(m.occupancy.theoretical <= other.occupancy.theoretical);
        }
    }

    #[test]
    fn mhd_is_the_most_cache_sensitive() {
        let m = model();
        for other in all_benchmarks() {
            assert!(m.cache_sensitivity >= other.cache_sensitivity);
        }
    }
}
