//! One module per benchmark — the paper's §V-A suite, each with its model
//! definition, the paper's description, and benchmark-specific tests.
//!
//! The shared [`crate::catalog::Benchmark`] struct carries the anchors and
//! model parameters; these modules own the numbers and the rationale.

pub mod athenapk;
pub mod epsilon;
pub mod gravity;
pub mod kripke;
pub mod lammps;
pub mod mhd;
pub mod warpx;
