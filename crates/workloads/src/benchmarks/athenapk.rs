//! **AthenaPK** — astrophysical fluid dynamics (Athena++ hydro/MHD solvers
//! on the Parthenon AMR framework, via Kokkos). Test problem: 3-D
//! hydro linear wave convergence.
//!
//! The suite's *lightest* workload: 7.5 % average SM utilization at 1×,
//! heavily bursty (block-structured AMR alternates short kernels with
//! host-side mesh management), tiny memory footprint. The paper's go-to
//! example of a collocation-friendly workflow — and, because its work
//! arrives as many small launches, the most sensitive to MPS client
//! pressure when oversubscribed.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The AthenaPK model (Tables I & II anchors at 1×/4×).
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::AthenaPk,
        occupancy: occ(13.3, 51.32),
        anchor_1x: anchor(ProblemSize::X1, 563, 0.01, 7.54, 90.09, 234.24, 0.35),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            2093,
            1.78,
            30.29,
            88.86,
            5407.36,
            0.60,
        )),
        // 11 warps × 3 blocks = 33/64 warps -> 51.56 % theoretical.
        threads_per_block: 352,
        regs_per_thread: 56,
        main_grid_1x: 97,  // ~0.3 of the 324-block wave: saturates early
        fill_grid_1x: 324, // exactly one wave
        main_weight: 0.7,
        cache_sensitivity: 0.20,
        client_sensitivity: 0.15, // many tiny AMR launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_benchmarks;

    #[test]
    fn athenapk_is_the_lightest_benchmark() {
        let m = model();
        for other in all_benchmarks() {
            assert!(m.anchor_1x.avg_sm_util <= other.anchor_1x.avg_sm_util);
        }
    }

    #[test]
    fn athenapk_is_the_burstiest_benchmark() {
        let m = model();
        assert!(m.anchor_1x.duty_cycle <= 0.4, "AMR codes idle the GPU");
        assert!(
            m.client_sensitivity >= 0.1,
            "small launches suffer MPS pressure"
        );
    }

    #[test]
    fn athenapk_4x_draws_no_more_power_than_1x() {
        // A quirk the paper's Table II records: 4x averages *less* power
        // (88.86 W) than 1x (90.09 W) despite 4x the SM utilization.
        let m = model();
        assert!(m.anchor_4x.unwrap().avg_power < m.anchor_1x.avg_power);
    }
}
