//! **LAMMPS** — molecular dynamics; the performance-critical component of
//! ParSplice workflows for simulating defects in energy-relevant
//! materials.
//!
//! The suite's most *compute-saturated* workload: 96 % average SM
//! utilization at 4× with a 97 % duty cycle, and 93 % of its theoretical
//! occupancy achieved. The paper's §III poster child for "unsuited to GPU
//! sharing with MPS" — there is simply no slack to share.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The LAMMPS model.
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::Lammps,
        occupancy: occ(32.7, 35.0),
        anchor_1x: anchor(ProblemSize::X1, 2321, 4.24, 63.0, 196.79, 580.54, 0.75),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            4977,
            7.13,
            96.28,
            258.38,
            29_390.48,
            0.97,
        )),
        // 11 warps × 2 blocks = 22/64 -> 34.38 % theoretical.
        threads_per_block: 352,
        regs_per_thread: 80,
        main_grid_1x: 194, // ~0.9 of the 216-block wave: nearly linear
        fill_grid_1x: 216,
        main_weight: 0.7,
        cache_sensitivity: 0.50,
        client_sensitivity: 0.015, // long streaming MD kernels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lammps_saturates_its_occupancy() {
        let m = model();
        assert!(m.occupancy.achieved_ratio() > 0.9, "paper: 93.43%");
    }

    #[test]
    fn lammps_4x_leaves_no_slack_for_sharing() {
        let a4 = model().anchor_4x.unwrap();
        assert!(a4.avg_sm_util.value() > 95.0);
        assert!(a4.duty_cycle > 0.95);
        // Burst utilization is effectively the whole device.
        assert!(a4.active_sm_util() > 0.98);
    }
}
