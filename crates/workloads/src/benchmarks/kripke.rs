//! **Kripke** — LLNL's deterministic Sₙ particle-transport mini-app (proxy
//! for ARDRA); sweeps over a 3-D spatial grid across energy groups and
//! directions.
//!
//! The paper's Figure 1b workload: moderate utilization (27 % at 1×,
//! 63 % at 4×), compute-leaning, with a partition response that saturates
//! around two thirds of the device at 1×.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The Kripke model.
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::Kripke,
        occupancy: occ(32.61, 43.63),
        anchor_1x: anchor(ProblemSize::X1, 621, 0.27, 26.56, 123.3, 382.24, 0.60),
        anchor_4x: Some(anchor(
            ProblemSize::X4,
            5481,
            3.78,
            63.21,
            148.16,
            12_467.54,
            0.80,
        )),
        // 7 warps × 4 blocks = 28/64 -> 43.75 % theoretical.
        threads_per_block: 224,
        regs_per_thread: 64,
        main_grid_1x: 281, // ~0.65 of the 432-block wave (Fig. 1b)
        fill_grid_1x: 432,
        main_weight: 0.7,
        cache_sensitivity: 0.35,
        client_sensitivity: 0.04,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSize;

    #[test]
    fn kripke_is_compute_leaning() {
        let m = model();
        // SM utilization dwarfs bandwidth utilization at both sizes.
        assert!(m.anchor_1x.avg_sm_util.value() > 50.0 * m.anchor_1x.avg_bw_util.value());
        assert!(
            m.anchor_4x.unwrap().avg_sm_util.value()
                > 10.0 * m.anchor_4x.unwrap().avg_bw_util.value()
        );
    }

    #[test]
    fn kripke_2x_interpolates_between_anchors() {
        let m = model();
        let p2 = m.profile_at(ProblemSize::X2);
        assert!(p2.avg_sm_util > m.anchor_1x.avg_sm_util);
        assert!(p2.avg_sm_util < m.anchor_4x.unwrap().avg_sm_util);
    }
}
