//! **BerkeleyGW-Epsilon** — dielectric-function computation of the
//! BerkeleyGW materials-science package; three main computational kernels;
//! complexity O(N⁴) in the atom count.
//!
//! The suite's longest task by far (~56 minutes at 1×) with a 30 GiB
//! footprint and single-digit SM utilization — a big, slow, collocation-
//! friendly anchor job. The paper could not scale it past 1× on its
//! evaluation machine, so the model carries no 4× anchor and extrapolates
//! with the published O(N⁴) law.

use crate::catalog::{anchor, occ, Benchmark};
use crate::spec::{BenchmarkKind, ProblemSize};

/// The BerkeleyGW-Epsilon model (Table I & II anchors at 1× only).
pub fn model() -> Benchmark {
    Benchmark {
        kind: BenchmarkKind::BerkeleyGwEpsilon,
        occupancy: occ(23.97, 41.67),
        anchor_1x: anchor(ProblemSize::X1, 30_157, 2.63, 9.04, 94.41, 319_448.05, 0.50),
        anchor_4x: None, // the paper could not scale Epsilon
        // 9 warps × 3 blocks = 27/64 -> 42.19 % theoretical.
        threads_per_block: 288,
        regs_per_thread: 64,
        main_grid_1x: 130, // saturates near a 40 % partition (Fig. 1a)
        fill_grid_1x: 324,
        main_weight: 0.7,
        cache_sensitivity: 0.30,
        client_sensitivity: 0.03,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::all_benchmarks;

    #[test]
    fn epsilon_is_the_longest_task() {
        let m = model();
        for other in all_benchmarks() {
            assert!(m.anchor_1x.duration() >= other.anchor_1x.duration());
        }
        assert!(m.anchor_1x.duration().value() > 3000.0);
    }

    #[test]
    fn epsilon_scaling_follows_n4() {
        let m = model();
        let p2 = m.profile_at(ProblemSize::X2);
        let ratio = p2.duration().value() / m.anchor_1x.duration().value();
        assert!((ratio - 16.0).abs() < 0.5);
    }

    #[test]
    fn epsilon_saturates_below_half_the_device() {
        // Fig. 1a's green circle: the main kernel's grid needs < 50 % of
        // the device's block slots.
        let m = model();
        assert!(m.main_grid_1x * 2 < m.fill_grid_1x * 2); // sanity
        assert!((m.main_grid_1x as f64) / (m.fill_grid_1x as f64) < 0.5);
    }
}
