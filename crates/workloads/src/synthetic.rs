//! Synthetic workload generation.
//!
//! Property tests and ablation benches need workloads whose parameters
//! sweep ranges the seven real benchmarks do not cover. A
//! [`SyntheticSpec`] describes a workload analytically; the generator
//! produces randomized-but-seeded specs for fuzzing the scheduler.

use mpshare_gpusim::{ClientProgram, DeviceSpec, KernelSpec, LaunchConfig, TaskProgram};
use mpshare_types::{Fraction, MemBytes, Result, Seconds, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An analytic workload description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// SM-throughput demand while kernels run, in `[0, 1]`.
    pub sm_demand: f64,
    /// Bandwidth demand while kernels run, in `[0, 1]`.
    pub bw_demand: f64,
    /// GPU-busy fraction of wall time, in `(0, 1]`.
    pub duty_cycle: f64,
    /// Task wall-clock duration, seconds.
    pub duration: f64,
    /// Device-memory footprint, MiB.
    pub memory_mib: u64,
    /// Number of kernels in the task.
    pub kernels: usize,
    /// Cache-pressure sensitivity.
    pub cache_sensitivity: f64,
    /// Per-co-runner MPS client-pressure sensitivity.
    pub client_sensitivity: f64,
}

impl SyntheticSpec {
    /// A bursty, low-utilization workload (AthenaPK-like).
    pub fn light() -> Self {
        SyntheticSpec {
            sm_demand: 0.2,
            bw_demand: 0.02,
            duty_cycle: 0.4,
            duration: 10.0,
            memory_mib: 512,
            kernels: 16,
            cache_sensitivity: 0.2,
            client_sensitivity: 0.1,
        }
    }

    /// A streaming, high-utilization workload (LAMMPS/MHD-like).
    pub fn heavy() -> Self {
        SyntheticSpec {
            sm_demand: 0.95,
            bw_demand: 0.4,
            duty_cycle: 0.95,
            duration: 10.0,
            memory_mib: 4096,
            kernels: 16,
            cache_sensitivity: 0.8,
            client_sensitivity: 0.02,
        }
    }

    /// Checks every field against its documented range, returning an
    /// error that names the offending field. Deserialized specs bypass
    /// the constructors' range asserts, so config loaders call this
    /// before a bad value can panic (or silently misbehave) deep in the
    /// engine. `ctx` prefixes the error, e.g. `"workflows[2].entries[0]"`.
    pub fn validate_fields(&self, ctx: &str) -> Result<()> {
        let in_range = |field: &str, value: f64, lo: f64, hi: f64| -> Result<()> {
            if !value.is_finite() || value < lo || value > hi {
                return Err(mpshare_types::Error::InvalidConfig(format!(
                    "{ctx}: {field} must be finite in [{lo}, {hi}], got {value}"
                )));
            }
            Ok(())
        };
        in_range("sm_demand", self.sm_demand, 0.0, 1.0)?;
        in_range("bw_demand", self.bw_demand, 0.0, 1.0)?;
        in_range("duty_cycle", self.duty_cycle, 0.0, 1.0)?;
        if self.duty_cycle == 0.0 {
            return Err(mpshare_types::Error::InvalidConfig(format!(
                "{ctx}: duty_cycle must be positive"
            )));
        }
        if !self.duration.is_finite() || self.duration <= 0.0 {
            return Err(mpshare_types::Error::InvalidConfig(format!(
                "{ctx}: duration must be finite and positive, got {}",
                self.duration
            )));
        }
        if self.kernels == 0 {
            return Err(mpshare_types::Error::InvalidConfig(format!(
                "{ctx}: kernels must be at least 1"
            )));
        }
        for (field, value) in [
            ("cache_sensitivity", self.cache_sensitivity),
            ("client_sensitivity", self.client_sensitivity),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(mpshare_types::Error::InvalidConfig(format!(
                    "{ctx}: {field} must be finite and non-negative, got {value}"
                )));
            }
        }
        Ok(())
    }

    /// Builds the spec into a single-task client program.
    pub fn to_task(&self, device: &DeviceSpec, id: TaskId) -> Result<TaskProgram> {
        let busy = self.duration * self.duty_cycle;
        let per_kernel = busy / self.kernels.max(1) as f64;
        let gap = per_kernel * (1.0 - self.duty_cycle) / self.duty_cycle.max(1e-6);
        // A dense grid so partition response is ~linear; synthetic
        // workloads test contention, not granularity.
        let launch = LaunchConfig::dense(device.num_sms * device.max_blocks_per_sm, 256);
        let kernel = KernelSpec::from_launch(device, launch, Seconds::new(per_kernel))
            .with_sm_demand(Fraction::clamped(self.sm_demand))
            .with_bw_demand(Fraction::clamped(self.bw_demand))
            .with_cache_sensitivity(self.cache_sensitivity)
            .with_client_sensitivity(self.client_sensitivity)
            .with_host_gap(Seconds::new(gap));
        let mut task = TaskProgram::new(
            id,
            format!(
                "synthetic(sm={:.2},bw={:.2})",
                self.sm_demand, self.bw_demand
            ),
            MemBytes::from_mib(self.memory_mib),
        );
        task.repeat_kernel(kernel, self.kernels.max(1));
        task.validate(device)?;
        Ok(task)
    }

    /// Builds a client program of `n_tasks` identical tasks.
    pub fn to_client_program(
        &self,
        device: &DeviceSpec,
        n_tasks: usize,
        first_id: u64,
    ) -> Result<ClientProgram> {
        let mut p = ClientProgram::new(format!("synthetic×{n_tasks}(sm={:.2})", self.sm_demand));
        for i in 0..n_tasks.max(1) {
            p.push_task(self.to_task(device, TaskId::new(first_id + i as u64))?);
        }
        Ok(p)
    }
}

/// Seeded random generator of synthetic specs.
#[derive(Debug)]
pub struct SyntheticWorkloadGen {
    rng: StdRng,
}

impl SyntheticWorkloadGen {
    pub fn new(seed: u64) -> Self {
        SyntheticWorkloadGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a spec with every parameter in a realistic range.
    pub fn sample(&mut self) -> SyntheticSpec {
        let rng = &mut self.rng;
        SyntheticSpec {
            sm_demand: rng.random_range(0.02..=1.0),
            bw_demand: rng.random_range(0.0..=0.6),
            duty_cycle: rng.random_range(0.2..=1.0),
            duration: rng.random_range(1.0..=60.0),
            memory_mib: rng.random_range(64..=16_384),
            kernels: rng.random_range(4..=64),
            cache_sensitivity: rng.random_range(0.0..=1.5),
            client_sensitivity: rng.random_range(0.0..=0.2),
        }
    }

    /// Draws `n` specs.
    pub fn sample_n(&mut self, n: usize) -> Vec<SyntheticSpec> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn presets_build_valid_tasks() {
        for spec in [SyntheticSpec::light(), SyntheticSpec::heavy()] {
            let t = spec.to_task(&dev(), TaskId::new(0)).unwrap();
            assert_eq!(t.kernels.len(), spec.kernels);
            let wall = t.solo_wall_time().value();
            assert!(
                (wall - spec.duration).abs() / spec.duration < 0.05,
                "wall {wall} vs {}",
                spec.duration
            );
        }
    }

    #[test]
    fn duty_cycle_is_respected() {
        let spec = SyntheticSpec::light();
        let t = spec.to_task(&dev(), TaskId::new(0)).unwrap();
        let duty = t.solo_busy_time().value() / t.solo_wall_time().value();
        assert!((duty - spec.duty_cycle).abs() < 0.02, "duty {duty}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = SyntheticWorkloadGen::new(42).sample_n(5);
        let b = SyntheticWorkloadGen::new(42).sample_n(5);
        assert_eq!(a, b);
        let c = SyntheticWorkloadGen::new(43).sample_n(5);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_specs_are_in_range_and_buildable() {
        let mut generator = SyntheticWorkloadGen::new(7);
        for spec in generator.sample_n(50) {
            assert!(spec.sm_demand > 0.0 && spec.sm_demand <= 1.0);
            assert!(spec.duty_cycle > 0.0 && spec.duty_cycle <= 1.0);
            spec.to_task(&dev(), TaskId::new(0)).unwrap();
        }
    }

    #[test]
    fn client_program_replicates_tasks() {
        let p = SyntheticSpec::light()
            .to_client_program(&dev(), 4, 100)
            .unwrap();
        assert_eq!(p.task_count(), 4);
        assert_eq!(p.tasks[0].id.raw(), 100);
        assert_eq!(p.tasks[3].id.raw(), 103);
    }
}
