//! `mpshare-profiler` — offline workload profiling (paper §IV-A).
//!
//! The first step of the paper's scheduling approach is offline profiling
//! of individual workflow tasks with NVIDIA Nsight Systems and
//! `nvidia-smi`: GPU compute, memory, and memory-bandwidth utilization,
//! average power, and GPU idle time. This crate reproduces that workflow
//! against the simulator:
//!
//! * [`collector`] runs one task solo on a GPU and integrates its
//!   telemetry into a [`TaskProfile`] — one row of the paper's Table II,
//!   plus the occupancy columns of Table I;
//! * [`store`] is the profile database the scheduler consults, keyed by
//!   benchmark and problem size;
//! * [`cache`] memoizes simulated profiles process-wide (sharded and
//!   thread-shareable), so each `(benchmark, size, device)` tuple is
//!   simulated exactly once no matter how many stores exist;
//! * [`scaling`] infers profiles at unmeasured problem sizes from two
//!   measured ones ("scaling is well-understood for a vast majority of HPC
//!   codes");
//! * [`smi`] emulates the `nvidia-smi dmon` sampling path and
//!   cross-validates it against the exact piecewise integrals;
//! * [`trace`] exports run timelines as Chrome-tracing JSON — the
//!   Nsight-Systems-style visualization of a co-scheduled run.

pub mod cache;
pub mod collector;
pub mod profile;
pub mod scaling;
pub mod smi;
pub mod store;
pub mod trace;

pub use cache::ProfileCache;
pub use collector::{profile_program, profile_task};
pub use profile::{OccupancyProfile, TaskProfile};
pub use scaling::infer_profile;
pub use smi::SmiLog;
pub use store::{ProfileKey, ProfileStore};
pub use trace::chrome_trace;
