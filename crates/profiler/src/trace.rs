//! Timeline export in the Chrome tracing (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)) JSON format.
//!
//! Nsight Systems' main artifact is the timeline; this module produces the
//! equivalent for simulator runs: one track per client with a span per
//! workflow task, plus counter tracks for SM utilization, bandwidth
//! utilization, and board power sampled from the exact piecewise segments.

use mpshare_gpusim::RunResult;

/// Converts a run result into a Chrome-tracing JSON string.
///
/// * pid 0 carries the device counters (`sm_util`, `bw_util`, `power_w`,
///   `clock`).
/// * pid 1 carries one thread per client; each completed task is a span.
///   Faulted work is rendered, not dropped: a client aborted mid-task gets
///   a red (`cname: "terrible"`) span for the lost in-flight work, and
///   `ClientFault`/`ServerCrash` events become instant markers.
/// * pid 2 carries kernel-level spans when the run recorded an event log
///   (see `GpuRunner::with_event_log`).
///
/// The rendering itself lives in `mpshare_obs::perfetto`, which also
/// produces the merged control-plane + engine trace behind the harness's
/// `--trace-out` flag; this function is the engine-only view.
pub fn chrome_trace(result: &RunResult) -> String {
    mpshare_obs::perfetto::chrome_trace(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_mps::{GpuRunner, GpuSharing};
    use mpshare_types::{IdAllocator, Result};
    use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

    fn run_pair() -> Result<RunResult> {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let programs = vec![
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2)
                .to_client_program(&device, &mut ids)?,
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 3)
                .to_client_program(&device, &mut ids)?,
        ];
        GpuRunner::new(device).run(&GpuSharing::mps_default(2), programs)
    }

    #[test]
    fn trace_is_valid_json_with_expected_structure() {
        let result = run_pair().unwrap();
        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());

        let spans: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 5, "2 Kripke + 3 AthenaPK tasks");
        // All spans have non-negative durations and land within the run.
        let makespan_us = result.makespan.value() * 1e6;
        for s in &spans {
            let ts = s["ts"].as_f64().unwrap();
            let dur = s["dur"].as_f64().unwrap();
            assert!(dur >= 0.0);
            assert!(ts + dur <= makespan_us + 1.0);
        }

        let counters = events.iter().filter(|e| e["ph"] == "C").count();
        assert!(counters >= 4, "counter samples present");
        let metas = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(metas, 2, "one thread-name record per client");
    }

    #[test]
    fn kernel_spans_appear_when_event_log_recorded() {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let program = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 1)
            .to_client_program(&device, &mut ids)
            .unwrap();
        let kernels = program.tasks[0].kernels.len();
        let result = GpuRunner::new(device)
            .with_event_log(true)
            .run(&GpuSharing::mps_default(1), vec![program])
            .unwrap();
        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let kernel_spans = parsed["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X" && e["pid"] == 2)
            .count();
        assert_eq!(kernel_spans, kernels);
    }

    #[test]
    fn task_spans_tile_each_client_timeline() {
        let result = run_pair().unwrap();
        for client in &result.clients {
            let mut cursor = client.started;
            for completion in &client.completions {
                assert!(completion.at >= cursor);
                cursor = completion.at;
            }
            assert_eq!(cursor, client.finished);
        }
    }

    fn long_program(label: &str, id: u64) -> mpshare_gpusim::ClientProgram {
        use mpshare_gpusim::{KernelSpec, LaunchConfig, TaskProgram};
        use mpshare_types::{Fraction, MemBytes, Seconds, TaskId};
        let device = DeviceSpec::a100x();
        let kernel = KernelSpec::from_launch(
            &device,
            LaunchConfig::dense(216 * 64, 1024),
            Seconds::new(4.0),
        )
        .with_sm_demand(Fraction::new(0.3));
        let mut task = TaskProgram::new(TaskId::new(id), label, MemBytes::from_mib(256));
        task.push_kernel(kernel);
        let mut program = mpshare_gpusim::ClientProgram::new(label);
        program.push_task(task);
        program
    }

    /// Satellite: faulted work is rendered, not dropped. An MPS-widened
    /// client fault must produce red "aborted task" spans for the lost
    /// in-flight work, a thread-scoped `client fault` instant per victim,
    /// and a global-scoped `server crash` instant on the device track.
    #[test]
    fn faulted_run_renders_aborted_spans_and_fault_markers() {
        use mpshare_gpusim::FaultPlan;
        use mpshare_types::Seconds;

        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);
        let result = GpuRunner::new(DeviceSpec::a100x())
            .with_event_log(true)
            .run_with_faults(
                &GpuSharing::mps_default(2),
                vec![long_program("victim", 0), long_program("sibling", 1)],
                &faults,
            )
            .unwrap();
        assert!(result.clients.iter().all(|c| c.failed), "MPS widens faults");

        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();

        let aborted: Vec<&serde_json::Value> = events
            .iter()
            .filter(|e| e["ph"] == "X" && e["name"] == "aborted task")
            .collect();
        assert_eq!(aborted.len(), 2, "both clients lose in-flight work");
        for span in &aborted {
            assert_eq!(span["cname"], "terrible", "aborted work renders red");
            assert_eq!(span["args"]["failed"], true);
        }

        let client_faults = events
            .iter()
            .filter(|e| e["ph"] == "i" && e["name"] == "client fault")
            .count();
        assert_eq!(client_faults, 2, "one instant marker per victim");

        let crash = events
            .iter()
            .find(|e| e["ph"] == "i" && e["name"] == "server crash")
            .expect("shared-server crash marker");
        assert_eq!(crash["pid"], 0, "crash lands on the device track");
        assert_eq!(crash["s"], "g", "global-scoped instant");
    }

    /// A contained fault (no event log) still renders the aborted span
    /// from the client outcome alone — markers need the log, spans do not.
    #[test]
    fn aborted_span_renders_without_event_log() {
        use mpshare_gpusim::FaultPlan;
        use mpshare_types::Seconds;

        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);
        let result = GpuRunner::new(DeviceSpec::a100x())
            .run_with_faults(
                &GpuSharing::mps_default(2),
                vec![long_program("victim", 0), long_program("sibling", 1)],
                &faults,
            )
            .unwrap();
        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e["ph"] == "X" && e["name"] == "aborted task"));
        assert!(
            !events.iter().any(|e| e["ph"] == "i"),
            "no instants without an event log"
        );
    }
}
