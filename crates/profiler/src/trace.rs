//! Timeline export in the Chrome tracing (`chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)) JSON format.
//!
//! Nsight Systems' main artifact is the timeline; this module produces the
//! equivalent for simulator runs: one track per client with a span per
//! workflow task, plus counter tracks for SM utilization, bandwidth
//! utilization, and board power sampled from the exact piecewise segments.

use mpshare_gpusim::RunResult;
use serde::Serialize;

/// One Chrome-tracing event (the subset of fields we emit).
#[derive(Debug, Clone, Serialize)]
struct TraceEvent {
    name: String,
    ph: &'static str,
    /// Timestamp, microseconds.
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u64,
    tid: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<serde_json::Value>,
}

const SECONDS_TO_US: f64 = 1e6;

/// Converts a run result into a Chrome-tracing JSON string.
///
/// * pid 0 carries the device counters (`sm_util`, `bw_util`, `power_w`,
///   `clock`).
/// * pid 1 carries one thread per client; each completed task is a span.
/// * pid 2 carries kernel-level spans when the run recorded an event log
///   (see `GpuRunner::with_event_log`).
pub fn chrome_trace(result: &RunResult) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();

    // Thread/track names.
    for (i, client) in result.clients.iter().enumerate() {
        events.push(TraceEvent {
            name: "thread_name".into(),
            ph: "M",
            ts: 0.0,
            dur: None,
            pid: 1,
            tid: i as u64,
            args: Some(serde_json::json!({ "name": client.label })),
        });
    }

    // Task spans, reconstructed from completion times: a task occupies the
    // client from its predecessor's completion (or the client's start).
    for (i, client) in result.clients.iter().enumerate() {
        let mut cursor = client.started;
        for completion in &client.completions {
            let start = cursor;
            let end = completion.at;
            events.push(TraceEvent {
                name: completion.label.clone(),
                ph: "X",
                ts: start.value() * SECONDS_TO_US,
                dur: Some((end.value() - start.value()).max(0.0) * SECONDS_TO_US),
                pid: 1,
                tid: i as u64,
                args: Some(serde_json::json!({ "task": completion.task.to_string() })),
            });
            cursor = end;
        }
    }

    // Kernel-level spans (pid 2) when the run carried an event log.
    for (client, task, kernel_index, start, end) in result.events.kernel_spans() {
        events.push(TraceEvent {
            name: format!("kernel {kernel_index}"),
            ph: "X",
            ts: start.value() * SECONDS_TO_US,
            dur: Some((end.value() - start.value()).max(0.0) * SECONDS_TO_US),
            pid: 2,
            tid: client as u64,
            args: Some(serde_json::json!({ "task": task.to_string() })),
        });
    }

    // Device counters from the exact segments.
    for segment in result.telemetry.segments() {
        let ts = segment.start.value() * SECONDS_TO_US;
        let counters = [
            ("sm_util", segment.sm_util * 100.0),
            ("bw_util", segment.bw_util * 100.0),
            ("power_w", segment.power.watts()),
            ("clock", segment.clock_factor * 100.0),
        ];
        for (name, value) in counters {
            events.push(TraceEvent {
                name: name.into(),
                ph: "C",
                ts,
                dur: None,
                pid: 0,
                tid: 0,
                args: Some(serde_json::json!({ name: value })),
            });
        }
    }

    serde_json::to_string(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_mps::{GpuRunner, GpuSharing};
    use mpshare_types::{IdAllocator, Result};
    use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};

    fn run_pair() -> Result<RunResult> {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let programs = vec![
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2)
                .to_client_program(&device, &mut ids)?,
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 3)
                .to_client_program(&device, &mut ids)?,
        ];
        GpuRunner::new(device).run(&GpuSharing::mps_default(2), programs)
    }

    #[test]
    fn trace_is_valid_json_with_expected_structure() {
        let result = run_pair().unwrap();
        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());

        let spans: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 5, "2 Kripke + 3 AthenaPK tasks");
        // All spans have non-negative durations and land within the run.
        let makespan_us = result.makespan.value() * 1e6;
        for s in &spans {
            let ts = s["ts"].as_f64().unwrap();
            let dur = s["dur"].as_f64().unwrap();
            assert!(dur >= 0.0);
            assert!(ts + dur <= makespan_us + 1.0);
        }

        let counters = events.iter().filter(|e| e["ph"] == "C").count();
        assert!(counters >= 4, "counter samples present");
        let metas = events.iter().filter(|e| e["ph"] == "M").count();
        assert_eq!(metas, 2, "one thread-name record per client");
    }

    #[test]
    fn kernel_spans_appear_when_event_log_recorded() {
        let device = DeviceSpec::a100x();
        let mut ids = IdAllocator::new();
        let program = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 1)
            .to_client_program(&device, &mut ids)
            .unwrap();
        let kernels = program.tasks[0].kernels.len();
        let result = GpuRunner::new(device)
            .with_event_log(true)
            .run(&GpuSharing::mps_default(1), vec![program])
            .unwrap();
        let trace = chrome_trace(&result);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let kernel_spans = parsed["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"] == "X" && e["pid"] == 2)
            .count();
        assert_eq!(kernel_spans, kernels);
    }

    #[test]
    fn task_spans_tile_each_client_timeline() {
        let result = run_pair().unwrap();
        for client in &result.clients {
            let mut cursor = client.started;
            for completion in &client.completions {
                assert!(completion.at >= cursor);
                cursor = completion.at;
            }
            assert_eq!(cursor, client.finished);
        }
    }
}
