//! The profiling collector: runs a task solo and integrates telemetry.
//!
//! Matches the paper's offline profiling procedure: the task runs alone on
//! an idle GPU (no partition restriction), Nsight/SMI-style metrics are
//! gathered, and the result is one [`TaskProfile`]. "Offline profiling only
//! requires the time it takes to run a workflow task" — here, one engine
//! run.

use crate::profile::{OccupancyProfile, TaskProfile};
use mpshare_gpusim::{occupancy, ClientProgram, DeviceSpec, TaskProgram};
use mpshare_mps::{GpuRunner, GpuSharing};
use mpshare_types::{Fraction, Percent, Result};

/// Throughput-retention threshold defining the saturation partition: the
/// smallest partition keeping at least this share of full-partition
/// throughput.
pub const SATURATION_THRESHOLD: f64 = 0.95;

/// Partition sweep points for saturation measurement (MPS active thread
/// percentages 10 %…100 %, the granularity of the paper's Figure 1).
pub const SWEEP_POINTS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Profiles a single task by running it solo.
pub fn profile_task(device: &DeviceSpec, task: &TaskProgram) -> Result<TaskProfile> {
    let mut program = ClientProgram::new(task.label.clone());
    program.push_task(task.clone());
    let mut p = profile_program(device, &program)?;
    p.label = task.label.clone();
    Ok(p)
}

/// Profiles a whole client program (several sequential tasks) as one unit.
/// The occupancy summary is the duration-weighted average over all kernels
/// of all tasks.
pub fn profile_program(device: &DeviceSpec, program: &ClientProgram) -> Result<TaskProfile> {
    let runner = GpuRunner::new(device.clone());
    let result = runner.run(&GpuSharing::Sequential, vec![program.clone()])?;
    let telemetry = &result.telemetry;

    // Occupancy from the kernel specs (Nsight computes these per kernel
    // launch; duration-weighting matches the paper's "average" columns).
    let mut ach = 0.0;
    let mut theo = 0.0;
    let mut weight = 0.0;
    for task in &program.tasks {
        for kernel in &task.kernels {
            let rep = occupancy::report(device, &kernel.launch);
            let w = kernel.solo_duration.value();
            ach += rep.achieved.value() * w;
            theo += rep.theoretical.value() * w;
            weight += w;
        }
    }
    let occupancy = if weight > 0.0 {
        OccupancyProfile {
            achieved: Percent::clamped(ach / weight),
            theoretical: Percent::clamped(theo / weight),
        }
    } else {
        OccupancyProfile {
            achieved: Percent::ZERO,
            theoretical: Percent::ZERO,
        }
    };

    let saturation_partition = measure_saturation(&runner, program, result.makespan.value())?;

    Ok(TaskProfile {
        label: program.label.clone(),
        max_memory: program.peak_memory(),
        avg_bw_util: telemetry.avg_bw_util(),
        avg_sm_util: telemetry.avg_sm_util(),
        avg_power: telemetry.avg_power(),
        energy: telemetry.total_energy(),
        duration: result.makespan,
        busy_fraction: telemetry.busy_fraction(),
        occupancy,
        saturation_partition,
    })
}

/// Figure-1-style partition sweep: re-runs the program solo at each sweep
/// point and returns the smallest partition retaining
/// [`SATURATION_THRESHOLD`] of full-partition throughput.
fn measure_saturation(
    runner: &GpuRunner,
    program: &ClientProgram,
    full_makespan: f64,
) -> Result<Fraction> {
    for &p in &SWEEP_POINTS {
        if (p - 1.0).abs() < 1e-12 {
            break; // 100 % trivially saturates
        }
        let sharing = GpuSharing::Mps {
            partitions: vec![Fraction::new(p)],
        };
        let result = runner.run(&sharing, vec![program.clone()])?;
        // Throughput ratio = makespan_full / makespan_at_p.
        if full_makespan / result.makespan.value() >= SATURATION_THRESHOLD {
            return Ok(Fraction::new(p));
        }
    }
    Ok(Fraction::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::TaskId;
    use mpshare_workloads::{benchmark, build_task, BenchmarkKind, ProblemSize};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    /// The calibration loop closes: profiling a built benchmark task on the
    /// simulator must reproduce the paper's Table II anchors.
    #[test]
    fn profiles_reproduce_table2_anchors() {
        let d = dev();
        for kind in BenchmarkKind::ALL {
            let model = benchmark(kind);
            for size in [ProblemSize::X1, ProblemSize::X4] {
                if size == ProblemSize::X4 && model.anchor_4x.is_none() {
                    continue;
                }
                let anchor = model.profile_at(size);
                let task = build_task(&d, &model, size, TaskId::new(0)).unwrap();
                let p = profile_task(&d, &task).unwrap();

                let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
                assert!(
                    rel(p.avg_sm_util.value(), anchor.avg_sm_util.value()) < 0.03,
                    "{kind} {size}: SM {} vs anchor {}",
                    p.avg_sm_util,
                    anchor.avg_sm_util
                );
                assert!(
                    rel(p.avg_power.watts(), anchor.avg_power.watts()) < 0.03,
                    "{kind} {size}: power {} vs anchor {}",
                    p.avg_power,
                    anchor.avg_power
                );
                assert!(
                    rel(p.energy.joules(), anchor.energy.joules()) < 0.05,
                    "{kind} {size}: energy {} vs anchor {}",
                    p.energy,
                    anchor.energy
                );
                assert!(
                    rel(p.duration.value(), anchor.duration().value()) < 0.03,
                    "{kind} {size}: duration {} vs anchor {}",
                    p.duration,
                    anchor.duration()
                );
                if anchor.avg_bw_util.value() > 0.5 {
                    assert!(
                        rel(p.avg_bw_util.value(), anchor.avg_bw_util.value()) < 0.05,
                        "{kind} {size}: BW {} vs anchor {}",
                        p.avg_bw_util,
                        anchor.avg_bw_util
                    );
                }
            }
        }
    }

    #[test]
    fn profiles_reproduce_table1_occupancy() {
        let d = dev();
        for kind in BenchmarkKind::ALL {
            let model = benchmark(kind);
            let task = build_task(&d, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
            let p = profile_task(&d, &task).unwrap();
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(
                rel(
                    p.occupancy.theoretical.value(),
                    model.occupancy.theoretical.value()
                ) < 0.03,
                "{kind}: theoretical {} vs paper {}",
                p.occupancy.theoretical,
                model.occupancy.theoretical
            );
            assert!(
                rel(
                    p.occupancy.achieved.value(),
                    model.occupancy.achieved.value()
                ) < 0.10,
                "{kind}: achieved {} vs paper {}",
                p.occupancy.achieved,
                model.occupancy.achieved
            );
        }
    }

    #[test]
    fn busy_fraction_matches_duty_cycle() {
        let d = dev();
        let model = benchmark(BenchmarkKind::WarpX);
        let task = build_task(&d, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
        let p = profile_task(&d, &task).unwrap();
        assert!(
            (p.busy_fraction - model.anchor_1x.duty_cycle).abs() < 0.02,
            "busy {} vs duty {}",
            p.busy_fraction,
            model.anchor_1x.duty_cycle
        );
        assert!(p.idle_time().value() > 0.0);
    }

    #[test]
    fn saturation_partition_tracks_grid_parallelism() {
        use mpshare_gpusim::{KernelSpec, LaunchConfig};
        use mpshare_types::{MemBytes, Seconds};
        let d = dev();
        // A single-wave 54-block kernel (2 blocks/SM) only needs 27 of the
        // 108 SMs: saturation should land at the 30 % sweep point.
        let k = KernelSpec::from_launch(&d, LaunchConfig::dense(54, 1024), Seconds::new(1.0));
        let mut t =
            mpshare_gpusim::TaskProgram::new(TaskId::new(0), "small", MemBytes::from_mib(64));
        t.repeat_kernel(k, 4);
        let p = profile_task(&d, &t).unwrap();
        assert!(
            (p.saturation_partition.value() - 0.3).abs() < 1e-9,
            "saturation {}",
            p.saturation_partition
        );
    }

    #[test]
    fn benchmark_saturation_partitions_are_high_but_sub_full() {
        // Real benchmark mixes carry a linear fill component, so their
        // saturation sits near (but not above) the top of the sweep.
        let d = dev();
        let model = benchmark(BenchmarkKind::AthenaPk);
        let task = build_task(&d, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
        let p = profile_task(&d, &task).unwrap();
        assert!(p.saturation_partition.value() >= 0.5);
        assert!(p.saturation_partition.value() <= 1.0);
    }

    #[test]
    fn profile_program_spans_multiple_tasks() {
        let d = dev();
        let model = benchmark(BenchmarkKind::Kripke);
        let mut program = ClientProgram::new("kripke×2");
        for id in 0..2 {
            program.push_task(build_task(&d, &model, ProblemSize::X1, TaskId::new(id)).unwrap());
        }
        let p = profile_program(&d, &program).unwrap();
        let single = profile_task(&d, &program.tasks[0]).unwrap();
        assert!((p.duration.value() - 2.0 * single.duration.value()).abs() < 0.1);
        assert!(
            (p.energy.joules() - 2.0 * single.energy.joules()).abs() / p.energy.joules() < 0.02
        );
    }
}
