//! Profile data types: what offline profiling produces.

use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};
use serde::{Deserialize, Serialize};

/// Occupancy summary of a task's kernel mix (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyProfile {
    /// Duration-weighted average achieved warp occupancy.
    pub achieved: Percent,
    /// Duration-weighted average theoretical warp occupancy.
    pub theoretical: Percent,
}

impl OccupancyProfile {
    /// "% of theoretical achieved".
    pub fn achieved_ratio(&self) -> f64 {
        if self.theoretical.value() <= 0.0 {
            0.0
        } else {
            self.achieved.value() / self.theoretical.value()
        }
    }
}

/// One profiled workflow task — a row of the paper's Table II (plus
/// occupancy and idle-time columns the paper reports elsewhere).
///
/// This is the only information the scheduler sees about a workload:
/// collocation decisions are made from these aggregates, never from the
/// underlying kernel specs (matching the paper's minimal-overhead,
/// task-granularity profiling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// Task label, e.g. `"Kripke 4x"`.
    pub label: String,
    /// Maximum resident device memory.
    pub max_memory: MemBytes,
    /// Average memory-bandwidth utilization over the task.
    pub avg_bw_util: Percent,
    /// Average SM utilization over the task.
    pub avg_sm_util: Percent,
    /// Average board power.
    pub avg_power: Power,
    /// Total GPU energy of one solo run.
    pub energy: Energy,
    /// Solo wall-clock duration.
    pub duration: Seconds,
    /// Fraction of wall time with kernels resident.
    pub busy_fraction: f64,
    /// Occupancy summary (Table I).
    pub occupancy: OccupancyProfile,
    /// Smallest MPS partition at which the task retains ≥ 95 % of its
    /// full-partition throughput — measured with a Figure-1-style sweep.
    /// This is the "green circle" of the paper's Figure 1: partitions
    /// below it hurt, partitions above it are wasted.
    pub saturation_partition: Fraction,
}

impl TaskProfile {
    /// GPU idle time during the solo run.
    pub fn idle_time(&self) -> Seconds {
        self.duration * (1.0 - self.busy_fraction)
    }

    /// Whether this profile counts as "low utilization" under a threshold
    /// on SM utilization — the paper's primary collocation discriminator.
    pub fn is_low_utilization(&self, threshold: Percent) -> bool {
        self.avg_sm_util <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(sm: f64) -> TaskProfile {
        TaskProfile {
            label: "t".into(),
            max_memory: MemBytes::from_mib(100),
            avg_bw_util: Percent::new(1.0),
            avg_sm_util: Percent::new(sm),
            avg_power: Power::from_watts(100.0),
            energy: Energy::from_joules(1000.0),
            duration: Seconds::new(10.0),
            busy_fraction: 0.6,
            occupancy: OccupancyProfile {
                achieved: Percent::new(20.0),
                theoretical: Percent::new(40.0),
            },
            saturation_partition: Fraction::new(0.5),
        }
    }

    #[test]
    fn idle_time_complement_of_busy() {
        let p = profile(30.0);
        assert!((p.idle_time().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_ratio() {
        let p = profile(30.0);
        assert!((p.occupancy.achieved_ratio() - 0.5).abs() < 1e-12);
        let zero = OccupancyProfile {
            achieved: Percent::ZERO,
            theoretical: Percent::ZERO,
        };
        assert_eq!(zero.achieved_ratio(), 0.0);
    }

    #[test]
    fn low_utilization_threshold() {
        assert!(profile(30.0).is_low_utilization(Percent::new(50.0)));
        assert!(!profile(60.0).is_low_utilization(Percent::new(50.0)));
    }

    #[test]
    fn serde_round_trip() {
        let p = profile(25.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: TaskProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
