//! Scaling inference: profiles at unmeasured sizes from measured ones.
//!
//! The paper (§IV-A): "because scaling is well-understood for a vast
//! majority of HPC codes, it is possible to infer the utilization
//! characteristics of larger problem sizes from profiling information
//! gathered with smaller workloads." Given two measured profiles of the
//! same benchmark, this fits per-metric power laws and evaluates them at a
//! target size — avoiding an expensive profiling run at the large size.

use crate::profile::TaskProfile;
use mpshare_types::{Energy, Error, MemBytes, Percent, Power, Result, Seconds};
use mpshare_workloads::spec::power_law;
use mpshare_workloads::ProblemSize;

/// Infers a profile at `target` from measurements at two smaller sizes.
///
/// Utilizations, duration, and memory follow fitted power laws; power is
/// re-derived from the fitted utilizations through the linear board model
/// implied by the two measurements; busy fraction interpolates linearly in
/// log-size and occupancy is carried from the larger measurement (grid
/// geometry, not size-dependent in first order).
pub fn infer_profile(
    small: &TaskProfile,
    small_size: ProblemSize,
    large: &TaskProfile,
    large_size: ProblemSize,
    target: ProblemSize,
) -> Result<TaskProfile> {
    let (x1, x2, x) = (small_size.factor(), large_size.factor(), target.factor());
    if x2 <= x1 {
        return Err(Error::InvalidConfig(
            "scaling inference needs two distinct sizes, small < large".into(),
        ));
    }

    let fit = |y1: f64, y2: f64| power_law(x1, y1, x2, y2, x);

    let sm = fit(small.avg_sm_util.value(), large.avg_sm_util.value()).clamp(0.0, 100.0);
    let bw = fit(small.avg_bw_util.value(), large.avg_bw_util.value()).clamp(0.0, 100.0);
    let duration = fit(small.duration.value(), large.duration.value()).max(0.0);
    let mem = fit(small.max_memory.mib(), large.max_memory.mib()).max(0.0);

    // Busy fraction: linear in ln(size), clamped.
    let t = (x.ln() - x1.ln()) / (x2.ln() - x1.ln());
    let busy =
        (small.busy_fraction + (large.busy_fraction - small.busy_fraction) * t).clamp(0.01, 1.0);

    // Power: linear model fitted from the two measurements on (sm, bw).
    // With two points we fit P = c0 + c1·(1.75·sm + bw) — the device's
    // coefficient shape with a per-benchmark gain.
    let u1 = 1.75 * small.avg_sm_util.value() + small.avg_bw_util.value();
    let u2 = 1.75 * large.avg_sm_util.value() + large.avg_bw_util.value();
    let power = if (u2 - u1).abs() < 1e-9 {
        large.avg_power.watts()
    } else {
        let c1 = (large.avg_power.watts() - small.avg_power.watts()) / (u2 - u1);
        let c0 = small.avg_power.watts() - c1 * u1;
        (c0 + c1 * (1.75 * sm + bw)).clamp(30.0, 300.0)
    };

    Ok(TaskProfile {
        label: format!("{} (inferred {target})", strip_size(&large.label)),
        max_memory: MemBytes::from_mib(mem.round() as u64),
        avg_bw_util: Percent::clamped(bw),
        avg_sm_util: Percent::clamped(sm),
        avg_power: Power::from_watts(power),
        energy: Energy::from_joules(power * duration),
        duration: Seconds::new(duration),
        busy_fraction: busy,
        occupancy: large.occupancy,
        // Larger problems have more device-filling grids, so the larger
        // measurement's saturation is the conservative carry-over.
        saturation_partition: large.saturation_partition,
    })
}

fn strip_size(label: &str) -> &str {
    label
        .rsplit_once(' ')
        .map(|(head, tail)| if tail.ends_with('x') { head } else { label })
        .unwrap_or(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::profile_task;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_types::TaskId;
    use mpshare_workloads::{benchmark, build_task, BenchmarkKind};

    fn measured(kind: BenchmarkKind, size: ProblemSize) -> TaskProfile {
        let d = DeviceSpec::a100x();
        let model = benchmark(kind);
        let task = build_task(&d, &model, size, TaskId::new(0)).unwrap();
        profile_task(&d, &task).unwrap()
    }

    #[test]
    fn inference_interpolates_between_measurements() {
        let p1 = measured(BenchmarkKind::Kripke, ProblemSize::X1);
        let p4 = measured(BenchmarkKind::Kripke, ProblemSize::X4);
        let p2 =
            infer_profile(&p1, ProblemSize::X1, &p4, ProblemSize::X4, ProblemSize::X2).unwrap();
        assert!(p2.avg_sm_util > p1.avg_sm_util && p2.avg_sm_util < p4.avg_sm_util);
        assert!(p2.duration > p1.duration && p2.duration < p4.duration);
        assert!(p2.max_memory > p1.max_memory && p2.max_memory < p4.max_memory);
    }

    #[test]
    fn inferred_2x_matches_direct_measurement() {
        // The real test of §IV-A: inference from {1x, 4x} should land close
        // to actually profiling 2x.
        let p1 = measured(BenchmarkKind::WarpX, ProblemSize::X1);
        let p4 = measured(BenchmarkKind::WarpX, ProblemSize::X4);
        let inferred =
            infer_profile(&p1, ProblemSize::X1, &p4, ProblemSize::X4, ProblemSize::X2).unwrap();
        let direct = measured(BenchmarkKind::WarpX, ProblemSize::X2);
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-9);
        assert!(
            rel(inferred.avg_sm_util.value(), direct.avg_sm_util.value()) < 0.10,
            "sm {} vs {}",
            inferred.avg_sm_util,
            direct.avg_sm_util
        );
        assert!(
            rel(inferred.duration.value(), direct.duration.value()) < 0.10,
            "dur {} vs {}",
            inferred.duration,
            direct.duration
        );
        assert!(
            rel(inferred.avg_power.watts(), direct.avg_power.watts()) < 0.15,
            "power {} vs {}",
            inferred.avg_power,
            direct.avg_power
        );
    }

    #[test]
    fn extrapolation_grows_monotonically() {
        let p1 = measured(BenchmarkKind::AthenaPk, ProblemSize::X1);
        let p4 = measured(BenchmarkKind::AthenaPk, ProblemSize::X4);
        let p8 =
            infer_profile(&p1, ProblemSize::X1, &p4, ProblemSize::X4, ProblemSize::X8).unwrap();
        assert!(p8.duration > p4.duration);
        assert!(p8.avg_sm_util >= p4.avg_sm_util);
        assert!(p8.avg_sm_util.value() <= 100.0);
    }

    #[test]
    fn degenerate_sizes_are_rejected() {
        let p = measured(BenchmarkKind::Kripke, ProblemSize::X1);
        assert!(infer_profile(&p, ProblemSize::X4, &p, ProblemSize::X1, ProblemSize::X2).is_err());
        assert!(infer_profile(&p, ProblemSize::X1, &p, ProblemSize::X1, ProblemSize::X2).is_err());
    }
}
