//! `nvidia-smi dmon`-style sampling over simulator telemetry.
//!
//! The paper gathers power and utilization through the SMI query utility,
//! which samples at a fixed interval. The simulator's telemetry is exact
//! (piecewise integration), so this module exists to (a) emulate the real
//! measurement path for users who want SMI-like logs and (b) cross-check
//! that sampling converges to the exact integrals.

use mpshare_gpusim::telemetry::SmiSample;
use mpshare_gpusim::Telemetry;
use mpshare_types::{Percent, Power, Seconds};
use serde::{Deserialize, Serialize};

/// A fixed-interval sample log, like `nvidia-smi dmon -s pu`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmiLog {
    pub interval: Seconds,
    pub samples: Vec<SmiSample>,
}

impl SmiLog {
    /// Samples a telemetry trace at `interval`.
    pub fn capture(telemetry: &Telemetry, interval: Seconds) -> Self {
        SmiLog {
            interval,
            samples: telemetry.sample(interval),
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean sampled power.
    pub fn mean_power(&self) -> Power {
        if self.samples.is_empty() {
            return Power::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|s| s.power.watts()).sum();
        Power::from_watts(sum / self.samples.len() as f64)
    }

    /// Mean sampled SM utilization.
    pub fn mean_sm_util(&self) -> Percent {
        if self.samples.is_empty() {
            return Percent::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|s| s.sm_util.value()).sum();
        Percent::clamped(sum / self.samples.len() as f64)
    }

    /// Fraction of samples observed with the SW power cap active — the
    /// measurable proxy for capped time (Figure 3's metric as SMI sees it).
    pub fn capped_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.capped).count() as f64 / self.samples.len() as f64
    }

    /// Renders a `dmon`-style text log.
    pub fn render(&self) -> String {
        let mut out = String::from("# time_s  sm%    bw%    power_w  capped\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:8.2} {:6.2} {:6.2} {:8.2}  {}\n",
                s.time.value(),
                s.sm_util.value(),
                s.bw_util.value(),
                s.power.watts(),
                if s.capped { "yes" } else { "no" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::{
        ClientProgram, DeviceSpec, Engine, EngineConfig, KernelSpec, LaunchConfig, SharingMode,
        TaskProgram,
    };
    use mpshare_types::{Fraction, MemBytes, TaskId};

    fn run_trace() -> Telemetry {
        let d = DeviceSpec::a100x();
        let k = KernelSpec::from_launch(&d, LaunchConfig::dense(216, 1024), Seconds::new(2.0))
            .with_sm_demand(Fraction::new(0.5))
            .with_bw_demand(Fraction::new(0.2))
            .with_host_gap(Seconds::new(1.0));
        let mut t = TaskProgram::new(TaskId::new(0), "t", MemBytes::from_mib(64));
        t.repeat_kernel(k, 3);
        let mut c = ClientProgram::new("c");
        c.push_task(t);
        Engine::new(EngineConfig::new(d, SharingMode::mps_uniform(1)), vec![c])
            .unwrap()
            .run()
            .unwrap()
            .telemetry
    }

    #[test]
    fn sampling_converges_to_exact_integrals() {
        let telemetry = run_trace();
        let log = SmiLog::capture(&telemetry, Seconds::from_millis(10.0));
        assert!(!log.is_empty());
        assert!(
            (log.mean_power().watts() - telemetry.avg_power().watts()).abs() < 1.0,
            "sampled {} vs exact {}",
            log.mean_power(),
            telemetry.avg_power()
        );
        assert!((log.mean_sm_util().value() - telemetry.avg_sm_util().value()).abs() < 1.0);
        assert!((log.capped_fraction() - telemetry.capped_fraction()).abs() < 0.02);
    }

    #[test]
    fn coarse_sampling_is_less_accurate_but_bounded() {
        let telemetry = run_trace();
        let log = SmiLog::capture(&telemetry, Seconds::new(1.0));
        // 9 s trace -> 9 samples.
        assert_eq!(log.len(), 9);
        assert!((log.mean_power().watts() - telemetry.avg_power().watts()).abs() < 30.0);
    }

    #[test]
    fn render_produces_one_line_per_sample() {
        let telemetry = run_trace();
        let log = SmiLog::capture(&telemetry, Seconds::new(1.0));
        let text = log.render();
        assert_eq!(text.lines().count(), 1 + log.len());
        assert!(text.contains("power_w"));
    }

    #[test]
    fn empty_log_is_well_behaved() {
        let log = SmiLog {
            interval: Seconds::new(1.0),
            samples: Vec::new(),
        };
        assert_eq!(log.mean_power(), Power::ZERO);
        assert_eq!(log.mean_sm_util(), Percent::ZERO);
        assert_eq!(log.capped_fraction(), 0.0);
    }

    mod sampling_props {
        use super::*;
        use mpshare_gpusim::{
            ClientProgram, DeviceSpec, Engine, EngineConfig, KernelSpec, LaunchConfig, SharingMode,
            TaskProgram,
        };
        use mpshare_types::{Fraction, MemBytes, TaskId};
        use proptest::prelude::*;

        fn trace_for(dur: f64, gap: f64, sm: f64, bw: f64, power: f64, reps: usize) -> Telemetry {
            let d = DeviceSpec::a100x();
            let k = KernelSpec::from_launch(&d, LaunchConfig::dense(216, 1024), Seconds::new(dur))
                .with_sm_demand(Fraction::new(sm))
                .with_bw_demand(Fraction::new(bw))
                .with_power_scale(power)
                .with_host_gap(Seconds::new(gap));
            let mut t = TaskProgram::new(TaskId::new(0), "t", MemBytes::from_mib(64));
            t.repeat_kernel(k, reps);
            let mut c = ClientProgram::new("c");
            c.push_task(t);
            Engine::new(EngineConfig::new(d, SharingMode::mps_uniform(1)), vec![c])
                .unwrap()
                .run()
                .unwrap()
                .telemetry
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Satellite cross-check: left-endpoint sampling of a
            /// piecewise-constant telemetry trace converges to the exact
            /// integrals as the interval shrinks, with a provable error
            /// bound. For a trace of S segments over total time T, each of
            /// the ≤ S+1 discontinuities perturbs at most one sample
            /// interval, so the sampled mean deviates from the exact mean
            /// by at most (S+2)·range·h/T (doubled here for the float
            /// drift in the sampler's time accumulator).
            #[test]
            fn sampled_means_converge_with_bounded_error(
                dur in 0.3f64..2.5,
                gap in 0.0f64..0.8,
                sm in 0.2f64..1.0,
                bw in 0.1f64..0.9,
                power in 0.5f64..2.0,
                reps in 1usize..4,
            ) {
                let telemetry = trace_for(dur, gap, sm, bw, power, reps);
                let total = telemetry.total_time().value();
                prop_assume!(total > 0.0);
                let segs = telemetry.segments();
                let s = segs.len() as f64;
                let watts =
                    |f: fn(&mpshare_gpusim::Segment) -> f64| -> (f64, f64) {
                        let lo = segs.iter().map(f).fold(f64::INFINITY, f64::min);
                        let hi = segs.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
                        (lo, hi)
                    };
                let (p_lo, p_hi) = watts(|seg| seg.power.watts());
                let (u_lo, u_hi) = watts(|seg| seg.sm_util * 100.0);
                let exact_p = telemetry.avg_power().watts();
                let exact_u = telemetry.avg_sm_util().value();

                for &h in &[0.5, 0.1, 0.02] {
                    let log = SmiLog::capture(&telemetry, Seconds::new(h));
                    prop_assert!(!log.is_empty());
                    let bound = |range: f64| 2.0 * (s + 2.0) * range * h / total + 1e-6;
                    let p_err = (log.mean_power().watts() - exact_p).abs();
                    prop_assert!(
                        p_err <= bound(p_hi - p_lo),
                        "power error {p_err} exceeds bound {} at h={h}",
                        bound(p_hi - p_lo)
                    );
                    let u_err = (log.mean_sm_util().value() - exact_u).abs();
                    prop_assert!(
                        u_err <= bound(u_hi - u_lo),
                        "sm-util error {u_err} exceeds bound {} at h={h}",
                        bound(u_hi - u_lo)
                    );
                }
            }
        }
    }
}
