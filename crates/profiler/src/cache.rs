//! Process-wide memoization of simulated task profiles.
//!
//! Profiling is a pure function of `(device, task source)`: the simulator
//! is deterministic and a profile run takes no inputs besides the device
//! spec and the workload model. Planner, recommender, and every harness
//! experiment construct their own [`crate::ProfileStore`]s, which used to
//! mean the same `(benchmark, size, device)` tuple was re-simulated dozens
//! of times per process. This module puts one sharded cache behind all of
//! them so each distinct tuple is simulated exactly once per process.
//!
//! Sharding bounds contention: the key hash picks one of [`SHARD_COUNT`]
//! `RwLock`-protected maps, and a miss computes the profile while holding
//! only that shard's write lock (guaranteeing exactly-once without
//! serializing unrelated keys). Worker threads from `mpshare-par` fan-outs
//! therefore share profiles safely.

use crate::profile::TaskProfile;
use crate::store::ProfileKey;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Result;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

const SHARD_COUNT: usize = 16;

/// Cache key: a device fingerprint plus the profile's store key. The
/// fingerprint is the device's canonical JSON — every field of
/// [`DeviceSpec`] affects simulation, so all of them must key the cache.
type CacheKey = (String, ProfileKey);

/// A sharded, thread-shareable memo table of task profiles.
#[derive(Debug)]
pub struct ProfileCache {
    shards: [RwLock<HashMap<CacheKey, TaskProfile>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ProfileCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileCache {
    pub fn new() -> Self {
        ProfileCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached profile for `(device, key)`, computing and
    /// memoizing it via `compute` on first use. The computation runs under
    /// the owning shard's write lock, so it executes exactly once per
    /// process for each distinct key, even under concurrent callers.
    /// Errors are not cached: a failed computation reruns on retry.
    pub fn get_or_compute(
        &self,
        device: &DeviceSpec,
        key: &ProfileKey,
        compute: impl FnOnce() -> Result<TaskProfile>,
    ) -> Result<TaskProfile> {
        let cache_key = (fingerprint(device), key.clone());
        let shard = &self.shards[shard_index(&cache_key)];
        if let Some(profile) = shard
            .read()
            .expect("profile cache poisoned")
            .get(&cache_key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mpshare_obs::counter_add(mpshare_obs::names::PROFILE_CACHE_HITS, 1);
            return Ok(profile.clone());
        }
        let mut map = shard.write().expect("profile cache poisoned");
        match map.entry(cache_key) {
            Entry::Occupied(e) => {
                // Lost the read→write race to another thread that computed it.
                self.hits.fetch_add(1, Ordering::Relaxed);
                mpshare_obs::counter_add(mpshare_obs::names::PROFILE_CACHE_HITS, 1);
                Ok(e.get().clone())
            }
            Entry::Vacant(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mpshare_obs::counter_add(mpshare_obs::names::PROFILE_CACHE_MISSES, 1);
                let profile = compute()?;
                Ok(e.insert(profile).clone())
            }
        }
    }

    /// `(hits, misses)` so far. A miss is a profile actually simulated.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Total distinct profiles memoized.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("profile cache poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn shard_index(key: &CacheKey) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % SHARD_COUNT
}

fn fingerprint(device: &DeviceSpec) -> String {
    serde_json::to_string(device).expect("device specs serialize")
}

/// The process-wide cache every [`crate::ProfileStore`] consults.
pub fn global() -> &'static ProfileCache {
    static CACHE: OnceLock<ProfileCache> = OnceLock::new();
    CACHE.get_or_init(ProfileCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn dummy_profile(label: &str) -> TaskProfile {
        TaskProfile {
            label: label.into(),
            max_memory: MemBytes::from_gib(1),
            avg_bw_util: Percent::new(1.0),
            avg_sm_util: Percent::new(10.0),
            avg_power: Power::from_watts(100.0),
            energy: Energy::from_joules(1000.0),
            duration: Seconds::new(10.0),
            busy_fraction: 0.8,
            occupancy: crate::OccupancyProfile {
                achieved: Percent::new(40.0),
                theoretical: Percent::new(50.0),
            },
            saturation_partition: Fraction::new(0.5),
        }
    }

    #[test]
    fn computes_each_key_exactly_once() {
        let cache = ProfileCache::new();
        let key = ProfileKey::custom("memo-test");
        let mut calls = 0;
        for _ in 0..3 {
            let p = cache
                .get_or_compute(&dev(), &key, || {
                    calls += 1;
                    Ok(dummy_profile("memo-test"))
                })
                .unwrap();
            assert_eq!(p.label, "memo-test");
        }
        assert_eq!(calls, 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_devices_do_not_share_entries() {
        let cache = ProfileCache::new();
        let key = ProfileKey::custom("device-split");
        let mut other = dev();
        other.num_sms /= 2;
        cache
            .get_or_compute(&dev(), &key, || Ok(dummy_profile("a")))
            .unwrap();
        let p = cache
            .get_or_compute(&other, &key, || Ok(dummy_profile("b")))
            .unwrap();
        assert_eq!(p.label, "b");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ProfileCache::new();
        let key = ProfileKey::custom("transient-error");
        let err: Result<TaskProfile> = cache.get_or_compute(&dev(), &key, || {
            Err(mpshare_types::Error::InvalidState("boom".into()))
        });
        assert!(err.is_err());
        let ok = cache.get_or_compute(&dev(), &key, || Ok(dummy_profile("recovered")));
        assert_eq!(ok.unwrap().label, "recovered");
    }

    #[test]
    fn concurrent_callers_share_one_computation() {
        let cache = ProfileCache::new();
        let key = ProfileKey::custom("concurrent");
        let computations = AtomicU64::new(0);
        let lanes: Vec<u32> = (0..16).collect();
        let profiles = mpshare_par::par_map(&lanes, |_| {
            cache
                .get_or_compute(&dev(), &key, || {
                    computations.fetch_add(1, Ordering::Relaxed);
                    Ok(dummy_profile("concurrent"))
                })
                .unwrap()
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
        assert!(profiles.iter().all(|p| p == &profiles[0]));
    }
}
