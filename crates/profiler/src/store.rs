//! The profile store: the scheduler's database of offline profiles.
//!
//! Keyed by benchmark kind and problem size (quantized to hundredths so the
//! float factor is hashable). The store is populated by running the
//! collector once per distinct (benchmark, size) pair — the paper's offline
//! profiling pass — and optionally extended with inferred profiles for
//! unmeasured sizes.

use crate::collector::profile_task;
use crate::profile::TaskProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Error, Result, TaskId};
use mpshare_workloads::{
    benchmark, build_task, BenchmarkKind, ProblemSize, TaskSource, WorkflowSpec,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hashable profile key: a calibrated benchmark at a size (quantized to
/// 1/100ths) or a named custom workload.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProfileKey {
    Benchmark {
        kind: BenchmarkKind,
        size_centis: u32,
    },
    Custom(String),
}

impl ProfileKey {
    pub fn new(kind: BenchmarkKind, size: ProblemSize) -> Self {
        ProfileKey::Benchmark {
            kind,
            size_centis: (size.factor() * 100.0).round() as u32,
        }
    }

    /// Key for a named custom workload.
    pub fn custom(name: impl Into<String>) -> Self {
        ProfileKey::Custom(name.into())
    }

    /// Key for a task source.
    pub fn for_source(source: &TaskSource) -> Self {
        match source {
            TaskSource::Benchmark { kind, size } => ProfileKey::new(*kind, *size),
            TaskSource::Custom { name, .. } => ProfileKey::custom(name.clone()),
        }
    }

    /// The benchmark problem size, for benchmark keys.
    pub fn size(&self) -> Option<ProblemSize> {
        match self {
            ProfileKey::Benchmark { size_centis, .. } => {
                Some(ProblemSize::new(*size_centis as f64 / 100.0))
            }
            ProfileKey::Custom(_) => None,
        }
    }
}

/// Offline profile database.
///
/// Serializes as a list of `(key, profile)` entries (JSON object keys must
/// be strings, and the key is a struct).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(into = "StoreOnDisk", from = "StoreOnDisk")]
pub struct ProfileStore {
    profiles: BTreeMap<ProfileKey, TaskProfile>,
}

/// Serialization surrogate for [`ProfileStore`].
#[derive(Serialize, Deserialize)]
struct StoreOnDisk {
    profiles: Vec<(ProfileKey, TaskProfile)>,
}

impl From<ProfileStore> for StoreOnDisk {
    fn from(store: ProfileStore) -> Self {
        StoreOnDisk {
            profiles: store.profiles.into_iter().collect(),
        }
    }
}

impl From<StoreOnDisk> for ProfileStore {
    fn from(disk: StoreOnDisk) -> Self {
        ProfileStore {
            profiles: disk.profiles.into_iter().collect(),
        }
    }
}

impl ProfileStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn insert(&mut self, key: ProfileKey, profile: TaskProfile) {
        self.profiles.insert(key, profile);
    }

    pub fn get(&self, kind: BenchmarkKind, size: ProblemSize) -> Result<&TaskProfile> {
        let key = ProfileKey::new(kind, size);
        self.profiles
            .get(&key)
            .ok_or_else(|| Error::MissingProfile(format!("{kind} {size}")))
    }

    /// Looks up the profile of any task source (benchmark or custom).
    pub fn get_source(&self, source: &TaskSource) -> Result<&TaskProfile> {
        self.profiles
            .get(&ProfileKey::for_source(source))
            .ok_or_else(|| Error::MissingProfile(source.label()))
    }

    pub fn contains(&self, kind: BenchmarkKind, size: ProblemSize) -> bool {
        self.profiles.contains_key(&ProfileKey::new(kind, size))
    }

    /// Profiles one (benchmark, size) pair by running it solo, unless
    /// already present. Returns whether this store was missing the entry
    /// (the simulation itself is memoized process-wide — see
    /// [`crate::cache`] — so repeated tuples cost one run per process).
    pub fn profile_once(
        &mut self,
        device: &DeviceSpec,
        kind: BenchmarkKind,
        size: ProblemSize,
    ) -> Result<bool> {
        let key = ProfileKey::new(kind, size);
        if self.profiles.contains_key(&key) {
            return Ok(false);
        }
        let profile = crate::cache::global().get_or_compute(device, &key, || {
            let model = benchmark(kind);
            let task = build_task(device, &model, size, TaskId::new(0))?;
            profile_task(device, &task)
        })?;
        self.profiles.insert(key, profile);
        Ok(true)
    }

    /// Profiles any task source (benchmark or custom) once per store;
    /// the underlying simulation is memoized process-wide.
    pub fn profile_source(&mut self, device: &DeviceSpec, source: &TaskSource) -> Result<bool> {
        let key = ProfileKey::for_source(source);
        if self.profiles.contains_key(&key) {
            return Ok(false);
        }
        let profile = crate::cache::global().get_or_compute(device, &key, || {
            let task = source.build(device, TaskId::new(0))?;
            profile_task(device, &task)
        })?;
        self.profiles.insert(key, profile);
        Ok(true)
    }

    /// Ensures profiles exist for every task of every given workflow —
    /// the offline pass the scheduler requires before planning.
    pub fn profile_workflows(
        &mut self,
        device: &DeviceSpec,
        workflows: &[WorkflowSpec],
    ) -> Result<usize> {
        let mut runs = 0;
        for w in workflows {
            for entry in &w.entries {
                if self.profile_source(device, &entry.source)? {
                    runs += 1;
                }
            }
        }
        Ok(runs)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&ProfileKey, &TaskProfile)> {
        self.profiles.iter()
    }

    /// Persists the store as pretty JSON — the offline profiling pass runs
    /// once per cluster and its results are reused across scheduling
    /// sessions, exactly like the paper's workflow.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let body = serde_json::to_string_pretty(self)
            .map_err(|e| Error::InvalidState(format!("serializing profile store: {e}")))?;
        std::fs::write(path, body)
            .map_err(|e| Error::InvalidState(format!("writing {}: {e}", path.display())))
    }

    /// Loads a store persisted with [`ProfileStore::save`].
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let body = std::fs::read_to_string(path)
            .map_err(|e| Error::InvalidState(format!("reading {}: {e}", path.display())))?;
        serde_json::from_str(&body)
            .map_err(|e| Error::InvalidState(format!("parsing {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn key_quantizes_sizes() {
        let a = ProfileKey::new(BenchmarkKind::Kripke, ProblemSize::new(2.0));
        let b = ProfileKey::new(BenchmarkKind::Kripke, ProblemSize::new(2.001));
        assert_eq!(a, b);
        assert_eq!(a.size().unwrap().factor(), 2.0);
        let c = ProfileKey::new(BenchmarkKind::Kripke, ProblemSize::new(2.5));
        assert_ne!(a, c);
    }

    #[test]
    fn missing_profile_is_an_error() {
        let store = ProfileStore::new();
        let err = store
            .get(BenchmarkKind::Lammps, ProblemSize::X1)
            .unwrap_err();
        assert!(matches!(err, Error::MissingProfile(_)));
    }

    #[test]
    fn profile_once_is_idempotent() {
        let d = dev();
        let mut store = ProfileStore::new();
        assert!(store
            .profile_once(&d, BenchmarkKind::AthenaPk, ProblemSize::X1)
            .unwrap());
        assert!(!store
            .profile_once(&d, BenchmarkKind::AthenaPk, ProblemSize::X1)
            .unwrap());
        assert_eq!(store.len(), 1);
        let p = store.get(BenchmarkKind::AthenaPk, ProblemSize::X1).unwrap();
        assert!(p.avg_sm_util.value() < 10.0); // AthenaPK 1x: 7.54 %
    }

    #[test]
    fn save_and_load_round_trip() {
        let d = dev();
        let mut store = ProfileStore::new();
        store
            .profile_once(&d, BenchmarkKind::Kripke, ProblemSize::X1)
            .unwrap();
        let path = std::env::temp_dir().join(format!("mpshare-store-{}.json", std::process::id()));
        store.save(&path).unwrap();
        let loaded = ProfileStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(
            loaded.get(BenchmarkKind::Kripke, ProblemSize::X1).unwrap(),
            store.get(BenchmarkKind::Kripke, ProblemSize::X1).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
        assert!(ProfileStore::load(&path).is_err());
    }

    #[test]
    fn profile_workflows_covers_distinct_pairs() {
        let d = dev();
        let mut store = ProfileStore::new();
        let wfs = vec![
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 5),
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 3),
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2),
        ];
        let runs = store.profile_workflows(&d, &wfs).unwrap();
        assert_eq!(runs, 2); // AthenaPK 1x deduplicated
        assert!(store.contains(BenchmarkKind::Kripke, ProblemSize::X1));
    }
}
