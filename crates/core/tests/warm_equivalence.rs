//! Property tests pinning the warm-started planner to the cold one:
//! over an evolving queue (arbitrary joins, leaves, and churn), every
//! `plan_warm` call must return a plan bit-identical to `plan` on the
//! same queue — same groups, same member order, same partition bits.

use mpshare_core::{
    MetricPriority, PlanWarmState, Planner, PlannerStrategy, SchedulePlan, WorkflowProfile,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn profile_strategy() -> impl Strategy<Value = WorkflowProfile> {
    (
        1.0f64..=99.0,  // sm
        0.0f64..=60.0,  // bw
        1u64..=70,      // memory GiB
        1.0f64..=500.0, // duration
        0.2f64..=1.0,   // busy fraction
        0.1f64..=1.0,   // saturation partition
        1usize..=20,    // tasks
    )
        .prop_map(|(sm, bw, mem, duration, busy, saturation, tasks)| {
            let power = 75.0 + 1.75 * sm + bw;
            WorkflowProfile {
                label: format!("wf(sm={sm:.0})"),
                task_count: tasks,
                avg_sm_util: Percent::new(sm),
                avg_bw_util: Percent::new(bw),
                max_memory: MemBytes::from_gib(mem),
                duration: Seconds::new(duration),
                energy: Energy::from_joules(power * duration),
                avg_power: Power::from_watts(power),
                busy_fraction: busy,
                saturation_partition: Fraction::new(saturation),
            }
        })
}

/// One queue mutation between planning calls.
#[derive(Debug, Clone)]
enum Churn {
    /// Remove the workflow at (current-length-modulo) position.
    Leave(usize),
    /// Insert a fresh workflow at (current-length-modulo) position.
    Join(usize, WorkflowProfile),
    /// Leave then join — the richest diff `plan_warm` still warm-starts.
    Swap(usize, usize, WorkflowProfile),
    /// Replace most of the queue: forces a cold re-plan mid-sequence.
    Bulk(Vec<WorkflowProfile>),
}

fn churn_strategy() -> impl Strategy<Value = Churn> {
    (
        0usize..9, // weighted selector: 3 leave, 3 join, 2 swap, 1 bulk
        0usize..8,
        0usize..8,
        profile_strategy(),
        prop::collection::vec(profile_strategy(), 1..5),
    )
        .prop_map(|(pick, a, b, p, bulk)| match pick {
            0..=2 => Churn::Leave(a),
            3..=5 => Churn::Join(a, p),
            6..=7 => Churn::Swap(a, b, p),
            _ => Churn::Bulk(bulk),
        })
}

/// Bit-level plan equality: group structure, member order, partition bits.
fn assert_plans_identical(warm: &SchedulePlan, cold: &SchedulePlan) -> Result<(), TestCaseError> {
    prop_assert_eq!(warm.groups.len(), cold.groups.len(), "group count");
    for (w, c) in warm.groups.iter().zip(cold.groups.iter()) {
        prop_assert_eq!(&w.workflow_indices, &c.workflow_indices);
        prop_assert_eq!(w.partitions.len(), c.partitions.len());
        for (wp, cp) in w.partitions.iter().zip(c.partitions.iter()) {
            prop_assert_eq!(
                wp.value().to_bits(),
                cp.value().to_bits(),
                "partition bits {} vs {}",
                wp.value(),
                cp.value()
            );
        }
    }
    Ok(())
}

/// Applies one churn step to the queue, keeping ids stable and unique.
fn apply(queue: &mut Vec<(u64, WorkflowProfile)>, next_id: &mut u64, step: &Churn) {
    match step {
        Churn::Leave(at) => {
            if queue.len() > 1 {
                let at = at % queue.len();
                queue.remove(at);
            }
        }
        Churn::Join(at, p) => {
            let at = at % (queue.len() + 1);
            queue.insert(at, (*next_id, p.clone()));
            *next_id += 1;
        }
        Churn::Swap(out, into, p) => {
            if queue.len() > 1 {
                let out = out % queue.len();
                queue.remove(out);
            }
            let into = into % (queue.len() + 1);
            queue.insert(into, (*next_id, p.clone()));
            *next_id += 1;
        }
        Churn::Bulk(profiles) => {
            queue.clear();
            for p in profiles {
                queue.push((*next_id, p.clone()));
                *next_id += 1;
            }
        }
    }
}

fn run_equivalence(
    initial: Vec<WorkflowProfile>,
    churns: Vec<Churn>,
    strategy: PlannerStrategy,
    cap: usize,
) -> Result<(), TestCaseError> {
    let d = device();
    let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
    let mut warm = PlanWarmState::new();
    let mut next_id = 0u64;
    let mut queue: Vec<(u64, WorkflowProfile)> = initial
        .into_iter()
        .map(|p| {
            let id = next_id;
            next_id += 1;
            (id, p)
        })
        .collect();

    for step in std::iter::once(None).chain(churns.iter().map(Some)) {
        if let Some(step) = step {
            apply(&mut queue, &mut next_id, step);
        }
        queue.truncate(cap); // keep exhaustive runs tractable
        let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
        let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();
        let warm_plan = planner
            .plan_warm(&profiles, &ids, strategy, &mut warm)
            .unwrap();
        let cold_plan = planner.plan(&profiles, strategy).unwrap();
        assert_plans_identical(&warm_plan, &cold_plan)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive: the warm incumbent floor and the translated memo must
    /// not change which leaf the branch-and-bound returns.
    #[test]
    fn warm_exhaustive_matches_cold(
        initial in prop::collection::vec(profile_strategy(), 2..6),
        churns in prop::collection::vec(churn_strategy(), 1..6),
    ) {
        run_equivalence(initial, churns, PlannerStrategy::Exhaustive, 7)?;
    }

    /// Auto (greedy ∥ best-fit with a shared memo): translated memo hits
    /// must be bit-identical to fresh estimates.
    #[test]
    fn warm_auto_matches_cold(
        initial in prop::collection::vec(profile_strategy(), 2..8),
        churns in prop::collection::vec(churn_strategy(), 1..8),
    ) {
        run_equivalence(initial, churns, PlannerStrategy::Auto, 12)?;
    }

    /// Forced cold start is a true escape hatch: state never accumulates
    /// and every call matches plain `plan`.
    #[test]
    fn forced_cold_start_never_warm_starts(
        initial in prop::collection::vec(profile_strategy(), 2..5),
        churns in prop::collection::vec(churn_strategy(), 1..4),
    ) {
        let d = device();
        let planner = Planner::new(d.clone(), MetricPriority::balanced_product())
            .with_forced_cold_start(true);
        let mut warm = PlanWarmState::new();
        let mut next_id = 0u64;
        let mut queue: Vec<(u64, WorkflowProfile)> = Vec::new();
        for p in initial {
            queue.push((next_id, p));
            next_id += 1;
        }
        for step in &churns {
            apply(&mut queue, &mut next_id, step);
            queue.truncate(6);
            let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
            let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();
            let warm_plan = planner
                .plan_warm(&profiles, &ids, PlannerStrategy::Exhaustive, &mut warm)
                .unwrap();
            let cold_plan = planner.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
            assert_plans_identical(&warm_plan, &cold_plan)?;
        }
        prop_assert_eq!(warm.warm_hits(), 0);
    }
}

/// A steady join/leave drip must actually take the warm path (the whole
/// point), not silently fall back to cold every call.
#[test]
fn steady_churn_takes_warm_path() {
    let d = device();
    let planner = Planner::new(d, MetricPriority::balanced_product());
    let mut warm = PlanWarmState::new();
    let base: Vec<WorkflowProfile> = (0..5)
        .map(|i| WorkflowProfile {
            label: format!("wf{i}"),
            task_count: 4,
            avg_sm_util: Percent::new(20.0 + 10.0 * i as f64),
            avg_bw_util: Percent::new(10.0),
            max_memory: MemBytes::from_gib(8),
            duration: Seconds::new(100.0),
            energy: Energy::from_joules(250.0 * 100.0),
            avg_power: Power::from_watts(250.0),
            busy_fraction: 0.8,
            saturation_partition: Fraction::new(0.5),
        })
        .collect();

    let mut queue: Vec<(u64, WorkflowProfile)> = base
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, p)| (i as u64, p))
        .collect();
    let first_fresh_id = queue.len() as u64;
    let mut calls = 0u64;
    for round in 0..6 {
        let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
        let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();
        let warm_plan = planner
            .plan_warm(&profiles, &ids, PlannerStrategy::Exhaustive, &mut warm)
            .unwrap();
        let cold_plan = planner
            .plan(&profiles, PlannerStrategy::Exhaustive)
            .unwrap();
        assert_eq!(warm_plan.groups.len(), cold_plan.groups.len());
        calls += 1;
        // Front leaves, a fresh workflow joins at the back: the canonical
        // online-scheduler shape.
        queue.remove(0);
        queue.push((
            first_fresh_id + round as u64,
            base[round % base.len()].clone(),
        ));
    }
    // Every call after the first diffs as one leave + one join.
    assert_eq!(warm.warm_hits(), calls - 1);
}
