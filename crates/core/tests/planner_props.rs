//! Property-based tests of the planner: every strategy, on arbitrary
//! queues, must produce structurally valid plans that respect the policy
//! and hard constraints.

use mpshare_core::{
    estimate_group, AnnealConfig, EstimateMemo, MetricPriority, PartitionStrategy, Planner,
    PlannerStrategy, WorkflowProfile,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

fn profile_strategy() -> impl Strategy<Value = WorkflowProfile> {
    (
        1.0f64..=99.0,  // sm
        0.0f64..=60.0,  // bw
        1u64..=70,      // memory GiB
        1.0f64..=500.0, // duration
        0.2f64..=1.0,   // busy fraction
        0.1f64..=1.0,   // saturation partition
        1usize..=20,    // tasks
    )
        .prop_map(|(sm, bw, mem, duration, busy, saturation, tasks)| {
            let power = 75.0 + 1.75 * sm + bw;
            WorkflowProfile {
                label: format!("wf(sm={sm:.0})"),
                task_count: tasks,
                avg_sm_util: Percent::new(sm),
                avg_bw_util: Percent::new(bw),
                max_memory: MemBytes::from_gib(mem),
                duration: Seconds::new(duration),
                energy: Energy::from_joules(power * duration),
                avg_power: Power::from_watts(power),
                busy_fraction: busy,
                saturation_partition: Fraction::new(saturation),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy yields a valid plan: exactly-once coverage, client
    /// limit, memory capacity, sane partitions.
    #[test]
    fn plans_are_always_valid(
        profiles in prop::collection::vec(profile_strategy(), 1..10),
    ) {
        let d = device();
        for priority in [
            MetricPriority::Throughput,
            MetricPriority::Energy,
            MetricPriority::balanced_product(),
        ] {
            for strategy in [
                PlannerStrategy::Greedy,
                PlannerStrategy::BestFit,
                PlannerStrategy::Auto,
            ] {
                let planner = Planner::new(d.clone(), priority);
                let plan = planner.plan(&profiles, strategy).unwrap();
                plan.validate(&d, &profiles).unwrap();
                for g in &plan.groups {
                    for p in &g.partitions {
                        prop_assert!(p.value() > 0.0 && p.value() <= 1.0);
                    }
                }
            }
        }
    }

    /// The paper's greedy under throughput priority never exceeds
    /// cardinality 2 and never groups workflows past the 100 %-sum rules.
    #[test]
    fn greedy_honours_paper_rules(
        profiles in prop::collection::vec(profile_strategy(), 1..10),
    ) {
        let d = device();
        let plan = Planner::new(d.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        prop_assert!(plan.max_cardinality() <= 2);
        for g in &plan.groups {
            let sm: f64 = g
                .workflow_indices
                .iter()
                .map(|&i| profiles[i].avg_sm_util.value())
                .sum();
            let bw: f64 = g
                .workflow_indices
                .iter()
                .map(|&i| profiles[i].avg_bw_util.value())
                .sum();
            prop_assert!(sm <= 100.0 + 1e-9, "group SM sum {sm}");
            prop_assert!(bw <= 100.0 + 1e-9, "group BW sum {bw}");
        }
    }

    /// Auto's estimated score dominates both of its inputs, and the
    /// exhaustive score dominates everything on small queues.
    #[test]
    fn strategy_score_ordering(
        profiles in prop::collection::vec(profile_strategy(), 1..7),
    ) {
        let d = device();
        let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
        let score = |strategy| {
            let plan = planner.plan(&profiles, strategy).unwrap();
            planner.score_plan(&plan, &profiles)
        };
        let greedy = score(PlannerStrategy::Greedy);
        let bestfit = score(PlannerStrategy::BestFit);
        let auto = score(PlannerStrategy::Auto);
        let exhaustive = score(PlannerStrategy::Exhaustive);
        prop_assert!(auto >= greedy - 1e-9);
        prop_assert!(auto >= bestfit - 1e-9);
        prop_assert!(exhaustive >= auto - 1e-9,
            "exhaustive {exhaustive} < auto {auto}");
    }

    /// Annealed plans are valid and never score below the Auto seed.
    #[test]
    fn annealed_plans_are_valid_and_dominant(
        profiles in prop::collection::vec(profile_strategy(), 1..8),
    ) {
        let d = device();
        let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
        let config = AnnealConfig { iterations: 300, ..AnnealConfig::default() };
        let refined = planner.plan_annealed(&profiles, config).unwrap();
        refined.validate(&d, &profiles).unwrap();
        let auto = planner.plan(&profiles, PlannerStrategy::Auto).unwrap();
        prop_assert!(
            planner.score_plan(&refined, &profiles)
                >= planner.score_plan(&auto, &profiles) - 1e-9
        );
    }

    /// Partition strategies: saturation-aware partitions always dominate
    /// demand-based ones (the floor can only raise them) and never exceed
    /// 100 %.
    #[test]
    fn saturation_floor_only_raises_partitions(
        profiles in prop::collection::vec(profile_strategy(), 1..6),
    ) {
        let refs: Vec<&WorkflowProfile> = profiles.iter().collect();
        let demand = PartitionStrategy::default_rightsized().partitions(&refs);
        let saturation = PartitionStrategy::default_saturation_aware().partitions(&refs);
        for (d, s) in demand.iter().zip(&saturation) {
            prop_assert!(s.value() >= d.value() - 1e-12);
            prop_assert!(s.value() <= 1.0);
        }
    }

    /// Memoized scoring is bit-identical to scoring from scratch — for
    /// every strategy's plans, for annealed plans (whose internal
    /// incremental scoring also self-checks against `score_plan` in
    /// debug builds), and with one memo shared across all of them so
    /// both the miss and hit paths are exercised.
    #[test]
    fn memoized_scoring_matches_from_scratch(
        profiles in prop::collection::vec(profile_strategy(), 1..8),
    ) {
        let d = device();
        let memo = EstimateMemo::new();
        for priority in [
            MetricPriority::Throughput,
            MetricPriority::Energy,
            MetricPriority::balanced_product(),
        ] {
            let planner = Planner::new(d.clone(), priority);
            for strategy in [
                PlannerStrategy::Greedy,
                PlannerStrategy::BestFit,
                PlannerStrategy::Auto,
                PlannerStrategy::Exhaustive,
            ] {
                let plan = planner.plan(&profiles, strategy).unwrap();
                let scratch = planner.score_plan(&plan, &profiles);
                let memoized = planner.score_plan_memo(&plan, &profiles, &memo);
                prop_assert_eq!(memoized.to_bits(), scratch.to_bits(),
                    "memoized {} != scratch {} ({:?})", memoized, scratch, strategy);
                // Second scoring hits the cache for every group and must
                // reproduce the same bits.
                let again = planner.score_plan_memo(&plan, &profiles, &memo);
                prop_assert_eq!(again.to_bits(), scratch.to_bits());
            }
            let config = AnnealConfig { iterations: 150, ..AnnealConfig::default() };
            let refined = planner.plan_annealed(&profiles, config).unwrap();
            let scratch = planner.score_plan(&refined, &profiles);
            let memoized = planner.score_plan_memo(&refined, &profiles, &memo);
            prop_assert_eq!(memoized.to_bits(), scratch.to_bits());
        }
        // Each plan was scored twice, so hits at least match misses.
        let stats = memo.stats();
        prop_assert!(stats.hits >= stats.misses,
            "expected reuse: {} hits vs {} misses", stats.hits, stats.misses);
    }

    /// The estimator is monotone: adding a workflow to a group never
    /// shrinks the estimated makespan, and the estimated energy of a
    /// group is at least its idle floor.
    #[test]
    fn estimator_monotonicity(
        profiles in prop::collection::vec(profile_strategy(), 2..8),
    ) {
        let d = device();
        let all: Vec<&WorkflowProfile> = profiles.iter().collect();
        let sub: Vec<&WorkflowProfile> = profiles[..profiles.len() - 1].iter().collect();
        let with = estimate_group(&d, &all, 0.01);
        let without = estimate_group(&d, &sub, 0.01);
        prop_assert!(with.makespan.value() >= without.makespan.value() - 1e-9);
        prop_assert!(
            with.energy.joules()
                >= d.idle_power.watts() * with.makespan.value() - 1e-6
        );
    }
}
