//! The collocation planner (paper §IV-B).
//!
//! Given a queue of workflows with profiles, produces a [`SchedulePlan`]:
//! an ordered list of collocation groups, each executed on the GPU under
//! MPS with right-sized partitions, one group after another.
//!
//! Planning strategies:
//!
//! * [`PlannerStrategy::Greedy`] — the paper's algorithm: workflows with
//!   the lowest compute utilization are prioritized; a group accepts the
//!   next lowest-utilization workflow while combined SM ≤ 100 %, combined
//!   BW ≤ 100 %, combined memory ≤ capacity, and the group is under the
//!   metric-priority cardinality cap (2 for throughput, 48 for energy; the
//!   product priority sweeps caps and keeps the best estimated score).
//! * [`PlannerStrategy::Exhaustive`] — enumerates every set partition of
//!   the queue (n ≤ 12), scores each with the analytic estimator, and
//!   returns the best. Ground truth for small queues; the planner tests
//!   check greedy stays close to it.

use crate::estimate::{estimate_group, estimate_sequential, GroupEstimate};
use crate::interference::predict;
use crate::memo::{EstimateMemo, GroupKey};
use crate::policy::MetricPriority;
use crate::rightsize::PartitionStrategy;
use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Error, Fraction, Result};
use serde::{Deserialize, Serialize};

/// One collocation group: workflow queue indices plus their partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanGroup {
    /// Indices into the planner's workflow queue.
    pub workflow_indices: Vec<usize>,
    /// MPS partitions, parallel to `workflow_indices`.
    pub partitions: Vec<Fraction>,
}

/// A complete schedule: groups run one after another on the GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    pub groups: Vec<PlanGroup>,
}

impl SchedulePlan {
    /// Total workflows covered.
    pub fn workflow_count(&self) -> usize {
        self.groups.iter().map(|g| g.workflow_indices.len()).sum()
    }

    /// Largest group size (the plan's cardinality).
    pub fn max_cardinality(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.workflow_indices.len())
            .max()
            .unwrap_or(0)
    }

    /// Checks structural validity against a queue of `n` workflows:
    /// every index covered exactly once, group sizes within the client
    /// limit, and no group violating the hard memory constraint.
    pub fn validate(&self, device: &DeviceSpec, profiles: &[WorkflowProfile]) -> Result<()> {
        let n = profiles.len();
        let mut seen = vec![false; n];
        for g in &self.groups {
            if g.workflow_indices.is_empty() {
                return Err(Error::PlanViolation("empty group".into()));
            }
            if g.workflow_indices.len() != g.partitions.len() {
                return Err(Error::PlanViolation(
                    "partition vector length mismatch".into(),
                ));
            }
            if g.workflow_indices.len() > device.max_mps_clients {
                return Err(Error::PlanViolation(format!(
                    "group of {} exceeds the {}-client limit",
                    g.workflow_indices.len(),
                    device.max_mps_clients
                )));
            }
            let mut mem = mpshare_types::MemBytes::ZERO;
            for &i in &g.workflow_indices {
                if i >= n {
                    return Err(Error::PlanViolation(format!("index {i} out of range")));
                }
                if seen[i] {
                    return Err(Error::PlanViolation(format!(
                        "workflow {i} scheduled twice"
                    )));
                }
                seen[i] = true;
                mem += profiles[i].max_memory;
            }
            if mem > device.memory_capacity {
                return Err(Error::PlanViolation(format!(
                    "group memory {mem} exceeds capacity {}",
                    device.memory_capacity
                )));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(Error::PlanViolation(format!(
                "workflow {missing} not scheduled"
            )));
        }
        Ok(())
    }
}

/// Which search strategy the planner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerStrategy {
    /// The paper's greedy lowest-utilization-first packing under the hard
    /// 100 %-sum interference rule (§IV-B).
    Greedy,
    /// Estimator-guided best-fit packing: groups are grown by the
    /// candidate with the largest predicted makespan saving, subject only
    /// to the *hard* constraints (memory capacity, client limit). This
    /// implements the paper's future-work direction — an interference
    /// *model* recommending combinations — and can profitably accept mild
    /// oversubscription the 100 %-sum rule forbids.
    BestFit,
    /// Runs both [`PlannerStrategy::Greedy`] and
    /// [`PlannerStrategy::BestFit`] and keeps the better-scoring plan.
    Auto,
    /// Full set-partition enumeration scored by the estimator (n ≤ 12).
    Exhaustive,
}

/// Carried planner state between successive [`Planner::plan_warm`] calls
/// over an evolving workflow queue: the previous queue's stable ids, the
/// estimate memo keyed against its positions, and the previous plan's
/// member lists. One value per online-scheduling run; [`PlanWarmState::reset`]
/// (or any non-incremental queue change) drops everything and the next
/// call plans cold.
#[derive(Debug, Default)]
pub struct PlanWarmState {
    /// Stable workflow ids of the previous call's queue, in queue order.
    prev_ids: Vec<u64>,
    /// Estimate memo keyed by the previous queue's positions; translated
    /// to the new positions on each warm hit.
    memo: EstimateMemo,
    /// The previous plan's member lists (previous queue positions).
    prev_groups: Option<Vec<Vec<usize>>>,
    /// Warm-start hits taken so far (mirrors the obs counter, for tests).
    warm_hits: u64,
}

impl PlanWarmState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all carried state: the next [`Planner::plan_warm`] call
    /// plans cold.
    pub fn reset(&mut self) {
        self.prev_ids.clear();
        self.memo = EstimateMemo::new();
        self.prev_groups = None;
    }

    /// Number of calls that warm-started (diffed as ≤ 1 leave + ≤ 1 join).
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }
}

/// Diffs two id queues as `new = old − (≤ 1 departure) + (≤ 1 arrival)`
/// with the survivors' relative order preserved. Returns
/// `Some((leave, join))` — the departed id's position in `old` and the
/// arrival's position in `new` — or `None` when the queues differ by more
/// than that (bulk change or reordering → plan cold).
fn warm_diff(old: &[u64], new: &[u64]) -> Option<(Option<usize>, Option<usize>)> {
    /// Position whose removal from `longer` yields `shorter`
    /// (`longer.len() == shorter.len() + 1`), preferring the earliest.
    fn one_removed(longer: &[u64], shorter: &[u64]) -> Option<usize> {
        let p = longer
            .iter()
            .zip(shorter.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(shorter.len());
        (longer[p + 1..] == shorter[p..]).then_some(p)
    }
    match (old.len() as i64) - (new.len() as i64) {
        0 => match old.iter().zip(new.iter()).position(|(a, b)| a != b) {
            None => Some((None, None)),
            Some(p) => {
                // One out, one in, same length: the first mismatch is
                // either the departure's old position or the arrival's
                // new position — try it as the departure first (the
                // leave-then-join reading), then as the arrival.
                let mut shrunk = old.to_vec();
                shrunk.remove(p);
                if let Some(j) = one_removed(new, &shrunk) {
                    return Some((Some(p), Some(j)));
                }
                let mut shrunk = new.to_vec();
                shrunk.remove(p);
                one_removed(old, &shrunk).map(|k| (Some(k), Some(p)))
            }
        },
        1 => one_removed(old, new).map(|k| (Some(k), None)),
        -1 => one_removed(new, old).map(|j| (None, Some(j))),
        _ => None,
    }
}

/// The collocation planner.
#[derive(Debug, Clone)]
pub struct Planner {
    device: DeviceSpec,
    priority: MetricPriority,
    partition_strategy: PartitionStrategy,
    sharing_overhead: f64,
    exhaustive_pruning: bool,
    force_cold_start: bool,
}

impl Planner {
    pub fn new(device: DeviceSpec, priority: MetricPriority) -> Self {
        Planner {
            device,
            priority,
            partition_strategy: PartitionStrategy::default_saturation_aware(),
            sharing_overhead: 0.0,
            exhaustive_pruning: true,
            force_cold_start: false,
        }
    }

    pub fn with_partition_strategy(mut self, s: PartitionStrategy) -> Self {
        self.partition_strategy = s;
        self
    }

    pub fn with_sharing_overhead(mut self, o: f64) -> Self {
        self.sharing_overhead = o;
        self
    }

    /// Enables/disables branch-and-bound pruning in
    /// [`PlannerStrategy::Exhaustive`]. Pruning is on by default and
    /// returns the identical plan (the bounds are admissible and the
    /// incumbent-selection order is preserved); disabling it falls back to
    /// the plain brute-force enumeration — the reference the equivalence
    /// property test compares against.
    pub fn with_exhaustive_pruning(mut self, enabled: bool) -> Self {
        self.exhaustive_pruning = enabled;
        self
    }

    /// Forces [`Planner::plan_warm`] to ignore (and reset) any carried
    /// warm-start state, planning every call cold. The escape hatch for
    /// proving warm == cold: the fuzz oracle and the equivalence property
    /// tests run both ways and require bit-identical plans.
    pub fn with_forced_cold_start(mut self, enabled: bool) -> Self {
        self.force_cold_start = enabled;
        self
    }

    pub fn priority(&self) -> MetricPriority {
        self.priority
    }

    pub fn partition_strategy(&self) -> PartitionStrategy {
        self.partition_strategy
    }

    /// Convenience: plan with `Auto`, then refine by simulated annealing
    /// (see [`crate::anneal`]). Never scores worse than the `Auto` plan.
    pub fn plan_annealed(
        &self,
        profiles: &[WorkflowProfile],
        config: crate::anneal::AnnealConfig,
    ) -> Result<SchedulePlan> {
        let seed = self.plan(profiles, PlannerStrategy::Auto)?;
        let refined = crate::anneal::anneal(self, &self.device, profiles, &seed, config);
        refined.validate(&self.device, profiles)?;
        Ok(refined)
    }

    /// Plans with the configured strategy.
    pub fn plan(
        &self,
        profiles: &[WorkflowProfile],
        strategy: PlannerStrategy,
    ) -> Result<SchedulePlan> {
        if profiles.is_empty() {
            return Err(Error::InvalidConfig("empty workflow queue".into()));
        }
        Self::validate_profiles(profiles)?;
        mpshare_obs::counter_add(mpshare_obs::names::PLAN_CALLS, 1);
        let plan = self.plan_with_memo(profiles, strategy, &EstimateMemo::new(), None)?;
        plan.validate(&self.device, profiles)?;
        self.emit_plan_obs(strategy, &plan, profiles);
        Ok(plan)
    }

    /// Plans like [`Planner::plan`], warm-starting from the previous
    /// call's carried state when the queue changed by at most one
    /// departure and one arrival.
    ///
    /// `ids` gives a stable identity per queue position (parallel to
    /// `profiles`): a workflow keeps its id as the queue evolves, letting
    /// the planner diff consecutive queues. When the diff is a single
    /// join/leave with relative order preserved, the previous call's
    /// estimate memo is translated to the new positions — so the search
    /// re-derives nothing it already knows — and, under
    /// [`PlannerStrategy::Exhaustive`], the previous plan re-enters as the
    /// branch-and-bound's incumbent floor, mirroring the engine's
    /// join/leave splice. Anything else (first call, bulk change,
    /// reordering, or [`Planner::with_forced_cold_start`]) resets the
    /// state and plans cold.
    ///
    /// The returned plan is bit-identical to [`Planner::plan`] on the same
    /// queue: a translated memo hit returns exactly the value the
    /// identical estimate call computes (estimates depend only on the
    /// member profiles in order, which the id diff preserves), and the
    /// incumbent floor is the largest float strictly below the score of an
    /// enumerable leaf, so the branch-and-bound still returns the first
    /// leaf attaining the maximal score (see DESIGN.md §11; pinned by the
    /// `warm_equivalence` property tests and the fuzz oracle).
    pub fn plan_warm(
        &self,
        profiles: &[WorkflowProfile],
        ids: &[u64],
        strategy: PlannerStrategy,
        state: &mut PlanWarmState,
    ) -> Result<SchedulePlan> {
        if profiles.len() != ids.len() {
            return Err(Error::InvalidConfig(format!(
                "{} ids for {} profiles",
                ids.len(),
                profiles.len()
            )));
        }
        if profiles.is_empty() {
            return Err(Error::InvalidConfig("empty workflow queue".into()));
        }
        Self::validate_profiles(profiles)?;
        mpshare_obs::counter_add(mpshare_obs::names::PLAN_CALLS, 1);

        let diff = if self.force_cold_start || state.prev_ids.is_empty() {
            None
        } else {
            warm_diff(&state.prev_ids, ids)
        };
        let prev_groups = match diff {
            Some((leave, join)) => {
                let remap = move |p: usize| -> Option<usize> {
                    let shrunk = match leave {
                        Some(k) if p == k => return None,
                        Some(k) if p > k => p - 1,
                        _ => p,
                    };
                    Some(match join {
                        Some(j) if shrunk >= j => shrunk + 1,
                        _ => shrunk,
                    })
                };
                if leave.is_some() || join.is_some() {
                    state.memo = state.memo.translated(remap);
                }
                state.warm_hits += 1;
                mpshare_obs::counter_add(mpshare_obs::names::PLAN_WARM_START_HITS, 1);
                state.prev_groups.take().map(|groups| {
                    let mut translated: Vec<Vec<usize>> = groups
                        .iter()
                        .map(|g| g.iter().filter_map(|&m| remap(m)).collect::<Vec<usize>>())
                        .filter(|g| !g.is_empty())
                        .collect();
                    if let Some(j) = join {
                        // The arrival was in no previous group; as its own
                        // singleton the translated plan is a full partition
                        // of the new queue again.
                        translated.push(vec![j]);
                    }
                    translated
                })
            }
            None => {
                state.reset();
                None
            }
        };

        let plan = self.plan_with_memo(profiles, strategy, &state.memo, prev_groups.as_deref())?;
        plan.validate(&self.device, profiles)?;
        self.emit_plan_obs(strategy, &plan, profiles);
        state.prev_ids.clear();
        state.prev_ids.extend_from_slice(ids);
        state.prev_groups = Some(
            plan.groups
                .iter()
                .map(|g| g.workflow_indices.clone())
                .collect(),
        );
        Ok(plan)
    }

    /// Strategy dispatch over an explicit memo (empty for cold calls,
    /// translated for warm ones) and, for the exhaustive search, the
    /// previous plan's translated member lists to seed the incumbent.
    fn plan_with_memo(
        &self,
        profiles: &[WorkflowProfile],
        strategy: PlannerStrategy,
        memo: &EstimateMemo,
        prev_groups: Option<&[Vec<usize>]>,
    ) -> Result<SchedulePlan> {
        match strategy {
            PlannerStrategy::Greedy => self.plan_greedy(profiles, memo),
            PlannerStrategy::BestFit => self.plan_bestfit(profiles, memo),
            PlannerStrategy::Auto => {
                // One memo spans both legs: the cap sweeps re-try many of
                // the same groups, and the final comparison scores are all
                // hits.
                let (greedy, bestfit) = mpshare_par::join(
                    || self.plan_greedy(profiles, memo),
                    || self.plan_bestfit(profiles, memo),
                );
                let (greedy, bestfit) = (greedy?, bestfit?);
                Ok(
                    if self.score_plan_memo(&bestfit, profiles, memo)
                        > self.score_plan_memo(&greedy, profiles, memo)
                    {
                        bestfit
                    } else {
                        greedy
                    },
                )
            }
            PlannerStrategy::Exhaustive => {
                let floor =
                    prev_groups.and_then(|groups| self.exhaustive_floor(groups, profiles, memo));
                self.plan_exhaustive(profiles, memo, floor)
            }
        }
    }

    fn emit_plan_obs(
        &self,
        strategy: PlannerStrategy,
        plan: &SchedulePlan,
        profiles: &[WorkflowProfile],
    ) {
        if mpshare_obs::enabled() {
            let (workflows, groups, cardinality) =
                (profiles.len(), plan.groups.len(), plan.max_cardinality());
            let score = self.score_plan(plan, profiles);
            mpshare_obs::emit(mpshare_obs::Track::Planner, "plan", None, None, || {
                serde_json::json!({
                    "strategy": format!("{strategy:?}"),
                    "workflows": workflows,
                    "groups": groups,
                    "max_cardinality": cardinality,
                    "score": score,
                })
            });
        }
    }

    /// Rejects profiles the packing heuristics cannot order: non-finite or
    /// negative durations, utilizations, energies, or powers. Degenerate
    /// values would otherwise poison the sort comparators and the
    /// estimator, so the planner refuses them up front with an error
    /// naming the offending profile and field.
    fn validate_profiles(profiles: &[WorkflowProfile]) -> Result<()> {
        for (i, p) in profiles.iter().enumerate() {
            let checks = [
                ("duration", p.duration.value()),
                ("avg_sm_util", p.avg_sm_util.value()),
                ("avg_bw_util", p.avg_bw_util.value()),
                ("energy", p.energy.joules()),
                ("avg_power", p.avg_power.watts()),
                ("busy_fraction", p.busy_fraction),
                ("saturation_partition", p.saturation_partition.value()),
            ];
            for (field, value) in checks {
                if !value.is_finite() || value < 0.0 {
                    return Err(Error::InvalidConfig(format!(
                        "profile {i} ({}): {field} must be finite and non-negative, got {value}",
                        p.label
                    )));
                }
            }
        }
        Ok(())
    }

    /// The paper's greedy algorithm, sweeping cardinality caps when the
    /// priority calls for it. Caps are independent candidates, so they are
    /// built and scored on worker threads; the in-order strictly-greater
    /// reduction keeps the earliest maximum, matching the serial sweep
    /// bit for bit.
    fn plan_greedy(
        &self,
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
    ) -> Result<SchedulePlan> {
        let seq = Self::sequential_baseline(profiles);
        let caps = self.priority.candidate_caps(&self.device);
        let scored = mpshare_par::par_map(&caps, |&cap| {
            let plan = self.greedy_with_cap(profiles, cap);
            let score = self.score_groups(&plan, profiles, &seq, memo);
            (score, plan)
        });
        Self::first_best(scored).ok_or_else(|| {
            Error::PlanViolation(format!(
                "priority {:?} produced no cardinality-cap candidates",
                self.priority
            ))
        })
    }

    /// Estimator-guided best-fit packing, sweeping the priority's caps in
    /// parallel like [`Planner::plan_greedy`].
    fn plan_bestfit(
        &self,
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
    ) -> Result<SchedulePlan> {
        let seq = Self::sequential_baseline(profiles);
        let caps = self.priority.candidate_caps(&self.device);
        let scored = mpshare_par::par_map(&caps, |&cap| {
            let plan = self.bestfit_with_cap_memo(profiles, cap, memo);
            let score = self.score_groups(&plan, profiles, &seq, memo);
            (score, plan)
        });
        Self::first_best(scored).ok_or_else(|| {
            Error::PlanViolation(format!(
                "priority {:?} produced no cardinality-cap candidates",
                self.priority
            ))
        })
    }

    /// In-order reduction keeping the first candidate with the maximal
    /// score — the same winner a serial strictly-greater sweep selects.
    fn first_best<P>(scored: impl IntoIterator<Item = (f64, P)>) -> Option<P> {
        let mut best: Option<(f64, P)> = None;
        for (score, plan) in scored {
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, plan));
            }
        }
        best.map(|(_, plan)| plan)
    }

    /// Best-fit packing with an explicit cardinality cap: seeds each group
    /// with the longest unassigned workflow (the makespan driver), then
    /// repeatedly adds the candidate whose predicted *time saving* —
    /// its solo duration minus the predicted growth of the group's
    /// makespan — is largest and positive. Only the hard constraints
    /// (memory, client cap) gate admission.
    pub fn bestfit_with_cap(&self, profiles: &[WorkflowProfile], cap: usize) -> SchedulePlan {
        self.bestfit_with_cap_memo(profiles, cap, &EstimateMemo::new())
    }

    fn bestfit_with_cap_memo(
        &self,
        profiles: &[WorkflowProfile],
        cap: usize,
        memo: &EstimateMemo,
    ) -> SchedulePlan {
        let cap = cap.clamp(1, self.device.max_mps_clients.max(1));
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        // NaN durations are rejected by `validate_profiles` before any
        // planning entry point that reaches this sort; treating an
        // unexpected incomparable pair as equal keeps index order instead
        // of panicking, and is identical to `partial_cmp` for finite data.
        order.sort_by(|&a, &b| {
            profiles[b]
                .duration
                .partial_cmp(&profiles[a].duration)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        // A candidate's saving never exceeds its solo duration: the
        // estimator's makespan is append-monotone (float included) when
        // demands, durations, and the sharing overhead are non-negative,
        // so the growth term subtracted from the duration is ≥ 0. Under
        // that precondition the duration-descending candidate order admits
        // an early break once the incumbent saving reaches the next
        // candidate's duration.
        let saving_bound_ok = self.sharing_overhead >= 0.0
            && profiles.iter().all(|p| {
                p.duration.value() >= 0.0
                    && p.avg_sm_util.value() >= 0.0
                    && p.avg_bw_util.value() >= 0.0
            });

        let mut assigned = vec![false; profiles.len()];
        let mut groups = Vec::new();
        for &seed in &order {
            if assigned[seed] {
                continue;
            }
            assigned[seed] = true;
            let mut members = vec![seed];
            let mut trial_members = Vec::new();
            loop {
                if members.len() >= cap {
                    break;
                }
                let current = self.estimate_members(&members, profiles, memo);
                let group_memory: mpshare_types::MemBytes =
                    members.iter().map(|&i| profiles[i].max_memory).sum();

                let mut best_candidate: Option<(f64, usize)> = None;
                for &cand in &order {
                    if assigned[cand] {
                        continue;
                    }
                    // Duration bound: later candidates are shorter still, so
                    // none can *strictly* beat the incumbent saving — the
                    // selection is unchanged. Only taken with observability
                    // off: the audit stream must see every candidate.
                    if saving_bound_ok && !mpshare_obs::enabled() {
                        if let Some((best, _)) = best_candidate {
                            if profiles[cand].duration.value() <= best {
                                break;
                            }
                        }
                    }
                    if group_memory + profiles[cand].max_memory > self.device.memory_capacity {
                        if mpshare_obs::enabled() {
                            mpshare_obs::counter_add(mpshare_obs::names::PLAN_CANDIDATES, 1);
                            mpshare_obs::counter_add(mpshare_obs::names::PLAN_REJECTS, 1);
                            let group = members.clone();
                            mpshare_obs::emit(
                                mpshare_obs::Track::Planner,
                                "plan.candidate",
                                None,
                                None,
                                || {
                                    serde_json::json!({
                                        "strategy": "bestfit",
                                        "cap": cap,
                                        "group": group,
                                        "candidate": cand,
                                        "accepted": false,
                                        "reason": "group memory would exceed capacity",
                                    })
                                },
                            );
                        }
                        continue;
                    }
                    trial_members.clear();
                    trial_members.extend_from_slice(&members);
                    trial_members.push(cand);
                    let with = self.estimate_members(&trial_members, profiles, memo);
                    // Saving = sequential cost of the candidate minus the
                    // growth it causes in the group's makespan.
                    let saving = profiles[cand].duration.value()
                        - (with.makespan.value() - current.makespan.value());
                    if mpshare_obs::enabled() {
                        mpshare_obs::counter_add(mpshare_obs::names::PLAN_CANDIDATES, 1);
                        if saving <= 0.0 {
                            mpshare_obs::counter_add(mpshare_obs::names::PLAN_REJECTS, 1);
                        }
                        let group = members.clone();
                        mpshare_obs::emit(
                            mpshare_obs::Track::Planner,
                            "plan.candidate",
                            None,
                            None,
                            || {
                                serde_json::json!({
                                    "strategy": "bestfit",
                                    "cap": cap,
                                    "group": group,
                                    "candidate": cand,
                                    "accepted": saving > 0.0,
                                    "reason": if saving > 0.0 {
                                        "positive predicted time saving"
                                    } else {
                                        "predicted makespan growth outweighs saving"
                                    },
                                    "predicted_saving_s": saving,
                                    "predicted_makespan_s": with.makespan.value(),
                                })
                            },
                        );
                    }
                    if saving > 0.0 && best_candidate.is_none_or(|(best, _)| saving > best) {
                        best_candidate = Some((saving, cand));
                    }
                }
                match best_candidate {
                    Some((_, cand)) => {
                        assigned[cand] = true;
                        members.push(cand);
                    }
                    None => break,
                }
            }
            let member_profiles: Vec<&WorkflowProfile> =
                members.iter().map(|&i| &profiles[i]).collect();
            let partitions = self.partition_strategy.partitions(&member_profiles);
            groups.push(PlanGroup {
                workflow_indices: members,
                partitions,
            });
        }
        SchedulePlan { groups }
    }

    /// Greedy packing with an explicit cardinality cap (public so the
    /// harness can sweep cardinality for the paper's Figures 4/5).
    pub fn greedy_with_cap(&self, profiles: &[WorkflowProfile], cap: usize) -> SchedulePlan {
        // Criterion 1: lowest compute utilization first.
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        // See the duration sort in `bestfit_with_cap_memo`: NaN is
        // rejected upstream, and incomparable pairs fall back to index
        // order rather than panicking.
        order.sort_by(|&a, &b| {
            profiles[a]
                .avg_sm_util
                .value()
                .partial_cmp(&profiles[b].avg_sm_util.value())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });

        let cap = cap.clamp(1, self.device.max_mps_clients.max(1));
        let mut assigned = vec![false; profiles.len()];
        let mut groups = Vec::new();
        for &seed in &order {
            if assigned[seed] {
                continue;
            }
            assigned[seed] = true;
            let mut members = vec![seed];
            for &cand in &order {
                if assigned[cand] || members.len() >= cap {
                    continue;
                }
                let mut trial: Vec<&WorkflowProfile> =
                    members.iter().map(|&i| &profiles[i]).collect();
                trial.push(&profiles[cand]);
                // Criteria 2 & 3: stay under 100 % combined compute/BW and
                // under memory capacity.
                let prediction = predict(&self.device, &trial);
                let accepted = prediction.is_compatible();
                if mpshare_obs::enabled() {
                    mpshare_obs::counter_add(mpshare_obs::names::PLAN_CANDIDATES, 1);
                    if !accepted {
                        mpshare_obs::counter_add(mpshare_obs::names::PLAN_REJECTS, 1);
                    }
                    let group = members.clone();
                    mpshare_obs::emit(
                        mpshare_obs::Track::Planner,
                        "plan.candidate",
                        None,
                        None,
                        || {
                            serde_json::json!({
                                "strategy": "greedy",
                                "cap": cap,
                                "group": group,
                                "candidate": cand,
                                "accepted": accepted,
                                "reason": if accepted {
                                    "within combined SM/BW/memory limits"
                                } else {
                                    "interference rule: combined demand over 100%"
                                },
                                "combined_sm": prediction.sm_sum,
                                "combined_bw": prediction.bw_sum,
                            })
                        },
                    );
                }
                if accepted {
                    assigned[cand] = true;
                    members.push(cand);
                }
            }
            let member_profiles: Vec<&WorkflowProfile> =
                members.iter().map(|&i| &profiles[i]).collect();
            let partitions = self.partition_strategy.partitions(&member_profiles);
            groups.push(PlanGroup {
                workflow_indices: members,
                partitions,
            });
        }
        SchedulePlan { groups }
    }

    /// Exhaustive set-partition search, scored by the analytic estimator.
    ///
    /// The restricted-growth-string enumeration is split by fixed-length
    /// prefixes: every prefix roots an independent sub-enumeration, and the
    /// sub-trees are searched on worker threads. Prefixes are generated in
    /// the serial recursion's visit order and reduced in that order with a
    /// strictly-greater comparison, so the winning partition is exactly the
    /// one the serial search returns.
    ///
    /// By default each sub-tree is searched branch-and-bound
    /// ([`BranchAndBound`]): partial groupings carry an admissible score
    /// upper bound, and sub-trees that cannot *strictly* beat the worker's
    /// incumbent are pruned — the surviving leaf visit order and the
    /// strictly-greater incumbent rule are those of the brute force, so
    /// the returned plan is identical ([`Planner::with_exhaustive_pruning`]
    /// switches back to the plain enumeration).
    fn plan_exhaustive(
        &self,
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
        floor: Option<f64>,
    ) -> Result<SchedulePlan> {
        const MAX_N: usize = 12;
        // 4 fixed positions → 15 independent sub-enumerations (Bell(4)).
        const PREFIX_LEN: usize = 4;
        let n = profiles.len();
        if n > MAX_N {
            return Err(Error::InvalidConfig(format!(
                "exhaustive planning supports ≤ {MAX_N} workflows, got {n}"
            )));
        }

        let prefix_len = PREFIX_LEN.min(n);
        let mut prefixes: Vec<(Vec<usize>, usize)> = Vec::new();
        let mut prefix = vec![0usize; prefix_len];
        enumerate_prefixes(&mut prefix, 0, 0, &mut |assign, max_used| {
            prefixes.push((assign.to_vec(), max_used));
        });

        let seq = Self::sequential_baseline(profiles);
        let bound = if self.exhaustive_pruning {
            self.exhaustive_bound(profiles, &seq)
        } else {
            None
        };
        let local_bests = mpshare_par::par_map(&prefixes, |(prefix, max_used)| {
            if self.exhaustive_pruning {
                self.exhaustive_worker_pruned(
                    profiles,
                    &seq,
                    memo,
                    bound.as_ref(),
                    floor,
                    prefix,
                    *max_used,
                )
            } else {
                self.exhaustive_worker_brute(profiles, &seq, memo, prefix, *max_used)
            }
        });

        // Drop sentinel incumbents (a warm floor that no leaf in that
        // worker's sub-tree beat): the floor is strictly below an
        // enumerable leaf's score, so such workers cannot hold the
        // overall winner and the first-best reduction is unchanged.
        let groups = Self::first_best(
            local_bests
                .into_iter()
                .flatten()
                .filter(|(_, groups)| !groups.is_empty()),
        )
        .ok_or_else(|| Error::PlanViolation("no feasible partition exists".into()))?;
        Ok(self.materialize(&groups, profiles))
    }

    /// One worker's plain brute-force sub-enumeration (the reference the
    /// branch-and-bound path is property-tested against).
    fn exhaustive_worker_brute(
        &self,
        profiles: &[WorkflowProfile],
        seq: &GroupEstimate,
        memo: &EstimateMemo,
        prefix: &[usize],
        prefix_max: usize,
    ) -> Option<(f64, Vec<Vec<usize>>)> {
        let n = profiles.len();
        let prefix_len = prefix.len();
        let mut assignment = vec![0usize; n];
        assignment[..prefix_len].copy_from_slice(prefix);
        let mut best: Option<(f64, Vec<Vec<usize>>)> = None;
        let mut groups: Vec<Vec<usize>> = Vec::new();
        // Dense front of the shared memo: with n ≤ 12 every group is
        // an ascending index list below 64, i.e. a subset mask that
        // fits a direct-indexed table. A dense hit is an array load;
        // only the first touch per worker goes through the hashed
        // shard (which dedups the actual estimate across workers).
        let mut dense: Vec<Option<GroupEstimate>> = vec![None; 1usize << n];
        enumerate_partitions(&mut assignment, prefix_len, prefix_max, &mut |assign, k| {
            for g in groups.iter_mut() {
                g.clear();
            }
            if groups.len() < k {
                groups.resize_with(k, Vec::new);
            }
            for (i, &g) in assign.iter().enumerate() {
                groups[g].push(i);
            }
            // Hard constraints: memory and client limit.
            for g in &groups[..k] {
                if g.len() > self.device.max_mps_clients {
                    return;
                }
                let mem: mpshare_types::MemBytes = g.iter().map(|&i| profiles[i].max_memory).sum();
                if mem > self.device.memory_capacity {
                    return;
                }
            }
            // Score the raw member lists: the score is partition-free,
            // so only the overall winner is materialized. The sums run
            // left to right in group-index order, exactly as
            // `score_member_lists` would.
            let mut makespan = 0.0;
            let mut energy = 0.0;
            for g in &groups[..k] {
                let mask: usize = g.iter().fold(0, |m, &i| m | (1 << i));
                let e = dense[mask].get_or_insert_with(|| self.estimate_members(g, profiles, memo));
                makespan += e.makespan.value();
                energy += e.energy.joules();
            }
            let score = self.score_totals(seq, makespan, energy);
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, groups[..k].to_vec()));
            }
        });
        best
    }

    /// One worker's branch-and-bound sub-enumeration: an explicit DFS
    /// mirroring [`enumerate_partitions`]'s visit order, with hard
    /// constraints checked at assignment time (a violating group only
    /// grows down-tree, so every pruned leaf would have early-returned)
    /// and, when `bound` is available, admissible score-bound pruning
    /// against the worker-local incumbent.
    #[allow(clippy::too_many_arguments)]
    fn exhaustive_worker_pruned(
        &self,
        profiles: &[WorkflowProfile],
        seq: &GroupEstimate,
        memo: &EstimateMemo,
        bound: Option<&ExhaustiveBound>,
        floor: Option<f64>,
        prefix: &[usize],
        prefix_max: usize,
    ) -> Option<(f64, Vec<Vec<usize>>)> {
        let n = profiles.len();
        let mut search = BranchAndBound {
            planner: self,
            profiles,
            seq,
            memo,
            bound,
            dense: vec![None; 1usize << n],
            groups: Vec::new(),
            group_mem: Vec::new(),
            group_ms: Vec::new(),
            group_en: Vec::new(),
            // A warm floor enters as a sentinel incumbent (empty member
            // lists): leaves must *strictly* beat it to be recorded, which
            // prunes exactly the sub-trees that cannot contain the winner.
            best: floor.map(|f| (f, Vec::new())),
            n,
        };
        // Seed the fixed prefix positions. A hard-constraint violation
        // here voids the whole sub-tree — exactly as every leaf below it
        // would have early-returned in the brute force.
        for (pos, &g) in prefix.iter().enumerate() {
            search.push_member(pos, g)?;
        }
        search.dfs(prefix.len(), prefix_max);
        search.best
    }

    /// Precomputes the admissible-bound ingredients for one exhaustive
    /// call, or `None` when the preconditions for bound validity do not
    /// hold (negative/non-finite inputs, non-positive baseline) — the
    /// search then runs without score pruning.
    fn exhaustive_bound(
        &self,
        profiles: &[WorkflowProfile],
        seq: &GroupEstimate,
    ) -> Option<ExhaustiveBound> {
        let seq_makespan = seq.makespan.value();
        let seq_energy = seq.energy.joules();
        let idle = self.device.idle_power;
        // Every comparison is written positively so NaN anywhere fails it.
        let preconditions_ok = self.sharing_overhead >= 0.0
            && seq_makespan > 0.0
            && seq_makespan.is_finite()
            && seq_energy > 0.0
            && seq_energy.is_finite()
            && idle.watts() >= 0.0
            && idle.watts().is_finite();
        if !preconditions_ok {
            return None;
        }
        let n = profiles.len();
        let mut r_total = 0.0;
        for p in profiles {
            let dur = p.duration.value();
            let sm = p.avg_sm_util.value();
            let bw = p.avg_bw_util.value();
            let dyn_e = p.dynamic_energy(idle).joules();
            let ok = dur >= 0.0
                && dur.is_finite()
                && sm >= 0.0
                && sm.is_finite()
                && bw >= 0.0
                && bw.is_finite()
                && dyn_e >= 0.0
                && dyn_e.is_finite();
            if !ok {
                return None;
            }
            // Any group's makespan ≥ max_dur · (Σsm/100) ≥ Σ dur_i·sm_i/100,
            // so the whole-queue sum floors every partition's total.
            r_total += dur * (sm / 100.0);
        }
        let mut dyn_suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            dyn_suffix[i] = profiles[i].dynamic_energy(idle).joules() + dyn_suffix[i + 1];
        }
        Some(ExhaustiveBound {
            // The bounds combine float sums folded in a different order
            // than the leaf scores; the (1 − 1e-9) deflation swamps the
            // ~1e-15 relative rounding drift, keeping them admissible
            // bit for bit.
            r_total: r_total * (1.0 - 1e-9),
            dyn_suffix,
            seq_makespan,
            seq_energy,
        })
    }

    fn materialize(&self, groups: &[Vec<usize>], profiles: &[WorkflowProfile]) -> SchedulePlan {
        SchedulePlan {
            groups: groups
                .iter()
                .map(|members| {
                    let member_profiles: Vec<&WorkflowProfile> =
                        members.iter().map(|&i| &profiles[i]).collect();
                    PlanGroup {
                        workflow_indices: members.clone(),
                        partitions: self.partition_strategy.partitions(&member_profiles),
                    }
                })
                .collect(),
        }
    }

    /// Scores a plan with the analytic estimator under the priority.
    pub fn score_plan(&self, plan: &SchedulePlan, profiles: &[WorkflowProfile]) -> f64 {
        let seq = Self::sequential_baseline(profiles);
        let mut makespan = 0.0;
        let mut energy = 0.0;
        for g in &plan.groups {
            let members: Vec<&WorkflowProfile> =
                g.workflow_indices.iter().map(|&i| &profiles[i]).collect();
            let e = estimate_group(&self.device, &members, self.sharing_overhead);
            makespan += e.makespan.value();
            energy += e.energy.joules();
        }
        self.score_totals(&seq, makespan, energy)
    }

    /// Memoized form of [`Planner::score_plan`]: bit-identical result,
    /// with per-group estimates fetched through (and cached in) `memo`.
    pub fn score_plan_memo(
        &self,
        plan: &SchedulePlan,
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
    ) -> f64 {
        let seq = Self::sequential_baseline(profiles);
        self.score_groups(plan, profiles, &seq, memo)
    }

    /// The score's reference point: everything run sequentially.
    pub(crate) fn sequential_baseline(profiles: &[WorkflowProfile]) -> GroupEstimate {
        let all: Vec<&WorkflowProfile> = profiles.iter().collect();
        estimate_sequential(&all)
    }

    /// Memoized estimate of one ordered member list. A hit returns the
    /// value computed by the identical `estimate_group` call, so this is
    /// interchangeable bit for bit with computing from scratch.
    pub(crate) fn estimate_members(
        &self,
        members: &[usize],
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
    ) -> GroupEstimate {
        memo.get_or_compute(GroupKey::new(members), || {
            let refs: Vec<&WorkflowProfile> = members.iter().map(|&i| &profiles[i]).collect();
            estimate_group(&self.device, &refs, self.sharing_overhead)
        })
    }

    /// Final score from summed per-group totals against the sequential
    /// baseline (the tail of [`Planner::score_plan`]).
    pub(crate) fn score_totals(&self, seq: &GroupEstimate, makespan: f64, energy: f64) -> f64 {
        if makespan <= 0.0 || energy <= 0.0 {
            return 0.0;
        }
        let throughput = seq.makespan.value() / makespan;
        let efficiency = seq.energy.joules() / energy;
        self.priority.score(throughput, efficiency)
    }

    fn score_groups(
        &self,
        plan: &SchedulePlan,
        profiles: &[WorkflowProfile],
        seq: &GroupEstimate,
        memo: &EstimateMemo,
    ) -> f64 {
        self.score_member_lists(
            plan.groups.iter().map(|g| g.workflow_indices.as_slice()),
            profiles,
            seq,
            memo,
        )
    }

    /// Scores raw member lists, summing group totals left to right in
    /// list order — the same order [`Planner::score_plan`] uses.
    fn score_member_lists<'m>(
        &self,
        groups: impl IntoIterator<Item = &'m [usize]>,
        profiles: &[WorkflowProfile],
        seq: &GroupEstimate,
        memo: &EstimateMemo,
    ) -> f64 {
        let mut makespan = 0.0;
        let mut energy = 0.0;
        for members in groups {
            let e = self.estimate_members(members, profiles, memo);
            makespan += e.makespan.value();
            energy += e.energy.joules();
        }
        self.score_totals(seq, makespan, energy)
    }

    /// Computes the warm incumbent floor for the exhaustive search: the
    /// largest float strictly below the score of the previous plan's
    /// translated partition, or `None` when that partition is not a
    /// feasible enumerable leaf of the new queue (so no floor can be
    /// proven) or pruning is off (no incumbent seeding without pruning).
    ///
    /// Why the floor preserves bit-identity: the seeded partition is
    /// itself an enumerable leaf scoring `s0 > floor`, so the true maximum
    /// is `≥ s0 > floor`. A worker whose local best never strictly exceeds
    /// the floor therefore cannot contain the overall winner; dropping its
    /// sentinel leaves the first-best reduction's result unchanged, and a
    /// worker that does beat the floor records the same first strictly
    /// greatest leaf it would have found cold.
    fn exhaustive_floor(
        &self,
        prev_groups: &[Vec<usize>],
        profiles: &[WorkflowProfile],
        memo: &EstimateMemo,
    ) -> Option<f64> {
        if !self.exhaustive_pruning {
            return None;
        }
        let n = profiles.len();
        let mut covered = vec![false; n];
        let mut canonical: Vec<Vec<usize>> = Vec::with_capacity(prev_groups.len());
        for group in prev_groups {
            if group.is_empty() || group.len() > self.device.max_mps_clients {
                return None;
            }
            let mut members = group.clone();
            members.sort_unstable();
            for &i in &members {
                if i >= n || covered[i] {
                    return None;
                }
                covered[i] = true;
            }
            let mem: mpshare_types::MemBytes =
                members.iter().map(|&i| profiles[i].max_memory).sum();
            if mem > self.device.memory_capacity {
                return None;
            }
            canonical.push(members);
        }
        if !covered.iter().all(|&c| c) {
            return None;
        }
        // Leaf order: the restricted-growth enumeration assigns group ids
        // by first appearance, so a leaf's groups sort by minimal member
        // and each group's members ascend. Scoring in exactly that order
        // makes `s0` the leaf's bit-exact score.
        canonical.sort_unstable_by_key(|g| g[0]);
        let seq = Self::sequential_baseline(profiles);
        let s0 =
            self.score_member_lists(canonical.iter().map(|g| g.as_slice()), profiles, &seq, memo);
        if s0 > 0.0 && s0.is_finite() {
            // Largest float strictly below a positive finite s0
            // (`f64::next_down`, spelled out for the pinned toolchain).
            Some(f64::from_bits(s0.to_bits() - 1))
        } else {
            None
        }
    }
}

/// Enumerates restricted-growth-string prefixes: like
/// [`enumerate_partitions`] but visits every *partial* assignment of the
/// buffer's length together with its `max_used` watermark, letting the
/// exhaustive search split the full enumeration into independent sub-trees.
fn enumerate_prefixes(
    prefix: &mut Vec<usize>,
    pos: usize,
    max_used: usize,
    visit: &mut impl FnMut(&[usize], usize),
) {
    if pos == prefix.len() {
        visit(prefix, max_used);
        return;
    }
    for g in 0..=max_used {
        prefix[pos] = g;
        let next_max = max_used.max(g + 1);
        enumerate_prefixes(prefix, pos + 1, next_max, visit);
    }
}

/// Enumerates set partitions via restricted-growth strings: position `i`
/// may use any group id `0..=max_used+1`.
fn enumerate_partitions(
    assignment: &mut Vec<usize>,
    pos: usize,
    max_used: usize,
    visit: &mut impl FnMut(&[usize], usize),
) {
    if pos == assignment.len() {
        visit(assignment, max_used);
        return;
    }
    for g in 0..=max_used {
        assignment[pos] = g;
        let next_max = max_used.max(g + 1);
        enumerate_partitions(assignment, pos + 1, next_max, visit);
    }
}

/// Ingredients of the exhaustive search's admissible score bound, computed
/// once per [`Planner::plan_exhaustive`] call.
///
/// All bounds are *lower* bounds on a completed partition's totals; because
/// every supported [`MetricPriority`] score is monotone non-decreasing in
/// `seq/total` for positive inputs, dividing the (positive) sequential
/// baseline by them yields an upper bound on any descendant leaf's score.
///
/// * `r_total` — `Σᵢ durᵢ·smᵢ/100` over the whole queue, deflated by
///   `1 − 1e-9`. Any group's makespan is at least `max_dur · Σ_g sm/100 ≥
///   Σ_{i∈g} durᵢ·smᵢ/100` (contention floors at `Σsm/100`, overhead at 1),
///   so the queue-wide sum floors every partition's makespan total. The
///   deflation swamps the ≤ ~1e-14 relative drift from re-associating the
///   float sums, keeping the floor admissible bit for bit.
/// * `dyn_suffix[i]` — `Σ_{j ≥ i} dynamic_energy(j)`: dynamic energies are
///   conserved under grouping (each appears in exactly one group's energy),
///   so unassigned positions contribute at least this much energy.
struct ExhaustiveBound {
    r_total: f64,
    dyn_suffix: Vec<f64>,
    seq_makespan: f64,
    seq_energy: f64,
}

/// Saved per-group state for undoing one [`BranchAndBound::push_member`].
struct SavedGroup {
    ms: f64,
    en: f64,
    mem: mpshare_types::MemBytes,
}

/// Depth-first branch-and-bound over one restricted-growth-string sub-tree.
///
/// The DFS visits leaves in exactly [`enumerate_partitions`]'s order and
/// applies the same strictly-greater incumbent rule, so with pruning that
/// only removes leaves scoring ≤ the incumbent (which can never *replace*
/// it), the surviving incumbent sequence — and hence the final best — is
/// identical to the brute force's.
///
/// Hard constraints (client count, memory) are checked as members are
/// assigned: both only grow as a group gains members, so a violation at
/// assignment time implies every leaf below would have failed the brute
/// force's leaf check, making the skip exact even without a score bound.
struct BranchAndBound<'a> {
    planner: &'a Planner,
    profiles: &'a [WorkflowProfile],
    seq: &'a GroupEstimate,
    memo: &'a EstimateMemo,
    bound: Option<&'a ExhaustiveBound>,
    /// Dense mask-indexed estimate table, as in the brute-force worker.
    dense: Vec<Option<GroupEstimate>>,
    /// Current partial grouping; slots beyond the live `max_used` may
    /// linger empty (with zeroed totals) after backtracking.
    groups: Vec<Vec<usize>>,
    group_mem: Vec<mpshare_types::MemBytes>,
    group_ms: Vec<f64>,
    group_en: Vec<f64>,
    best: Option<(f64, Vec<Vec<usize>>)>,
    n: usize,
}

impl BranchAndBound<'_> {
    /// Assigns position `pos` to group `g`, updating the group's cached
    /// estimate. Returns `None` (state unchanged) when the assignment
    /// violates a hard constraint.
    fn push_member(&mut self, pos: usize, g: usize) -> Option<SavedGroup> {
        if g == self.groups.len() {
            self.groups.push(Vec::new());
            self.group_mem.push(mpshare_types::MemBytes::ZERO);
            self.group_ms.push(0.0);
            self.group_en.push(0.0);
        }
        if self.groups[g].len() + 1 > self.planner.device.max_mps_clients {
            return None;
        }
        let mem = self.group_mem[g] + self.profiles[pos].max_memory;
        if mem > self.planner.device.memory_capacity {
            return None;
        }
        let saved = SavedGroup {
            ms: self.group_ms[g],
            en: self.group_en[g],
            mem: self.group_mem[g],
        };
        self.groups[g].push(pos);
        self.group_mem[g] = mem;
        let mask: usize = self.groups[g].iter().fold(0, |m, &i| m | (1 << i));
        let (planner, profiles, memo) = (self.planner, self.profiles, self.memo);
        let groups = &self.groups;
        let e = self.dense[mask]
            .get_or_insert_with(|| planner.estimate_members(&groups[g], profiles, memo));
        self.group_ms[g] = e.makespan.value();
        self.group_en[g] = e.energy.joules();
        Some(saved)
    }

    /// Undoes the matching [`BranchAndBound::push_member`].
    fn pop_member(&mut self, pos: usize, g: usize, saved: SavedGroup) {
        let popped = self.groups[g].pop();
        debug_assert_eq!(popped, Some(pos));
        self.group_mem[g] = saved.mem;
        self.group_ms[g] = saved.ms;
        self.group_en[g] = saved.en;
    }

    /// Whether the sub-tree below the current partial grouping (positions
    /// `0..=pos` assigned, groups `0..used` in use) can be discarded: its
    /// admissible score upper bound fails to *strictly* beat the incumbent.
    fn pruned(&self, pos: usize, used: usize) -> bool {
        let (Some(b), Some((incumbent, _))) = (self.bound, self.best.as_ref()) else {
            return false;
        };
        // Exact float lower bound on any descendant leaf's totals: per-group
        // estimates are append-monotone (all inputs non-negative — checked
        // by `exhaustive_bound`), float folds of non-negative terms are
        // monotone in each term, and the leaf folds groups in this same
        // index order, so the partial fold is a true prefix bound.
        let mut ms_part = 0.0;
        let mut en_part = 0.0;
        for g in 0..used {
            ms_part += self.group_ms[g];
            en_part += self.group_en[g];
        }
        let ms_lb = ms_part.max(b.r_total);
        // Unassigned dynamic energies land in some group eventually; the
        // deflation covers the fold-reordering drift (see ExhaustiveBound).
        let en_lb = (en_part + b.dyn_suffix[pos + 1]) * (1.0 - 1e-9);
        if !(ms_lb > 0.0 && en_lb > 0.0) {
            return false;
        }
        // Upper-bound the leaf score directly through the priority (NOT
        // `score_totals`: its degenerate 0.0 return is not an upper bound,
        // but degenerate leaves score 0.0 ≤ any ub, so they prune safely).
        let ub = self
            .planner
            .priority
            .score(b.seq_makespan / ms_lb, b.seq_energy / en_lb);
        ub <= *incumbent
    }

    /// Recursive search over positions `pos..n`, mirroring
    /// [`enumerate_partitions`]'s `for g in 0..=max_used` order.
    fn dfs(&mut self, pos: usize, max_used: usize) {
        if pos == self.n {
            // Leaf: same left-to-right group-order fold and strictly-greater
            // incumbent rule as the brute-force visit.
            let mut makespan = 0.0;
            let mut energy = 0.0;
            for g in 0..max_used {
                makespan += self.group_ms[g];
                energy += self.group_en[g];
            }
            let score = self.planner.score_totals(self.seq, makespan, energy);
            if self.best.as_ref().is_none_or(|(s, _)| score > *s) {
                self.best = Some((score, self.groups[..max_used].to_vec()));
            }
            return;
        }
        for g in 0..=max_used {
            let Some(saved) = self.push_member(pos, g) else {
                continue;
            };
            let next_max = max_used.max(g + 1);
            if !self.pruned(pos, next_max) {
                self.dfs(pos + 1, next_max);
            }
            self.pop_member(pos, g, saved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, MemBytes, Percent, Power, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn profile(label: &str, sm: f64, bw: f64, mem_gib: u64, duration: f64) -> WorkflowProfile {
        let power = 75.0 + 1.75 * sm + bw;
        WorkflowProfile {
            label: label.into(),
            task_count: 3,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(bw),
            max_memory: MemBytes::from_gib(mem_gib),
            duration: Seconds::new(duration),
            energy: Energy::from_joules(power * duration),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.8,
            saturation_partition: mpshare_types::Fraction::new(0.9),
        }
    }

    fn planner(priority: MetricPriority) -> Planner {
        Planner::new(dev(), priority)
    }

    #[test]
    fn warm_diff_detects_single_changes() {
        // Unchanged queue.
        assert_eq!(warm_diff(&[1, 2, 3], &[1, 2, 3]), Some((None, None)));
        // Single departures: front, middle, back.
        assert_eq!(warm_diff(&[1, 2, 3], &[2, 3]), Some((Some(0), None)));
        assert_eq!(warm_diff(&[1, 2, 3], &[1, 3]), Some((Some(1), None)));
        assert_eq!(warm_diff(&[1, 2, 3], &[1, 2]), Some((Some(2), None)));
        // Single arrivals: front, middle, back.
        assert_eq!(warm_diff(&[2, 3], &[1, 2, 3]), Some((None, Some(0))));
        assert_eq!(warm_diff(&[1, 3], &[1, 2, 3]), Some((None, Some(1))));
        assert_eq!(warm_diff(&[1, 2], &[1, 2, 3]), Some((None, Some(2))));
        // Leave + join at the same length.
        assert_eq!(warm_diff(&[1, 2, 3], &[2, 3, 4]), Some((Some(0), Some(2))));
        assert_eq!(warm_diff(&[1, 2, 3], &[4, 1, 2]), Some((Some(2), Some(0))));
        assert_eq!(warm_diff(&[1, 2, 3], &[1, 4, 3]), Some((Some(1), Some(1))));
        // Singleton handoff is still one out, one in.
        assert_eq!(warm_diff(&[7], &[9]), Some((Some(0), Some(0))));
    }

    #[test]
    fn warm_diff_rejects_bulk_changes() {
        // Two departures, two arrivals, or a reorder → cold.
        assert_eq!(warm_diff(&[1, 2, 3, 4], &[1, 4]), None);
        assert_eq!(warm_diff(&[1, 2], &[1, 2, 3, 4]), None);
        assert_eq!(warm_diff(&[1, 2, 3], &[3, 2, 1]), None);
        assert_eq!(warm_diff(&[1, 2, 3], &[2, 1, 4]), None);
        assert_eq!(warm_diff(&[1, 2], &[3, 4]), None);
    }

    #[test]
    fn partition_enumeration_counts_bell_numbers() {
        // Bell(4) = 15 set partitions.
        let mut count = 0;
        let mut a = vec![0usize; 4];
        enumerate_partitions(&mut a, 0, 0, &mut |_, _| count += 1);
        assert_eq!(count, 15);
    }

    #[test]
    fn greedy_pairs_low_utilization_first() {
        // Two light, two heavy. Throughput priority (cap 2): the two light
        // ones pair up, the heavies are kept apart (SM sums > 100).
        let profiles = vec![
            profile("light-a", 10.0, 1.0, 2, 10.0),
            profile("heavy-a", 90.0, 10.0, 5, 10.0),
            profile("light-b", 15.0, 1.0, 2, 10.0),
            profile("heavy-b", 85.0, 10.0, 5, 10.0),
        ];
        let plan = planner(MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        // Find the group containing light-a (index 0): must also hold 2.
        let g = plan
            .groups
            .iter()
            .find(|g| g.workflow_indices.contains(&0))
            .unwrap();
        assert!(g.workflow_indices.contains(&2), "groups: {:?}", plan.groups);
        // Heavies never share a group.
        for g in &plan.groups {
            assert!(!(g.workflow_indices.contains(&1) && g.workflow_indices.contains(&3)));
        }
    }

    #[test]
    fn throughput_priority_respects_cardinality_two() {
        let profiles: Vec<WorkflowProfile> = (0..6)
            .map(|i| profile(&format!("w{i}"), 5.0, 0.5, 1, 10.0))
            .collect();
        let plan = planner(MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        assert_eq!(plan.max_cardinality(), 2);
        assert_eq!(plan.groups.len(), 3);
    }

    #[test]
    fn energy_priority_packs_wide() {
        let profiles: Vec<WorkflowProfile> = (0..6)
            .map(|i| profile(&format!("w{i}"), 5.0, 0.5, 1, 10.0))
            .collect();
        let plan = planner(MetricPriority::Energy)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        // 6 × 5 % = 30 % SM: all six fit in one group.
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.max_cardinality(), 6);
    }

    #[test]
    fn interference_rule_limits_group_growth() {
        // 40 % each: only two fit under the 100 % rule (3×40 = 120).
        let profiles: Vec<WorkflowProfile> = (0..4)
            .map(|i| profile(&format!("w{i}"), 40.0, 2.0, 1, 10.0))
            .collect();
        let plan = planner(MetricPriority::Energy)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        assert_eq!(plan.max_cardinality(), 2);
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn memory_constraint_is_hard() {
        // Two 60 GiB workflows cannot share an 80 GiB device.
        let profiles = vec![
            profile("big-a", 10.0, 1.0, 60, 10.0),
            profile("big-b", 10.0, 1.0, 60, 10.0),
        ];
        let plan = planner(MetricPriority::Energy)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        assert_eq!(plan.groups.len(), 2);
        plan.validate(&dev(), &profiles).unwrap();
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy_score() {
        let profiles = vec![
            profile("a", 10.0, 1.0, 2, 10.0),
            profile("b", 30.0, 5.0, 4, 8.0),
            profile("c", 55.0, 10.0, 8, 12.0),
            profile("d", 70.0, 20.0, 8, 6.0),
            profile("e", 20.0, 2.0, 2, 9.0),
        ];
        let p = planner(MetricPriority::balanced_product());
        let greedy = p.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let exhaustive = p.plan(&profiles, PlannerStrategy::Exhaustive).unwrap();
        let gs = p.score_plan(&greedy, &profiles);
        let es = p.score_plan(&exhaustive, &profiles);
        assert!(es >= gs - 1e-9, "exhaustive {es} < greedy {gs}");
        // Greedy honours the paper's soft interference rule (never groups
        // past 100 % combined SM), which the unconstrained exhaustive
        // search may profitably violate on energy-weighted scores — so
        // greedy is bounded away from optimal but must stay in its
        // neighbourhood.
        assert!(gs >= 0.55 * es, "greedy {gs} far from optimal {es}");
    }

    #[test]
    fn exhaustive_rejects_oversized_queues() {
        let profiles: Vec<WorkflowProfile> = (0..13)
            .map(|i| profile(&format!("w{i}"), 5.0, 0.5, 1, 10.0))
            .collect();
        let err = planner(MetricPriority::Energy)
            .plan(&profiles, PlannerStrategy::Exhaustive)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn plans_validate_against_their_queue() {
        let profiles = vec![
            profile("a", 10.0, 1.0, 2, 10.0),
            profile("b", 20.0, 1.0, 2, 10.0),
        ];
        let plan = planner(MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        plan.validate(&dev(), &profiles).unwrap();

        // Tampered plan: duplicate index.
        let mut bad = plan.clone();
        bad.groups[0].workflow_indices = vec![0, 0];
        bad.groups[0].partitions = vec![Fraction::ONE, Fraction::ONE];
        assert!(bad.validate(&dev(), &profiles).is_err());

        // Tampered plan: missing workflow.
        let bad = SchedulePlan {
            groups: vec![PlanGroup {
                workflow_indices: vec![0],
                partitions: vec![Fraction::ONE],
            }],
        };
        assert!(bad.validate(&dev(), &profiles).is_err());
    }

    #[test]
    fn bestfit_accepts_profitable_mild_oversubscription() {
        // Two long mid-utilization workflows whose SM sum (125 %) violates
        // the paper's soft interference rule. The rule leaves them solo;
        // the estimator sees that a 25 % stretch on 100 s of overlap still
        // saves 75 s and pairs them.
        let profiles = vec![
            profile("light-a", 10.0, 1.0, 2, 10.0),
            profile("light-b", 12.0, 1.0, 2, 10.0),
            profile("mid-a", 60.0, 5.0, 8, 100.0),
            profile("mid-b", 65.0, 5.0, 8, 100.0),
        ];
        let p = planner(MetricPriority::balanced_product());
        let greedy = p.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let bestfit = p.plan(&profiles, PlannerStrategy::BestFit).unwrap();
        bestfit.validate(&dev(), &profiles).unwrap();
        // Greedy keeps the mids apart (60 + 65 > 100).
        for g in &greedy.groups {
            assert!(!(g.workflow_indices.contains(&2) && g.workflow_indices.contains(&3)));
        }
        // Best-fit pairs them and scores strictly higher.
        assert!(bestfit
            .groups
            .iter()
            .any(|g| g.workflow_indices.contains(&2) && g.workflow_indices.contains(&3)));
        let gs = p.score_plan(&greedy, &profiles);
        let bs = p.score_plan(&bestfit, &profiles);
        assert!(bs > gs, "bestfit {bs} !> greedy {gs}");
    }

    #[test]
    fn auto_takes_the_better_of_both() {
        let profiles = vec![
            profile("a", 10.0, 1.0, 2, 10.0),
            profile("b", 30.0, 5.0, 4, 8.0),
            profile("c", 55.0, 10.0, 8, 12.0),
            profile("d", 70.0, 20.0, 8, 6.0),
        ];
        let p = planner(MetricPriority::balanced_product());
        let auto = p.plan(&profiles, PlannerStrategy::Auto).unwrap();
        let gs = p.score_plan(
            &p.plan(&profiles, PlannerStrategy::Greedy).unwrap(),
            &profiles,
        );
        let bs = p.score_plan(
            &p.plan(&profiles, PlannerStrategy::BestFit).unwrap(),
            &profiles,
        );
        let auto_score = p.score_plan(&auto, &profiles);
        assert!(auto_score >= gs - 1e-12);
        assert!(auto_score >= bs - 1e-12);
    }

    #[test]
    fn bestfit_respects_hard_memory_constraint() {
        let profiles = vec![
            profile("big-a", 10.0, 1.0, 60, 10.0),
            profile("big-b", 10.0, 1.0, 60, 10.0),
        ];
        let plan = planner(MetricPriority::Energy)
            .plan(&profiles, PlannerStrategy::BestFit)
            .unwrap();
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn empty_queue_is_an_error() {
        assert!(planner(MetricPriority::Energy)
            .plan(&[], PlannerStrategy::Greedy)
            .is_err());
    }

    /// Non-finite profile metrics used to reach the cap-candidate sort and
    /// panic on `partial_cmp().expect("finite durations")`; they must now
    /// come back as a typed error naming the profile and field.
    #[test]
    fn non_finite_profiles_are_typed_errors_not_panics() {
        // The unit types reject NaN at construction, but infinite
        // durations and NaN plain-f64 fields are constructible and used
        // to reach the sort comparators and panic there.
        for (field, mutate) in [
            (
                "duration",
                Box::new(|p: &mut WorkflowProfile| p.duration = Seconds::new(f64::INFINITY))
                    as Box<dyn Fn(&mut WorkflowProfile)>,
            ),
            (
                "busy_fraction",
                Box::new(|p: &mut WorkflowProfile| p.busy_fraction = f64::NAN),
            ),
        ] {
            let mut profiles = vec![
                profile("a", 10.0, 1.0, 2, 10.0),
                profile("b", 30.0, 5.0, 4, 8.0),
            ];
            mutate(&mut profiles[1]);
            for strategy in [
                PlannerStrategy::Greedy,
                PlannerStrategy::BestFit,
                PlannerStrategy::Auto,
            ] {
                let err = planner(MetricPriority::balanced_product())
                    .plan(&profiles, strategy)
                    .unwrap_err();
                let msg = err.to_string();
                assert!(
                    matches!(err, Error::InvalidConfig(_)),
                    "{strategy:?}: {msg}"
                );
                assert!(
                    msg.contains("profile 1") && msg.contains("b") && msg.contains(field),
                    "{strategy:?}: error must name the profile and field: {msg}"
                );
            }
        }
    }

    /// A device reporting zero MPS client capacity used to panic inside
    /// `cap.clamp(1, 0)`; it must plan (solo groups) or error, never panic.
    #[test]
    fn zero_client_capacity_device_does_not_panic() {
        let mut device = dev();
        device.max_mps_clients = 0;
        let profiles = vec![
            profile("a", 10.0, 1.0, 2, 10.0),
            profile("b", 30.0, 5.0, 4, 8.0),
        ];
        let p = Planner::new(device, MetricPriority::Energy);
        for strategy in [PlannerStrategy::Greedy, PlannerStrategy::BestFit] {
            if let Ok(plan) = p.plan(&profiles, strategy) {
                for g in &plan.groups {
                    assert_eq!(g.workflow_indices.len(), 1, "{strategy:?} grouped anyway");
                }
            }
        }
    }

    #[test]
    fn rightsized_partitions_accompany_groups() {
        let profiles = vec![
            profile("light", 10.0, 1.0, 2, 10.0),
            profile("heavy", 80.0, 5.0, 4, 10.0),
        ];
        let plan = planner(MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        for g in &plan.groups {
            assert_eq!(g.partitions.len(), g.workflow_indices.len());
            for p in &g.partitions {
                assert!(p.value() > 0.0 && p.value() <= 1.0);
            }
        }
    }
}
