//! `mpshare-core` — the paper's contribution: a granularity- and
//! interference-aware GPU co-scheduler using CUDA MPS.
//!
//! The scheduling approach (paper §IV):
//!
//! 1. **Offline profiling** (`mpshare-profiler`) produces per-task
//!    utilization/power profiles; [`wprofile`] aggregates them to workflow
//!    granularity.
//! 2. **Interference prediction** ([`interference`]): two workflows are
//!    predicted to interfere if their combined average SM utilization
//!    exceeds 100 %, combined average memory-bandwidth utilization exceeds
//!    100 %, or combined maximum memory exceeds device capacity.
//! 3. **Collocation planning** ([`planner`]): workflows with the lowest
//!    compute utilization are prioritized for co-scheduling; total compute
//!    utilization is kept under 100 %; combined memory stays under
//!    capacity; and the number of MPS clients follows the metric priority
//!    ([`policy`]): at most 2 for throughput, up to the 48-client maximum
//!    for energy efficiency.
//! 4. **Right-sizing** ([`rightsize`]): per-client MPS partitions (active
//!    thread percentages) are sized from the profiled SM demand, because
//!    partition granularity determines the benefit of sharing (Fig. 1).
//! 5. **Execution and evaluation** ([`executor`], [`metrics`]): plans run
//!    on the simulator; throughput and energy efficiency are measured
//!    relative to sequential scheduling, with product metrics
//!    ([`metrics::ProductMetric`]) to trade the two off (§IV-C).
//!
//! [`baseline`] provides the comparison points: sequential scheduling,
//! naive FIFO MPS packing, and time-sliced sharing.

pub mod anneal;
pub mod baseline;
pub mod deps;
pub mod estimate;
pub mod executor;
pub mod interference;
pub mod memo;
pub mod metrics;
pub mod node;
pub mod online;
pub mod planner;
pub mod policy;
pub mod recommend;
pub mod rightsize;
pub mod wprofile;

pub use anneal::{anneal, AnnealConfig};
pub use baseline::{fifo_plan, single_group_plan};
pub use deps::{plan_with_dependencies, validate_dependencies, Dependency};
pub use estimate::{estimate_group, GroupEstimate};
pub use executor::{EvaluationReport, Executor, ExecutorConfig, RunOutcome, WorkflowLatency};
pub use interference::{predict, InterferenceKind, InterferenceReport};
pub use memo::{EstimateMemo, GroupKey, MemoStats};
pub use metrics::{Metrics, ProductMetric};
pub use node::{
    distribute_plan, distribute_plan_heterogeneous, relative_throughput, HeteroNodeExecutor,
    NodeExecutor, NodeOutcome, NodePlan,
};
pub use online::{
    ArrivingWorkflow, DispatchRecord, OnlineFaultModel, OnlineOutcome, OnlineScheduler,
    RecoveryPolicy,
};
pub use planner::{PlanGroup, PlanWarmState, Planner, PlannerStrategy, SchedulePlan};
pub use policy::MetricPriority;
pub use recommend::{advise, Advice};
pub use rightsize::PartitionStrategy;
pub use wprofile::{workflow_profile, WorkflowProfile};
