//! Plan execution and evaluation on the simulator.
//!
//! The executor materializes workflow specs into client programs, runs
//! them under a schedule plan (MPS groups, one after another), under
//! time-slicing, or sequentially, and computes the paper's relative
//! metrics (§IV-C) from the raw outcomes.

use crate::metrics::Metrics;
use crate::planner::SchedulePlan;
use mpshare_gpusim::{DeviceSpec, RunResult};
use mpshare_mps::{GpuRunner, GpuSharing, TimeSliceConfig};
use mpshare_types::{Energy, IdAllocator, Percent, Power, Result, Seconds};
use mpshare_workloads::WorkflowSpec;
use serde::{Deserialize, Serialize};

/// Default device-level per-co-runner MPS sharing overhead. The dominant
/// co-runner costs are modeled per workload (each kernel's
/// `client_sensitivity` — launch-path and scheduler contention under MPS);
/// this residual covers what is workload-independent. Ablation benches
/// sweep it.
pub const DEFAULT_MPS_OVERHEAD: f64 = 0.002;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    pub device: DeviceSpec,
    /// Per-co-runner MPS overhead (see [`DEFAULT_MPS_OVERHEAD`]).
    pub sharing_overhead: f64,
    /// Time-slicing parameters for the time-sliced comparison runs.
    pub timeslice: TimeSliceConfig,
    /// Device the workloads were profiled/calibrated on, when different
    /// from the execution device (heterogeneous nodes). Programs are built
    /// against this device and carry it as their reference, so executing
    /// on `device` rescales demands and speeds.
    pub calibration_device: Option<DeviceSpec>,
}

impl ExecutorConfig {
    pub fn new(device: DeviceSpec) -> Self {
        ExecutorConfig {
            device,
            sharing_overhead: DEFAULT_MPS_OVERHEAD,
            timeslice: TimeSliceConfig::driver_default(),
            calibration_device: None,
        }
    }

    pub fn with_sharing_overhead(mut self, o: f64) -> Self {
        self.sharing_overhead = o;
        self
    }

    /// Sets the calibration (profiling) device for heterogeneous nodes.
    pub fn with_calibration_device(mut self, device: DeviceSpec) -> Self {
        self.calibration_device = Some(device);
        self
    }

    /// The device programs are built against.
    pub fn build_device(&self) -> &DeviceSpec {
        self.calibration_device.as_ref().unwrap_or(&self.device)
    }
}

/// Raw outcome of one scheduling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    pub makespan: Seconds,
    pub energy: Energy,
    pub capped_fraction: f64,
    pub tasks: usize,
    pub avg_power: Power,
    pub avg_sm_util: Percent,
}

impl RunOutcome {
    fn from_result(r: &RunResult) -> Self {
        RunOutcome {
            makespan: r.makespan,
            energy: r.total_energy,
            capped_fraction: r.telemetry.capped_fraction(),
            tasks: r.tasks_completed,
            avg_power: r.telemetry.avg_power(),
            avg_sm_util: r.telemetry.avg_sm_util(),
        }
    }

    /// Combines sequential phases (groups run back to back): times and
    /// energies add; fractions weight by time.
    ///
    /// A chain of zero total duration (no phases, or all phases empty)
    /// yields neutral zeros for the time-weighted fields — never NaN —
    /// and the downstream ratio metrics treat that zero makespan as
    /// trivially fast, not infinitely slow (see [`Metrics::relative`]).
    fn chain(outcomes: &[RunOutcome]) -> RunOutcome {
        let total_time: f64 = outcomes.iter().map(|o| o.makespan.value()).sum();
        let energy: f64 = outcomes.iter().map(|o| o.energy.joules()).sum();
        let capped: f64 = outcomes
            .iter()
            .map(|o| o.capped_fraction * o.makespan.value())
            .sum();
        let sm: f64 = outcomes
            .iter()
            .map(|o| o.avg_sm_util.value() * o.makespan.value())
            .sum();
        let tasks = outcomes.iter().map(|o| o.tasks).sum();
        RunOutcome {
            makespan: Seconds::new(total_time),
            energy: Energy::from_joules(energy),
            capped_fraction: if total_time > 0.0 {
                capped / total_time
            } else {
                0.0
            },
            tasks,
            avg_power: if total_time > 0.0 {
                Power::from_watts(energy / total_time)
            } else {
                Power::ZERO
            },
            avg_sm_util: Percent::clamped(if total_time > 0.0 {
                sm / total_time
            } else {
                0.0
            }),
        }
    }
}

/// Per-workflow latency under a shared schedule.
///
/// The paper's §VI caveat: "if the latency of any individual workflow is
/// most important then one should carefully evaluate the cost and benefit
/// of concurrent execution" — these numbers are that evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowLatency {
    /// Index into the evaluated queue.
    pub workflow: usize,
    /// Completion time measured from the start of the whole schedule.
    pub turnaround: Seconds,
    /// The workflow's solo wall-clock time (exclusive GPU).
    pub solo: Seconds,
}

impl WorkflowLatency {
    /// Normalized turnaround: how many times its solo duration the
    /// workflow waited+ran under the shared schedule.
    ///
    /// Degenerate denominators follow the workspace-wide convention (see
    /// [`Metrics::relative`]): a zero-duration solo run that also finished
    /// instantly under sharing has slowdown `1.0` (trivially unchanged),
    /// while any positive turnaround against a zero solo time is
    /// `f64::INFINITY` — never `0.0`, which would read as a speedup.
    pub fn slowdown(&self) -> f64 {
        if self.solo.value() > 0.0 {
            self.turnaround.value() / self.solo.value()
        } else if self.turnaround.value() > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// Full evaluation of a shared configuration against the sequential
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    pub shared: RunOutcome,
    pub sequential: RunOutcome,
    pub metrics: Metrics,
    /// Per-workflow latency under the shared plan (empty when the report
    /// was built from raw outcomes rather than a plan).
    pub latencies: Vec<WorkflowLatency>,
}

impl EvaluationReport {
    /// Worst per-workflow slowdown (1.0 when no latencies recorded).
    pub fn max_slowdown(&self) -> f64 {
        self.latencies
            .iter()
            .map(WorkflowLatency::slowdown)
            .fold(1.0, f64::max)
    }

    /// Mean per-workflow slowdown (1.0 when no latencies recorded).
    pub fn mean_slowdown(&self) -> f64 {
        if self.latencies.is_empty() {
            return 1.0;
        }
        self.latencies
            .iter()
            .map(WorkflowLatency::slowdown)
            .sum::<f64>()
            / self.latencies.len() as f64
    }
}

/// Runs workflow queues under schedule plans and baselines.
#[derive(Debug, Clone)]
pub struct Executor {
    config: ExecutorConfig,
}

impl Executor {
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.config.device
    }

    fn runner(&self) -> GpuRunner {
        GpuRunner::new(self.config.device.clone())
            .with_sharing_overhead(self.config.sharing_overhead)
    }

    fn materialize(
        &self,
        workflows: &[WorkflowSpec],
    ) -> Result<Vec<mpshare_gpusim::ClientProgram>> {
        let mut ids = IdAllocator::new();
        workflows
            .iter()
            .map(|w| w.to_client_program(self.config.build_device(), &mut ids))
            .collect()
    }

    /// Records an Executor-track leg span for one baseline/leg run.
    fn record_leg(leg: &'static str, workflows: usize, outcome: &RunOutcome) {
        if !mpshare_obs::enabled() {
            return;
        }
        let (makespan, tasks) = (outcome.makespan.value(), outcome.tasks);
        mpshare_obs::emit(
            mpshare_obs::Track::Executor,
            "executor.leg",
            Some(0.0),
            Some(makespan),
            || {
                serde_json::json!({
                    "leg": leg,
                    "workflows": workflows,
                    "tasks": tasks,
                })
            },
        );
    }

    /// Sequential baseline: all workflows one after another, queue order.
    pub fn run_sequential(&self, workflows: &[WorkflowSpec]) -> Result<RunOutcome> {
        let programs = self.materialize(workflows)?;
        let result = self.runner().run(&GpuSharing::Sequential, programs)?;
        let outcome = RunOutcome::from_result(&result);
        Self::record_leg("sequential", workflows.len(), &outcome);
        Ok(outcome)
    }

    /// Time-sliced sharing of the whole queue (the paper's non-MPS
    /// comparison point).
    pub fn run_timesliced(&self, workflows: &[WorkflowSpec]) -> Result<RunOutcome> {
        let programs = self.materialize(workflows)?;
        let result = self
            .runner()
            .run(&GpuSharing::TimeSliced(self.config.timeslice), programs)?;
        let outcome = RunOutcome::from_result(&result);
        Self::record_leg("time-sliced", workflows.len(), &outcome);
        Ok(outcome)
    }

    /// Naive MPS: the whole queue as one concurrent group with default
    /// (100 %) partitions — what a user gets by just starting the MPS
    /// daemon without a scheduler.
    pub fn run_mps_naive(&self, workflows: &[WorkflowSpec]) -> Result<RunOutcome> {
        let programs = self.materialize(workflows)?;
        let n = programs.len();
        let result = self.runner().run(&GpuSharing::mps_default(n), programs)?;
        let outcome = RunOutcome::from_result(&result);
        Self::record_leg("mps-naive", workflows.len(), &outcome);
        Ok(outcome)
    }

    /// Runs one plan group and returns the raw engine result (for trace
    /// export and detailed inspection).
    pub fn run_group_raw(
        &self,
        workflows: &[WorkflowSpec],
        group: &crate::planner::PlanGroup,
        ids: &mut IdAllocator,
    ) -> Result<mpshare_gpusim::RunResult> {
        self.run_group_raw_with_faults(workflows, group, ids, &mpshare_gpusim::FaultPlan::default())
    }

    /// Like [`Executor::run_group_raw`], injecting `faults` (client
    /// indices are positions within the group). The group runs under MPS,
    /// so the runner widens each fault to the shared server's failure
    /// domain: one member's fatal fault aborts the whole group.
    pub fn run_group_raw_with_faults(
        &self,
        workflows: &[WorkflowSpec],
        group: &crate::planner::PlanGroup,
        ids: &mut IdAllocator,
        faults: &mpshare_gpusim::FaultPlan,
    ) -> Result<mpshare_gpusim::RunResult> {
        let programs = group
            .workflow_indices
            .iter()
            .map(|&i| workflows[i].to_client_program(self.config.build_device(), ids))
            .collect::<Result<Vec<_>>>()?;
        let sharing = GpuSharing::Mps {
            partitions: group.partitions.clone(),
        };
        self.runner().run_with_faults(&sharing, programs, faults)
    }

    /// Solo wall time per workflow — the horizon a fault model scales its
    /// per-attempt fault times by.
    pub fn solo_wall_times(&self, workflows: &[WorkflowSpec]) -> Result<Vec<Seconds>> {
        let mut ids = IdAllocator::new();
        workflows
            .iter()
            .map(|w| {
                Ok(w.to_client_program(self.config.build_device(), &mut ids)?
                    .solo_wall_time())
            })
            .collect()
    }

    /// Runs a schedule plan: each group concurrently under MPS with its
    /// partitions, groups back to back.
    pub fn run_plan(&self, workflows: &[WorkflowSpec], plan: &SchedulePlan) -> Result<RunOutcome> {
        Ok(self.run_plan_with_latencies(workflows, plan)?.0)
    }

    /// Like [`Executor::run_plan`], additionally returning per-workflow
    /// turnaround latencies (schedule start → workflow completion).
    pub fn run_plan_with_latencies(
        &self,
        workflows: &[WorkflowSpec],
        plan: &SchedulePlan,
    ) -> Result<(RunOutcome, Vec<WorkflowLatency>)> {
        let mut outcomes = Vec::with_capacity(plan.groups.len());
        let mut latencies = Vec::new();
        let mut ids = IdAllocator::new();
        let mut offset = Seconds::ZERO;
        for (group_index, group) in plan.groups.iter().enumerate() {
            let result = self.run_group_raw(workflows, group, &mut ids)?;
            if mpshare_obs::enabled() {
                let members = group.workflow_indices.clone();
                let (start, dur) = (offset.value(), result.makespan.value());
                let tasks = result.tasks_completed;
                mpshare_obs::emit(
                    mpshare_obs::Track::Executor,
                    "executor.group",
                    Some(start),
                    Some(dur),
                    || {
                        serde_json::json!({
                            "group": group_index,
                            "workflows": members,
                            "tasks": tasks,
                        })
                    },
                );
            }
            for (&workflow, client) in group.workflow_indices.iter().zip(&result.clients) {
                let solo = workflows[workflow]
                    .to_client_program(self.config.build_device(), &mut ids)?
                    .solo_wall_time();
                latencies.push(WorkflowLatency {
                    workflow,
                    turnaround: offset + client.finished,
                    solo,
                });
            }
            offset += result.makespan;
            outcomes.push(RunOutcome::from_result(&result));
        }
        latencies.sort_by_key(|l| l.workflow);
        Ok((RunOutcome::chain(&outcomes), latencies))
    }

    /// Evaluates a plan against the sequential baseline. The shared and
    /// sequential legs are independent simulations, so they run in
    /// parallel (see [`mpshare_par::join`]); results are bit-identical to
    /// the serial path.
    pub fn evaluate_plan(
        &self,
        workflows: &[WorkflowSpec],
        plan: &SchedulePlan,
    ) -> Result<EvaluationReport> {
        let (shared_leg, sequential_leg) = mpshare_par::join(
            || self.run_plan_with_latencies(workflows, plan),
            || self.run_sequential(workflows),
        );
        let (shared, latencies) = shared_leg?;
        let mut report = self.report(shared, sequential_leg?);
        report.latencies = latencies;
        Ok(report)
    }

    /// Batch evaluation: runs the sequential baseline once and evaluates
    /// every plan against it, fanning the per-plan simulations out across
    /// worker threads. Reports are returned in input order and are
    /// bit-identical to calling [`Executor::evaluate_plan`] per plan
    /// (the baseline simulation is deterministic, so deduplicating it is
    /// observationally free).
    pub fn evaluate_plans(
        &self,
        workflows: &[WorkflowSpec],
        plans: &[SchedulePlan],
    ) -> Result<Vec<EvaluationReport>> {
        if plans.is_empty() {
            return Ok(Vec::new());
        }
        let sequential = self.run_sequential(workflows)?;
        let legs =
            mpshare_par::try_par_map(plans, |plan| self.run_plan_with_latencies(workflows, plan))?;
        Ok(legs
            .into_iter()
            .map(|(shared, latencies)| {
                let mut report = self.report(shared, sequential);
                report.latencies = latencies;
                report
            })
            .collect())
    }

    /// Evaluates an arbitrary shared outcome against the baseline.
    pub fn report(&self, shared: RunOutcome, sequential: RunOutcome) -> EvaluationReport {
        let metrics = Metrics::relative(
            shared.makespan,
            shared.energy,
            shared.capped_fraction,
            sequential.makespan,
            sequential.energy,
            shared.tasks,
        );
        EvaluationReport {
            shared,
            sequential,
            metrics,
            latencies: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanGroup, Planner, PlannerStrategy};
    use crate::policy::MetricPriority;
    use crate::wprofile::workflow_profile;
    use mpshare_profiler::ProfileStore;
    use mpshare_types::Fraction;
    use mpshare_workloads::{BenchmarkKind, ProblemSize};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn executor() -> Executor {
        Executor::new(ExecutorConfig::new(dev()))
    }

    /// Two low-utilization workflows of comparable duration (~2 min each),
    /// so co-scheduling has real overlap to exploit.
    fn light_pair() -> Vec<WorkflowSpec> {
        vec![
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 30),
        ]
    }

    fn plan_for(workflows: &[WorkflowSpec], priority: MetricPriority) -> SchedulePlan {
        let mut store = ProfileStore::new();
        store.profile_workflows(&dev(), workflows).unwrap();
        let profiles: Vec<_> = workflows
            .iter()
            .map(|w| workflow_profile(&store, w).unwrap())
            .collect();
        Planner::new(dev(), priority)
            .with_sharing_overhead(DEFAULT_MPS_OVERHEAD)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap()
    }

    #[test]
    fn sequential_baseline_completes_all_tasks() {
        let wfs = light_pair();
        let out = executor().run_sequential(&wfs).unwrap();
        assert_eq!(out.tasks, 32);
        assert!(out.makespan.value() > 0.0);
        assert!(out.energy.joules() > 0.0);
    }

    #[test]
    fn planned_mps_beats_sequential_for_light_pair() {
        // The headline claim: interference-aware MPS collocation of
        // low-utilization workflows improves both throughput and energy.
        let wfs = light_pair();
        let plan = plan_for(&wfs, MetricPriority::Throughput);
        let report = executor().evaluate_plan(&wfs, &plan).unwrap();
        assert!(
            report.metrics.throughput_gain > 1.3,
            "throughput gain {}",
            report.metrics.throughput_gain
        );
        assert!(
            report.metrics.energy_efficiency_gain > 1.1,
            "efficiency gain {}",
            report.metrics.energy_efficiency_gain
        );
        assert_eq!(report.shared.tasks, report.sequential.tasks);
        assert_eq!(report.shared.tasks, 32);
    }

    #[test]
    fn mps_beats_timeslicing_for_light_pair() {
        let wfs = light_pair();
        let plan = plan_for(&wfs, MetricPriority::Throughput);
        let ex = executor();
        let mps = ex.run_plan(&wfs, &plan).unwrap();
        let ts = ex.run_timesliced(&wfs).unwrap();
        assert!(
            mps.makespan < ts.makespan,
            "mps {} !< ts {}",
            mps.makespan,
            ts.makespan
        );
    }

    #[test]
    fn timeslicing_still_beats_sequential_for_bursty_workloads() {
        let wfs = light_pair();
        let ex = executor();
        let ts = ex.run_timesliced(&wfs).unwrap();
        let seq = ex.run_sequential(&wfs).unwrap();
        assert!(ts.makespan < seq.makespan);
    }

    #[test]
    fn plan_execution_preserves_task_count() {
        let wfs = light_pair();
        let plan = plan_for(&wfs, MetricPriority::Energy);
        let out = executor().run_plan(&wfs, &plan).unwrap();
        assert_eq!(out.tasks, 32);
    }

    #[test]
    fn multi_group_plans_chain_groups_sequentially() {
        let wfs = vec![
            WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 1),
            WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 1),
        ];
        // Force a two-group plan manually.
        let plan = SchedulePlan {
            groups: vec![
                PlanGroup {
                    workflow_indices: vec![0],
                    partitions: vec![Fraction::ONE],
                },
                PlanGroup {
                    workflow_indices: vec![1],
                    partitions: vec![Fraction::ONE],
                },
            ],
        };
        let ex = executor();
        let chained = ex.run_plan(&wfs, &plan).unwrap();
        let seq = ex.run_sequential(&wfs).unwrap();
        // One workflow per group = sequential execution.
        assert!((chained.makespan.value() - seq.makespan.value()).abs() < 0.5);
        assert!((chained.energy.joules() - seq.energy.joules()).abs() / seq.energy.joules() < 0.02);
    }

    #[test]
    fn naive_mps_runs_entire_queue_at_once() {
        let wfs = light_pair();
        let out = executor().run_mps_naive(&wfs).unwrap();
        assert_eq!(out.tasks, 32);
    }

    #[test]
    fn latencies_expose_the_paper_latency_caveat() {
        // Co-scheduling boosts throughput, but individual workflows can
        // finish later than their solo time — §VI's warning, quantified.
        let wfs = light_pair();
        let plan = plan_for(&wfs, MetricPriority::Throughput);
        let report = executor().evaluate_plan(&wfs, &plan).unwrap();
        assert_eq!(report.latencies.len(), wfs.len());
        for l in &report.latencies {
            assert!(l.slowdown() >= 1.0 - 1e-6, "slowdown {}", l.slowdown());
        }
        assert!(report.max_slowdown() >= report.mean_slowdown());
        // Throughput gained overall even though someone was slowed.
        assert!(report.metrics.throughput_gain > 1.0);
    }

    #[test]
    fn singleton_groups_have_unit_slowdown() {
        let wfs = vec![WorkflowSpec::uniform(
            BenchmarkKind::Kripke,
            ProblemSize::X1,
            3,
        )];
        let plan = SchedulePlan {
            groups: vec![PlanGroup {
                workflow_indices: vec![0],
                partitions: vec![Fraction::ONE],
            }],
        };
        let report = executor().evaluate_plan(&wfs, &plan).unwrap();
        assert!((report.max_slowdown() - 1.0).abs() < 0.01);
    }

    #[test]
    fn chain_of_nothing_is_neutral() {
        let chained = RunOutcome::chain(&[]);
        assert_eq!(chained.makespan, Seconds::ZERO);
        assert_eq!(chained.capped_fraction, 0.0);
        assert_eq!(chained.tasks, 0);
        assert!(!chained.avg_sm_util.value().is_nan());
    }

    #[test]
    fn degenerate_slowdowns_are_neutral_or_infinite() {
        let trivial = WorkflowLatency {
            workflow: 0,
            turnaround: Seconds::ZERO,
            solo: Seconds::ZERO,
        };
        assert_eq!(trivial.slowdown(), 1.0);
        let stalled = WorkflowLatency {
            workflow: 0,
            turnaround: Seconds::new(1.0),
            solo: Seconds::ZERO,
        };
        assert_eq!(stalled.slowdown(), f64::INFINITY);
    }

    #[test]
    fn batch_evaluation_matches_per_plan_evaluation() {
        let wfs = light_pair();
        let plans = vec![
            plan_for(&wfs, MetricPriority::Throughput),
            plan_for(&wfs, MetricPriority::Energy),
            SchedulePlan {
                groups: vec![
                    PlanGroup {
                        workflow_indices: vec![0],
                        partitions: vec![Fraction::ONE],
                    },
                    PlanGroup {
                        workflow_indices: vec![1],
                        partitions: vec![Fraction::ONE],
                    },
                ],
            },
        ];
        let ex = executor();
        let batch = ex.evaluate_plans(&wfs, &plans).unwrap();
        assert_eq!(batch.len(), plans.len());
        for (plan, report) in plans.iter().zip(&batch) {
            let single = ex.evaluate_plan(&wfs, plan).unwrap();
            assert_eq!(report, &single);
        }
        assert!(ex.evaluate_plans(&wfs, &[]).unwrap().is_empty());
    }

    #[test]
    fn report_metrics_match_outcome_ratios() {
        let wfs = light_pair();
        let plan = plan_for(&wfs, MetricPriority::Throughput);
        let report = executor().evaluate_plan(&wfs, &plan).unwrap();
        let expected_tp = report.sequential.makespan.value() / report.shared.makespan.value();
        assert!((report.metrics.throughput_gain - expected_tp).abs() < 1e-12);
    }
}
