//! Analytic group estimator.
//!
//! The planner needs to rank many candidate groupings without running the
//! simulator for each. This estimator predicts a collocation group's
//! makespan and energy from profiles alone:
//!
//! * **makespan** — the longest workflow, stretched by the predicted
//!   contention factor `max(1, ΣSM/100, ΣBW/100)` and the per-co-runner
//!   sharing overhead;
//! * **energy** — idle power over the makespan plus each workflow's
//!   dynamic energy, which is invariant under contention stretching
//!   (dynamic power scales with progress rate while time scales
//!   inversely).
//!
//! The estimator is deliberately first-order: the executor measures the
//! real thing. Its only job is to order candidates the same way the
//! simulator would, which the planner tests verify.

use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Energy, Seconds};
use serde::{Deserialize, Serialize};

/// Predicted outcome of running one collocation group under MPS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupEstimate {
    pub makespan: Seconds,
    pub energy: Energy,
    pub tasks: usize,
}

/// Estimates a group's makespan and energy under MPS collocation.
///
/// `sharing_overhead` is the same per-co-runner coefficient the engine's
/// contention model uses.
pub fn estimate_group(
    device: &DeviceSpec,
    group: &[&WorkflowProfile],
    sharing_overhead: f64,
) -> GroupEstimate {
    if group.is_empty() {
        return GroupEstimate {
            makespan: Seconds::ZERO,
            energy: Energy::ZERO,
            tasks: 0,
        };
    }
    let n = group.len() as f64;
    let sm_sum: f64 = group.iter().map(|p| p.avg_sm_util.value()).sum();
    let bw_sum: f64 = group.iter().map(|p| p.avg_bw_util.value()).sum();
    let contention = (sm_sum / 100.0).max(bw_sum / 100.0).max(1.0);
    let overhead = 1.0 + sharing_overhead * (n - 1.0);
    let stretch = contention * overhead;

    let makespan = group
        .iter()
        .map(|p| p.duration.value() * stretch)
        .fold(0.0, f64::max);
    let dynamic: f64 = group
        .iter()
        .map(|p| p.dynamic_energy(device.idle_power).joules())
        .sum();
    let energy = device.idle_power.watts() * makespan + dynamic;

    GroupEstimate {
        makespan: Seconds::new(makespan),
        energy: Energy::from_joules(energy),
        tasks: group.iter().map(|p| p.task_count).sum(),
    }
}

/// Estimates the sequential baseline for the same workflows: durations and
/// energies simply add.
pub fn estimate_sequential(group: &[&WorkflowProfile]) -> GroupEstimate {
    GroupEstimate {
        makespan: Seconds::new(group.iter().map(|p| p.duration.value()).sum()),
        energy: Energy::from_joules(group.iter().map(|p| p.energy.joules()).sum()),
        tasks: group.iter().map(|p| p.task_count).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{MemBytes, Percent, Power};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn profile(sm: f64, duration: f64, power: f64) -> WorkflowProfile {
        WorkflowProfile {
            label: "w".into(),
            task_count: 2,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(2.0),
            max_memory: MemBytes::from_gib(1),
            duration: Seconds::new(duration),
            energy: Energy::from_joules(power * duration),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.8,
            saturation_partition: mpshare_types::Fraction::new(0.9),
        }
    }

    #[test]
    fn empty_group_estimates_zero() {
        let e = estimate_group(&dev(), &[], 0.0);
        assert_eq!(e.makespan, Seconds::ZERO);
        assert_eq!(e.tasks, 0);
    }

    #[test]
    fn non_interfering_group_runs_at_longest_workflow() {
        let (a, b) = (profile(30.0, 10.0, 150.0), profile(40.0, 6.0, 160.0));
        let e = estimate_group(&dev(), &[&a, &b], 0.0);
        assert!((e.makespan.value() - 10.0).abs() < 1e-9);
        assert_eq!(e.tasks, 4);
    }

    #[test]
    fn oversubscribed_group_stretches() {
        let (a, b) = (profile(80.0, 10.0, 200.0), profile(80.0, 10.0, 200.0));
        let e = estimate_group(&dev(), &[&a, &b], 0.0);
        assert!((e.makespan.value() - 16.0).abs() < 1e-9); // ×1.6
    }

    #[test]
    fn sharing_overhead_adds_per_corunner_cost() {
        let profiles: Vec<WorkflowProfile> = (0..4).map(|_| profile(10.0, 10.0, 100.0)).collect();
        let refs: Vec<&WorkflowProfile> = profiles.iter().collect();
        let e = estimate_group(&dev(), &refs, 0.01);
        assert!((e.makespan.value() - 10.0 * 1.03).abs() < 1e-9);
    }

    #[test]
    fn collocation_saves_idle_energy_vs_sequential() {
        let (a, b) = (profile(30.0, 10.0, 150.0), profile(30.0, 10.0, 150.0));
        let shared = estimate_group(&dev(), &[&a, &b], 0.0);
        let seq = estimate_sequential(&[&a, &b]);
        assert!(shared.energy < seq.energy);
        // Savings equal one makespan's worth of idle power.
        let expected_saving = 75.0 * 10.0;
        assert!(((seq.energy.joules() - shared.energy.joules()) - expected_saving).abs() < 1e-6);
    }

    #[test]
    fn sequential_estimate_adds_everything() {
        let (a, b) = (profile(30.0, 10.0, 150.0), profile(40.0, 5.0, 160.0));
        let e = estimate_sequential(&[&a, &b]);
        assert_eq!(e.makespan.value(), 15.0);
        assert_eq!(e.energy.joules(), 150.0 * 10.0 + 160.0 * 5.0);
    }
}
