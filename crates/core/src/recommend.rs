//! Advisory recommendations — the paper's §VI conclusions as an API.
//!
//! The paper closes with three recommendations for programmers tuning
//! workflow multi-tenancy with MPS:
//!
//! 1. if throughput matters most, schedule low-utilization workflows in
//!    groups of 2–3 and avoid collocating high-utilization workflows;
//! 2. if energy efficiency matters most, schedule lowest-utilization
//!    workflows first and raise cardinality until the throughput loss is
//!    intolerable;
//! 3. where possible, pair workflows with opposing power profiles.
//!
//! [`advise`] inspects a queue of profiles and emits concrete, structured
//! advice (with the numbers that triggered each item), suitable for
//! surfacing in a CLI or scheduler log.

use crate::interference::predict;
use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::Percent;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Threshold below which a workflow counts as low-utilization (average SM).
pub const LOW_UTILIZATION: Percent = Percent::new_const(40.0);
/// Threshold above which a workflow counts as high-utilization.
pub const HIGH_UTILIZATION: Percent = Percent::new_const(70.0);

/// One piece of advice about a queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Advice {
    /// These workflows are good collocation candidates (rec. 1): both
    /// low-utilization and mutually compatible.
    PairForThroughput {
        a: usize,
        b: usize,
        combined_sm: f64,
    },
    /// This workflow should not be collocated with other heavy work
    /// (rec. 1's warning; the LAMMPS case).
    KeepExclusive { workflow: usize, avg_sm: f64 },
    /// Under an energy priority, start with this workflow and grow the
    /// group (rec. 2).
    ScheduleFirstForEnergy { workflow: usize, avg_sm: f64 },
    /// These two have opposing power profiles and pair well (rec. 3).
    PairOpposingPower {
        a: usize,
        b: usize,
        power_a_watts: f64,
        power_b_watts: f64,
    },
    /// These two must never share a GPU: combined footprints exceed
    /// device memory (the hard constraint).
    MemoryConflict { a: usize, b: usize },
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::PairForThroughput { a, b, combined_sm } => write!(
                f,
                "pair workflows #{a} and #{b} for throughput (combined SM {combined_sm:.0}%)"
            ),
            Advice::KeepExclusive { workflow, avg_sm } => write!(
                f,
                "keep workflow #{workflow} exclusive ({avg_sm:.0}% SM — collocation will degrade it)"
            ),
            Advice::ScheduleFirstForEnergy { workflow, avg_sm } => write!(
                f,
                "under an energy priority, schedule workflow #{workflow} first ({avg_sm:.0}% SM) and grow the group"
            ),
            Advice::PairOpposingPower {
                a,
                b,
                power_a_watts,
                power_b_watts,
            } => write!(
                f,
                "workflows #{a} ({power_a_watts:.0} W) and #{b} ({power_b_watts:.0} W) have opposing power profiles"
            ),
            Advice::MemoryConflict { a, b } => write!(
                f,
                "workflows #{a} and #{b} cannot share a GPU (combined memory exceeds capacity)"
            ),
        }
    }
}

/// Produces the paper's §VI advice for a queue of profiles.
///
/// ```
/// use mpshare_core::{advise, workflow_profile, Advice};
/// use mpshare_gpusim::DeviceSpec;
/// use mpshare_profiler::ProfileStore;
/// use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
///
/// let device = DeviceSpec::a100x();
/// let queue = vec![
///     WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 2),
///     WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2),
///     WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 1),
/// ];
/// let mut store = ProfileStore::new();
/// store.profile_workflows(&device, &queue).unwrap();
/// let profiles: Vec<_> = queue.iter().map(|w| workflow_profile(&store, w).unwrap()).collect();
///
/// let advice = advise(&device, &profiles);
/// // AthenaPK+Kripke pair for throughput; LAMMPS 4x stays exclusive.
/// assert!(advice.iter().any(|a| matches!(a, Advice::PairForThroughput { a: 0, b: 1, .. })));
/// assert!(advice.iter().any(|a| matches!(a, Advice::KeepExclusive { workflow: 2, .. })));
/// ```
pub fn advise(device: &DeviceSpec, profiles: &[WorkflowProfile]) -> Vec<Advice> {
    let mut advice = Vec::new();
    let n = profiles.len();

    // Rec. 1: low-utilization pairs (report each best partner once).
    let low: Vec<usize> = (0..n)
        .filter(|&i| profiles[i].avg_sm_util <= LOW_UTILIZATION)
        .collect();
    for (pos, &a) in low.iter().enumerate() {
        for &b in &low[pos + 1..] {
            let report = predict(device, &[&profiles[a], &profiles[b]]);
            if report.is_compatible() {
                advice.push(Advice::PairForThroughput {
                    a,
                    b,
                    combined_sm: report.sm_sum,
                });
            }
        }
    }

    // Rec. 1 (warning): high-utilization workflows should stay exclusive.
    for (i, p) in profiles.iter().enumerate() {
        if p.avg_sm_util >= HIGH_UTILIZATION {
            advice.push(Advice::KeepExclusive {
                workflow: i,
                avg_sm: p.avg_sm_util.value(),
            });
        }
    }

    // Rec. 2: the lowest-utilization workflow seeds energy-first packing.
    if let Some(first) = (0..n).min_by(|&a, &b| {
        profiles[a]
            .avg_sm_util
            .value()
            .partial_cmp(&profiles[b].avg_sm_util.value())
            .expect("finite utilizations")
    }) {
        advice.push(Advice::ScheduleFirstForEnergy {
            workflow: first,
            avg_sm: profiles[first].avg_sm_util.value(),
        });
    }

    // Rec. 3: opposing power profiles (the extremes of the queue), when
    // the spread is meaningful and the pair is otherwise compatible.
    if n >= 2 {
        let min = (0..n)
            .min_by(|&a, &b| cmp_power(&profiles[a], &profiles[b]))
            .expect("non-empty");
        let max = (0..n)
            .max_by(|&a, &b| cmp_power(&profiles[a], &profiles[b]))
            .expect("non-empty");
        let spread = profiles[max].avg_power.watts() - profiles[min].avg_power.watts();
        if min != max
            && spread > 50.0
            && predict(device, &[&profiles[min], &profiles[max]]).is_compatible()
        {
            advice.push(Advice::PairOpposingPower {
                a: min,
                b: max,
                power_a_watts: profiles[min].avg_power.watts(),
                power_b_watts: profiles[max].avg_power.watts(),
            });
        }
    }

    // Hard memory conflicts.
    for a in 0..n {
        for b in a + 1..n {
            if profiles[a].max_memory + profiles[b].max_memory > device.memory_capacity {
                advice.push(Advice::MemoryConflict { a, b });
            }
        }
    }

    advice
}

fn cmp_power(a: &WorkflowProfile, b: &WorkflowProfile) -> std::cmp::Ordering {
    a.avg_power
        .watts()
        .partial_cmp(&b.avg_power.watts())
        .expect("finite powers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, Fraction, MemBytes, Power, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn profile(sm: f64, mem_gib: u64) -> WorkflowProfile {
        let power = 75.0 + 1.75 * sm;
        WorkflowProfile {
            label: format!("wf(sm={sm})"),
            task_count: 1,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(1.0),
            max_memory: MemBytes::from_gib(mem_gib),
            duration: Seconds::new(10.0),
            energy: Energy::from_joules(power * 10.0),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.7,
            saturation_partition: Fraction::new(0.9),
        }
    }

    #[test]
    fn low_pairs_and_heavy_exclusives_are_found() {
        let profiles = vec![profile(10.0, 2), profile(20.0, 2), profile(90.0, 4)];
        let advice = advise(&dev(), &profiles);
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::PairForThroughput { a: 0, b: 1, .. })));
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::KeepExclusive { workflow: 2, .. })));
    }

    #[test]
    fn energy_seed_is_the_lightest_workflow() {
        let profiles = vec![profile(30.0, 2), profile(5.0, 2), profile(60.0, 2)];
        let advice = advise(&dev(), &profiles);
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::ScheduleFirstForEnergy { workflow: 1, .. })));
    }

    #[test]
    fn opposing_power_pairing_requires_spread_and_compatibility() {
        // 10% vs 80% SM -> 92.5 W vs 215 W: big spread, compatible sums.
        let profiles = vec![profile(10.0, 2), profile(80.0, 2)];
        let advice = advise(&dev(), &profiles);
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::PairOpposingPower { a: 0, b: 1, .. })));

        // Two similar-power workflows: no opposing-power advice.
        let similar = vec![profile(40.0, 2), profile(45.0, 2)];
        let advice = advise(&dev(), &similar);
        assert!(!advice
            .iter()
            .any(|a| matches!(a, Advice::PairOpposingPower { .. })));
    }

    #[test]
    fn memory_conflicts_are_flagged() {
        let profiles = vec![profile(10.0, 60), profile(15.0, 60)];
        let advice = advise(&dev(), &profiles);
        assert!(advice
            .iter()
            .any(|a| matches!(a, Advice::MemoryConflict { a: 0, b: 1 })));
        // And the same pair is NOT recommended for throughput pairing.
        assert!(!advice
            .iter()
            .any(|a| matches!(a, Advice::PairForThroughput { .. })));
    }

    #[test]
    fn advice_renders_readably() {
        let profiles = vec![profile(10.0, 2), profile(20.0, 2)];
        for a in advise(&dev(), &profiles) {
            let text = a.to_string();
            assert!(text.contains('#'), "unreadable: {text}");
        }
    }

    #[test]
    fn empty_queue_produces_no_advice() {
        assert!(advise(&dev(), &[]).is_empty());
    }
}
