//! Dependency-aware planning.
//!
//! The paper's §IV-B: "an entire queue of workflow tasks as well as data
//! dependencies between them is known before workflow execution". Within a
//! workflow, dependencies are the task order (handled by the engine);
//! *between* workflows, a dependency means one workflow consumes another's
//! output and must not start before it completes.
//!
//! [`plan_with_dependencies`] partitions the queue into topological levels
//! (workflows whose prerequisites are all in earlier levels), plans each
//! level independently with the configured strategy, and concatenates the
//! groups in level order — so no group ever collocates, or reorders, a
//! dependent pair.

use crate::planner::{Planner, PlannerStrategy, SchedulePlan};
use crate::wprofile::WorkflowProfile;
use mpshare_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// A dependency edge: `after` must not start before `before` completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependency {
    pub before: usize,
    pub after: usize,
}

impl Dependency {
    pub fn new(before: usize, after: usize) -> Self {
        Dependency { before, after }
    }
}

/// Splits workflow indices into topological levels (Kahn's algorithm).
/// Errors on cycles or out-of-range indices.
pub fn topological_levels(n: usize, deps: &[Dependency]) -> Result<Vec<Vec<usize>>> {
    for d in deps {
        if d.before >= n || d.after >= n {
            return Err(Error::InvalidConfig(format!(
                "dependency {} -> {} out of range (queue of {n})",
                d.before, d.after
            )));
        }
        if d.before == d.after {
            return Err(Error::InvalidConfig(format!(
                "workflow {} depends on itself",
                d.before
            )));
        }
    }
    let mut indegree = vec![0usize; n];
    for d in deps {
        indegree[d.after] += 1;
    }
    let mut placed = 0usize;
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut levels = Vec::new();
    while !frontier.is_empty() {
        frontier.sort_unstable();
        placed += frontier.len();
        let mut next = Vec::new();
        for &done in &frontier {
            for d in deps.iter().filter(|d| d.before == done) {
                indegree[d.after] -= 1;
                if indegree[d.after] == 0 {
                    next.push(d.after);
                }
            }
        }
        levels.push(std::mem::take(&mut frontier));
        frontier = next;
    }
    if placed != n {
        return Err(Error::InvalidConfig(
            "dependency graph contains a cycle".into(),
        ));
    }
    Ok(levels)
}

/// Plans a queue with inter-workflow dependencies: each topological level
/// is planned independently; the resulting groups run in level order.
pub fn plan_with_dependencies(
    planner: &Planner,
    profiles: &[WorkflowProfile],
    deps: &[Dependency],
    strategy: PlannerStrategy,
) -> Result<SchedulePlan> {
    let levels = topological_levels(profiles.len(), deps)?;
    let mut groups = Vec::new();
    for level in levels {
        let level_profiles: Vec<WorkflowProfile> =
            level.iter().map(|&i| profiles[i].clone()).collect();
        let level_plan = planner.plan(&level_profiles, strategy)?;
        for g in level_plan.groups {
            groups.push(crate::planner::PlanGroup {
                workflow_indices: g
                    .workflow_indices
                    .iter()
                    .map(|&local| level[local])
                    .collect(),
                partitions: g.partitions,
            });
        }
    }
    Ok(SchedulePlan { groups })
}

/// Checks that a plan respects every dependency: for each edge, the group
/// containing `before` comes strictly earlier than the group containing
/// `after`, and they never share a group.
pub fn validate_dependencies(plan: &SchedulePlan, deps: &[Dependency]) -> Result<()> {
    let group_of = |workflow: usize| -> Option<usize> {
        plan.groups
            .iter()
            .position(|g| g.workflow_indices.contains(&workflow))
    };
    for d in deps {
        let (gb, ga) = match (group_of(d.before), group_of(d.after)) {
            (Some(b), Some(a)) => (b, a),
            _ => {
                return Err(Error::PlanViolation(format!(
                    "dependency {} -> {} references unscheduled workflows",
                    d.before, d.after
                )))
            }
        };
        if gb >= ga {
            return Err(Error::PlanViolation(format!(
                "dependency violated: workflow {} (group {gb}) must precede workflow {} (group {ga})",
                d.before, d.after
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MetricPriority;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn profile(sm: f64) -> WorkflowProfile {
        let power = 75.0 + 1.75 * sm;
        WorkflowProfile {
            label: format!("wf(sm={sm})"),
            task_count: 1,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(1.0),
            max_memory: MemBytes::from_gib(2),
            duration: Seconds::new(10.0),
            energy: Energy::from_joules(power * 10.0),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.7,
            saturation_partition: Fraction::new(0.9),
        }
    }

    #[test]
    fn levels_respect_edges() {
        // 0 -> 2, 1 -> 2, 2 -> 3.
        let deps = vec![
            Dependency::new(0, 2),
            Dependency::new(1, 2),
            Dependency::new(2, 3),
        ];
        let levels = topological_levels(4, &deps).unwrap();
        assert_eq!(levels, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn cycles_and_bad_indices_are_rejected() {
        assert!(topological_levels(2, &[Dependency::new(0, 1), Dependency::new(1, 0)]).is_err());
        assert!(topological_levels(2, &[Dependency::new(0, 5)]).is_err());
        assert!(topological_levels(2, &[Dependency::new(1, 1)]).is_err());
    }

    #[test]
    fn independent_queue_reduces_to_plain_planning() {
        let profiles: Vec<WorkflowProfile> = (0..4).map(|i| profile(10.0 + i as f64)).collect();
        let planner = Planner::new(dev(), MetricPriority::Energy);
        let with =
            plan_with_dependencies(&planner, &profiles, &[], PlannerStrategy::Greedy).unwrap();
        let without = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        assert_eq!(with.workflow_count(), without.workflow_count());
        assert_eq!(with.max_cardinality(), without.max_cardinality());
    }

    #[test]
    fn dependent_workflows_never_share_a_group() {
        // Two light workflows that WOULD pair — unless one feeds the other.
        let profiles = vec![profile(10.0), profile(12.0)];
        let deps = vec![Dependency::new(0, 1)];
        let planner = Planner::new(dev(), MetricPriority::Energy);
        let plan =
            plan_with_dependencies(&planner, &profiles, &deps, PlannerStrategy::Greedy).unwrap();
        assert_eq!(plan.groups.len(), 2);
        validate_dependencies(&plan, &deps).unwrap();
        plan.validate(&dev(), &profiles).unwrap();

        // Without the dependency they do pair.
        let free = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        assert_eq!(free.groups.len(), 1);
    }

    #[test]
    fn diamond_dependency_plans_in_three_levels() {
        // 0 -> {1, 2} -> 3; 1 and 2 are independent and can collocate.
        let profiles = vec![profile(10.0), profile(15.0), profile(20.0), profile(12.0)];
        let deps = vec![
            Dependency::new(0, 1),
            Dependency::new(0, 2),
            Dependency::new(1, 3),
            Dependency::new(2, 3),
        ];
        let planner = Planner::new(dev(), MetricPriority::Energy);
        let plan =
            plan_with_dependencies(&planner, &profiles, &deps, PlannerStrategy::Greedy).unwrap();
        validate_dependencies(&plan, &deps).unwrap();
        // Level {1, 2} collocates into one group: 3 groups total.
        assert_eq!(plan.groups.len(), 3);
        assert!(plan
            .groups
            .iter()
            .any(|g| g.workflow_indices.contains(&1) && g.workflow_indices.contains(&2)));
    }

    #[test]
    fn validator_rejects_reordered_plans() {
        let profiles = vec![profile(10.0), profile(12.0)];
        let deps = vec![Dependency::new(0, 1)];
        let planner = Planner::new(dev(), MetricPriority::Energy);
        let mut plan =
            plan_with_dependencies(&planner, &profiles, &deps, PlannerStrategy::Greedy).unwrap();
        plan.groups.reverse();
        assert!(validate_dependencies(&plan, &deps).is_err());
    }
}
