//! Multi-GPU node scheduling.
//!
//! The paper's setting is a node with several GPUs ("co-scheduling
//! workflows on the same *set* of GPUs"; its evaluation machine carried
//! two A100Xs). This module lifts the single-GPU planner to a node:
//! collocation groups are distributed across GPUs with
//! longest-processing-time-first (LPT) list scheduling on their estimated
//! makespans, each GPU executes its groups back to back, and the node
//! makespan is the maximum over GPUs.
//!
//! Energy accounting is board-accurate: a GPU that finishes early keeps
//! drawing idle power until the node completes (nodes are powered as a
//! unit), so consolidating work onto fewer GPUs *and* finishing the node
//! sooner both show up in the energy metric.

use crate::estimate::estimate_group;
use crate::executor::{Executor, ExecutorConfig, RunOutcome};
use crate::metrics::Metrics;
use crate::planner::SchedulePlan;
use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Energy, Error, Power, Result, Seconds};
use mpshare_workloads::WorkflowSpec;
use serde::{Deserialize, Serialize};

/// A schedule for a whole node: one [`SchedulePlan`] per GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    pub per_gpu: Vec<SchedulePlan>,
}

impl NodePlan {
    /// Total workflows covered by the node plan.
    pub fn workflow_count(&self) -> usize {
        self.per_gpu.iter().map(|p| p.workflow_count()).sum()
    }

    /// Validates each GPU's plan and global exactly-once coverage.
    pub fn validate(&self, device: &DeviceSpec, profiles: &[WorkflowProfile]) -> Result<()> {
        let mut seen = vec![false; profiles.len()];
        for plan in &self.per_gpu {
            for g in &plan.groups {
                for &i in &g.workflow_indices {
                    if i >= profiles.len() {
                        return Err(Error::PlanViolation(format!("index {i} out of range")));
                    }
                    if seen[i] {
                        return Err(Error::PlanViolation(format!(
                            "workflow {i} scheduled on two GPUs"
                        )));
                    }
                    seen[i] = true;
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(Error::PlanViolation(format!(
                "workflow {missing} not scheduled on any GPU"
            )));
        }
        // Per-GPU structural checks run against a filtered profile view:
        // reuse the single-GPU validation by checking group-level
        // constraints directly.
        for plan in &self.per_gpu {
            for g in &plan.groups {
                if g.workflow_indices.len() > device.max_mps_clients {
                    return Err(Error::PlanViolation("group exceeds client limit".into()));
                }
                let mem: mpshare_types::MemBytes = g
                    .workflow_indices
                    .iter()
                    .map(|&i| profiles[i].max_memory)
                    .sum();
                if mem > device.memory_capacity {
                    return Err(Error::PlanViolation("group exceeds device memory".into()));
                }
            }
        }
        Ok(())
    }
}

/// Distributes the groups of a single-GPU plan across `n_gpus` with LPT
/// list scheduling on estimated group makespans. Group execution order
/// within a GPU follows the LPT assignment order.
pub fn distribute_plan(
    device: &DeviceSpec,
    plan: &SchedulePlan,
    profiles: &[WorkflowProfile],
    n_gpus: usize,
    sharing_overhead: f64,
) -> Result<NodePlan> {
    if n_gpus == 0 {
        return Err(Error::InvalidConfig("node needs at least one GPU".into()));
    }
    // Estimate each group's makespan.
    let mut estimated: Vec<(f64, usize)> = plan
        .groups
        .iter()
        .enumerate()
        .map(|(idx, g)| {
            let members: Vec<&WorkflowProfile> =
                g.workflow_indices.iter().map(|&i| &profiles[i]).collect();
            let e = estimate_group(device, &members, sharing_overhead);
            (e.makespan.value(), idx)
        })
        .collect();
    // LPT: longest groups first, each to the currently least-loaded GPU.
    estimated.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite estimates"));
    let mut loads = vec![0.0f64; n_gpus];
    let mut per_gpu: Vec<SchedulePlan> = vec![SchedulePlan { groups: Vec::new() }; n_gpus];
    for (makespan, idx) in estimated {
        let gpu = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, _)| i)
            .expect("n_gpus > 0");
        loads[gpu] += makespan;
        per_gpu[gpu].groups.push(plan.groups[idx].clone());
    }
    // Drop empty GPUs' plans? Keep them: the node owns all GPUs and their
    // idle power either way.
    Ok(NodePlan { per_gpu })
}

/// Relative throughput of `device` for work calibrated on `reference`:
/// the binding ratio of SM count and memory bandwidth. Used as the speed
/// factor in heterogeneous load balancing.
pub fn relative_throughput(device: &DeviceSpec, reference: &DeviceSpec) -> f64 {
    let sm = device.num_sms as f64 / reference.num_sms as f64;
    let bw = device.memory_bandwidth_bytes_per_sec / reference.memory_bandwidth_bytes_per_sec;
    sm.min(bw)
}

/// Distributes a plan's groups across a *heterogeneous* set of GPUs:
/// LPT on estimated makespans divided by each device's relative
/// throughput (faster devices absorb more work).
pub fn distribute_plan_heterogeneous(
    reference: &DeviceSpec,
    devices: &[DeviceSpec],
    plan: &SchedulePlan,
    profiles: &[WorkflowProfile],
    sharing_overhead: f64,
) -> Result<NodePlan> {
    if devices.is_empty() {
        return Err(Error::InvalidConfig("node needs at least one GPU".into()));
    }
    let speeds: Vec<f64> = devices
        .iter()
        .map(|d| relative_throughput(d, reference).max(1e-6))
        .collect();
    let mut estimated: Vec<(f64, usize)> = plan
        .groups
        .iter()
        .enumerate()
        .map(|(idx, g)| {
            let members: Vec<&WorkflowProfile> =
                g.workflow_indices.iter().map(|&i| &profiles[i]).collect();
            let e = estimate_group(reference, &members, sharing_overhead);
            (e.makespan.value(), idx)
        })
        .collect();
    estimated.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite estimates"));
    let mut loads = vec![0.0f64; devices.len()];
    let mut per_gpu: Vec<SchedulePlan> = vec![SchedulePlan { groups: Vec::new() }; devices.len()];
    for (makespan, idx) in estimated {
        let gpu = (0..devices.len())
            .min_by(|&a, &b| {
                let la = loads[a] + makespan / speeds[a];
                let lb = loads[b] + makespan / speeds[b];
                la.partial_cmp(&lb).expect("finite loads")
            })
            .expect("non-empty devices");
        loads[gpu] += makespan / speeds[gpu];
        per_gpu[gpu].groups.push(plan.groups[idx].clone());
    }
    Ok(NodePlan { per_gpu })
}

/// Node-level outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// Node makespan (max over GPUs).
    pub makespan: Seconds,
    /// Total energy including post-completion idle draw of early GPUs.
    pub energy: Energy,
    pub tasks: usize,
    /// Time-weighted capped fraction across GPUs.
    pub capped_fraction: f64,
}

/// Executes node plans and baselines.
#[derive(Debug, Clone)]
pub struct NodeExecutor {
    executor: Executor,
    device: DeviceSpec,
    n_gpus: usize,
}

impl NodeExecutor {
    pub fn new(config: ExecutorConfig, n_gpus: usize) -> Result<Self> {
        if n_gpus == 0 {
            return Err(Error::InvalidConfig("node needs at least one GPU".into()));
        }
        let device = config.device.clone();
        Ok(NodeExecutor {
            executor: Executor::new(config),
            device,
            n_gpus,
        })
    }

    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Merges per-GPU outcomes into a node outcome, charging idle power to
    /// GPUs that finished before the node makespan (and to entirely idle
    /// GPUs).
    fn merge(&self, outcomes: &[RunOutcome]) -> NodeOutcome {
        let makespan = outcomes
            .iter()
            .map(|o| o.makespan)
            .fold(Seconds::ZERO, Seconds::max);
        let idle: Power = self.device.idle_power;
        let mut energy = Energy::ZERO;
        let mut capped_weighted = 0.0;
        for o in outcomes {
            energy += o.energy;
            energy += idle * makespan.saturating_sub(o.makespan);
            capped_weighted += o.capped_fraction * o.makespan.value();
        }
        // GPUs with no work at all idle for the whole node run.
        let unused = self.n_gpus.saturating_sub(outcomes.len());
        energy += idle * (makespan * unused as f64);
        NodeOutcome {
            makespan,
            energy,
            tasks: outcomes.iter().map(|o| o.tasks).sum(),
            capped_fraction: if makespan.value() > 0.0 {
                capped_weighted / (makespan.value() * self.n_gpus as f64)
            } else {
                0.0
            },
        }
    }

    /// Runs a node plan: each GPU's group sequence executes independently
    /// (in parallel here, since simulated GPUs are independent).
    pub fn run_plan(&self, workflows: &[WorkflowSpec], plan: &NodePlan) -> Result<NodeOutcome> {
        let non_empty: Vec<&SchedulePlan> = plan
            .per_gpu
            .iter()
            .filter(|p| !p.groups.is_empty())
            .collect();
        let outcomes: Vec<RunOutcome> = mpshare_par::try_par_map(&non_empty, |gpu_plan| {
            self.executor.run_plan(workflows, gpu_plan)
        })?;
        Ok(self.merge(&outcomes))
    }

    /// Node-level sequential baseline: workflows are handed out FIFO to
    /// the first free GPU and run exclusively (the paper's "jobs scheduled
    /// individually on GPUs in queue order with no parallel overlap").
    pub fn run_sequential(
        &self,
        workflows: &[WorkflowSpec],
        profiles: &[WorkflowProfile],
    ) -> Result<NodeOutcome> {
        if workflows.len() != profiles.len() {
            return Err(Error::InvalidConfig(
                "workflows and profiles must be parallel vectors".into(),
            ));
        }
        // FIFO list scheduling onto the first-free GPU, by solo durations.
        let mut loads = vec![0.0f64; self.n_gpus];
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); self.n_gpus];
        for (i, p) in profiles.iter().enumerate() {
            let gpu = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .map(|(g, _)| g)
                .expect("n_gpus > 0");
            loads[gpu] += p.duration.value();
            assignment[gpu].push(i);
        }
        let non_empty: Vec<&Vec<usize>> =
            assignment.iter().filter(|idxs| !idxs.is_empty()).collect();
        let outcomes: Vec<RunOutcome> = mpshare_par::try_par_map(&non_empty, |idxs| {
            let subset: Vec<WorkflowSpec> = idxs.iter().map(|&i| workflows[i].clone()).collect();
            self.executor.run_sequential(&subset)
        })?;
        Ok(self.merge(&outcomes))
    }

    /// Relative metrics of a node plan against the node-sequential
    /// baseline.
    pub fn evaluate(
        &self,
        workflows: &[WorkflowSpec],
        profiles: &[WorkflowProfile],
        plan: &NodePlan,
    ) -> Result<Metrics> {
        let shared = self.run_plan(workflows, plan)?;
        let seq = self.run_sequential(workflows, profiles)?;
        Ok(Metrics::relative(
            shared.makespan,
            shared.energy,
            shared.capped_fraction,
            seq.makespan,
            seq.energy,
            shared.tasks,
        ))
    }
}

/// Executes node plans on a *heterogeneous* GPU set: one executor per
/// device, all calibrated against the profiling device.
#[derive(Debug, Clone)]
pub struct HeteroNodeExecutor {
    executors: Vec<Executor>,
    devices: Vec<DeviceSpec>,
}

impl HeteroNodeExecutor {
    /// `base` supplies overheads and the calibration device (its `device`
    /// field); `devices` are the node's actual GPUs.
    pub fn new(base: ExecutorConfig, devices: Vec<DeviceSpec>) -> Result<Self> {
        if devices.is_empty() {
            return Err(Error::InvalidConfig("node needs at least one GPU".into()));
        }
        let calibration = base.device.clone();
        let executors = devices
            .iter()
            .map(|d| {
                let mut config = base.clone();
                config.device = d.clone();
                config.calibration_device = Some(calibration.clone());
                Executor::new(config)
            })
            .collect();
        Ok(HeteroNodeExecutor { executors, devices })
    }

    /// Runs a node plan (one per-GPU plan per device, by position).
    pub fn run_plan(&self, workflows: &[WorkflowSpec], plan: &NodePlan) -> Result<NodeOutcome> {
        if plan.per_gpu.len() != self.devices.len() {
            return Err(Error::InvalidConfig(format!(
                "plan has {} GPU schedules for {} devices",
                plan.per_gpu.len(),
                self.devices.len()
            )));
        }
        let indexed: Vec<(usize, &SchedulePlan)> = plan
            .per_gpu
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.groups.is_empty())
            .collect();
        let outcomes: Vec<(usize, RunOutcome)> =
            mpshare_par::try_par_map(&indexed, |&(gpu, gpu_plan)| {
                Ok((gpu, self.executors[gpu].run_plan(workflows, gpu_plan)?))
            })?;

        let makespan = outcomes
            .iter()
            .map(|(_, o)| o.makespan)
            .fold(Seconds::ZERO, Seconds::max);
        let mut energy = Energy::ZERO;
        let mut capped_weighted = 0.0;
        let mut busy = vec![false; self.devices.len()];
        let mut tasks = 0usize;
        for (gpu, o) in &outcomes {
            busy[*gpu] = true;
            energy += o.energy;
            energy += self.devices[*gpu].idle_power * makespan.saturating_sub(o.makespan);
            capped_weighted += o.capped_fraction * o.makespan.value();
            tasks += o.tasks;
        }
        for (gpu, was_busy) in busy.iter().enumerate() {
            if !was_busy {
                energy += self.devices[gpu].idle_power * makespan;
            }
        }
        Ok(NodeOutcome {
            makespan,
            energy,
            tasks,
            capped_fraction: if makespan.value() > 0.0 {
                capped_weighted / (makespan.value() * self.devices.len() as f64)
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerStrategy};
    use crate::policy::MetricPriority;
    use crate::wprofile::workflow_profile;
    use mpshare_profiler::ProfileStore;
    use mpshare_workloads::{BenchmarkKind, ProblemSize};

    fn device() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn setup(queue: &[WorkflowSpec]) -> Vec<WorkflowProfile> {
        let mut store = ProfileStore::new();
        store.profile_workflows(&device(), queue).unwrap();
        queue
            .iter()
            .map(|w| workflow_profile(&store, w).unwrap())
            .collect()
    }

    fn queue() -> Vec<WorkflowSpec> {
        vec![
            WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 25),
            WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 20),
            WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 1),
        ]
    }

    #[test]
    fn distribute_balances_loads_across_gpus() {
        let d = device();
        let q = queue();
        let profiles = setup(&q);
        let plan = Planner::new(d.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        let node = distribute_plan(&d, &plan, &profiles, 2, 0.0).unwrap();
        node.validate(&d, &profiles).unwrap();
        assert_eq!(node.per_gpu.len(), 2);
        assert_eq!(node.workflow_count(), q.len());
        // Both GPUs got something (the plan has ≥2 groups).
        assert!(node.per_gpu.iter().all(|p| !p.groups.is_empty()));
    }

    #[test]
    fn two_gpus_beat_one_gpu_makespan() {
        let d = device();
        let q = queue();
        let profiles = setup(&q);
        let plan = Planner::new(d.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        let config = ExecutorConfig::new(d.clone());

        let one = NodeExecutor::new(config.clone(), 1).unwrap();
        let node1 = distribute_plan(&d, &plan, &profiles, 1, 0.0).unwrap();
        let r1 = one.run_plan(&q, &node1).unwrap();

        let two = NodeExecutor::new(config, 2).unwrap();
        let node2 = distribute_plan(&d, &plan, &profiles, 2, 0.0).unwrap();
        let r2 = two.run_plan(&q, &node2).unwrap();

        assert_eq!(r1.tasks, r2.tasks);
        assert!(
            r2.makespan < r1.makespan,
            "2 GPUs {} !< 1 GPU {}",
            r2.makespan,
            r1.makespan
        );
    }

    #[test]
    fn node_energy_charges_idle_gpus() {
        let d = device();
        let q = vec![WorkflowSpec::uniform(
            BenchmarkKind::Kripke,
            ProblemSize::X1,
            5,
        )];
        let profiles = setup(&q);
        let plan = Planner::new(d.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        let config = ExecutorConfig::new(d.clone());

        let r1 = NodeExecutor::new(config.clone(), 1)
            .unwrap()
            .run_plan(&q, &distribute_plan(&d, &plan, &profiles, 1, 0.0).unwrap())
            .unwrap();
        let r4 = NodeExecutor::new(config, 4)
            .unwrap()
            .run_plan(&q, &distribute_plan(&d, &plan, &profiles, 4, 0.0).unwrap())
            .unwrap();
        assert_eq!(r1.makespan, r4.makespan);
        // Three extra idle GPUs burn 3 × idle × makespan more.
        let extra = 3.0 * 75.0 * r1.makespan.value();
        assert!((r4.energy.joules() - r1.energy.joules() - extra).abs() < 1.0);
    }

    #[test]
    fn planned_node_beats_node_sequential() {
        let d = device();
        let q = queue();
        let profiles = setup(&q);
        let plan = Planner::new(d.clone(), MetricPriority::balanced_product())
            .plan(&profiles, PlannerStrategy::Auto)
            .unwrap();
        let node = distribute_plan(&d, &plan, &profiles, 2, 0.0).unwrap();
        let exec = NodeExecutor::new(ExecutorConfig::new(d), 2).unwrap();
        let metrics = exec.evaluate(&q, &profiles, &node).unwrap();
        assert!(
            metrics.throughput_gain > 1.0,
            "node throughput gain {}",
            metrics.throughput_gain
        );
    }

    #[test]
    fn validation_catches_double_and_missing_assignment() {
        let d = device();
        let q = queue();
        let profiles = setup(&q);
        let plan = Planner::new(d.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        let node = distribute_plan(&d, &plan, &profiles, 2, 0.0).unwrap();

        // Duplicate a group onto the other GPU.
        let mut bad = node.clone();
        let extra = bad.per_gpu[0].groups[0].clone();
        bad.per_gpu[1].groups.push(extra);
        assert!(bad.validate(&d, &profiles).is_err());

        // Drop a group entirely.
        let mut bad = node.clone();
        bad.per_gpu[0].groups.clear();
        assert!(bad.validate(&d, &profiles).is_err());
    }

    #[test]
    fn heterogeneous_node_prefers_the_faster_device() {
        let a100 = device();
        let amd = DeviceSpec::mi250x_gcd();
        let q = queue();
        let profiles = setup(&q);
        let plan = Planner::new(a100.clone(), MetricPriority::Throughput)
            .plan(&profiles, PlannerStrategy::Greedy)
            .unwrap();
        // The A100X is the faster device for A100X-calibrated work.
        assert!(super::relative_throughput(&amd, &a100) < 1.0);
        let devices = vec![a100.clone(), amd];
        let node =
            super::distribute_plan_heterogeneous(&a100, &devices, &plan, &profiles, 0.0).unwrap();
        node.validate(&a100, &profiles).unwrap();
        assert_eq!(node.per_gpu.len(), 2);

        let exec = super::HeteroNodeExecutor::new(ExecutorConfig::new(a100), devices).unwrap();
        let outcome = exec.run_plan(&q, &node).unwrap();
        assert_eq!(
            outcome.tasks,
            profiles.iter().map(|p| p.task_count).sum::<usize>()
        );
        assert!(outcome.makespan.value() > 0.0);
    }

    #[test]
    fn hetero_rejects_mismatched_plans_and_empty_nodes() {
        let a100 = device();
        assert!(super::HeteroNodeExecutor::new(ExecutorConfig::new(a100.clone()), vec![]).is_err());
        let exec = super::HeteroNodeExecutor::new(
            ExecutorConfig::new(a100.clone()),
            vec![a100.clone(), a100],
        )
        .unwrap();
        let plan = NodePlan {
            per_gpu: vec![SchedulePlan { groups: vec![] }],
        };
        assert!(exec.run_plan(&[], &plan).is_err());
    }

    #[test]
    fn zero_gpu_node_is_rejected() {
        let d = device();
        assert!(NodeExecutor::new(ExecutorConfig::new(d.clone()), 0).is_err());
        let plan = SchedulePlan { groups: vec![] };
        assert!(distribute_plan(&d, &plan, &[], 0, 0.0).is_err());
    }
}
