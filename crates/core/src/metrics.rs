//! Evaluation metrics (paper §IV-C).
//!
//! **Throughput** is tasks completed per unit time, relative to sequential
//! scheduling of the same queue (same tasks, so it reduces to a makespan
//! ratio). **Energy efficiency** is the reduction in total GPU energy
//! relative to sequential scheduling. A **product metric**
//! `throughputᵃ × efficiencyᵇ` trades the two off, like the energy-delay
//! product in computer architecture.

use mpshare_types::{Energy, Seconds};
use serde::{Deserialize, Serialize};

/// Relative metrics of one scheduling configuration vs. the sequential
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Shared-over-sequential throughput ratio (> 1 = faster).
    pub throughput_gain: f64,
    /// Sequential-over-shared energy ratio (> 1 = less energy).
    pub energy_efficiency_gain: f64,
    /// Shared makespan.
    pub makespan: Seconds,
    /// Shared total energy.
    pub energy: Energy,
    /// Fraction of shared execution time spent SW power capped.
    pub capped_fraction: f64,
    /// Tasks completed.
    pub tasks: usize,
}

impl Metrics {
    /// Baseline-over-shared ratio with consistent degenerate semantics:
    /// a zero-cost shared run is trivially *at least as good* as the
    /// baseline, so the gain is `+inf` when the baseline cost is positive
    /// and `1.0` when both costs are zero (identical trivial work). It is
    /// never `0.0`, which would read as infinitely *worse*.
    fn ratio_gain(baseline: f64, shared: f64) -> f64 {
        if shared > 0.0 {
            baseline / shared
        } else if baseline > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// Computes relative metrics from raw shared and sequential outcomes.
    /// Both runs must complete the same task set.
    pub fn relative(
        shared_makespan: Seconds,
        shared_energy: Energy,
        shared_capped_fraction: f64,
        seq_makespan: Seconds,
        seq_energy: Energy,
        tasks: usize,
    ) -> Metrics {
        let throughput_gain = Metrics::ratio_gain(seq_makespan.value(), shared_makespan.value());
        let energy_efficiency_gain =
            Metrics::ratio_gain(seq_energy.joules(), shared_energy.joules());
        Metrics {
            throughput_gain,
            energy_efficiency_gain,
            makespan: shared_makespan,
            energy: shared_energy,
            capped_fraction: shared_capped_fraction,
            tasks,
        }
    }

    /// Evaluates a product metric on this result.
    pub fn product(&self, metric: ProductMetric) -> f64 {
        metric.evaluate(self.throughput_gain, self.energy_efficiency_gain)
    }
}

/// A `throughputᵃ × efficiencyᵇ` product metric.
///
/// ```
/// use mpshare_core::ProductMetric;
///
/// // A throughput-leaning config vs. an energy-leaning config...
/// let (fast, frugal) = ((1.9, 1.05), (1.3, 1.5));
/// // ...rank differently under different products (the paper's §IV-C point).
/// let balanced = ProductMetric::BALANCED;
/// assert!(balanced.evaluate(fast.0, fast.1) > balanced.evaluate(frugal.0, frugal.1));
/// let t2e = ProductMetric::THROUGHPUT_LEANING;
/// assert!(t2e.evaluate(fast.0, fast.1) / t2e.evaluate(frugal.0, frugal.1)
///     > balanced.evaluate(fast.0, fast.1) / balanced.evaluate(frugal.0, frugal.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductMetric {
    pub throughput_exponent: u32,
    pub energy_exponent: u32,
}

impl ProductMetric {
    /// Equal weighting: `throughput × efficiency`.
    pub const BALANCED: ProductMetric = ProductMetric {
        throughput_exponent: 1,
        energy_exponent: 1,
    };

    /// The paper's example of a throughput-weighted product:
    /// `throughput × throughput × efficiency`.
    pub const THROUGHPUT_LEANING: ProductMetric = ProductMetric {
        throughput_exponent: 2,
        energy_exponent: 1,
    };

    pub fn evaluate(&self, throughput: f64, efficiency: f64) -> f64 {
        throughput.powi(self.throughput_exponent as i32)
            * efficiency.powi(self.energy_exponent as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_metrics_are_ratios() {
        let m = Metrics::relative(
            Seconds::new(50.0),
            Energy::from_joules(4000.0),
            0.1,
            Seconds::new(100.0),
            Energy::from_joules(6000.0),
            10,
        );
        assert!((m.throughput_gain - 2.0).abs() < 1e-12);
        assert!((m.energy_efficiency_gain - 1.5).abs() < 1e-12);
        assert_eq!(m.tasks, 10);
    }

    #[test]
    fn zero_cost_shared_run_is_trivially_better_not_worse() {
        // A shared run that takes no time and no energy against a real
        // baseline: infinitely better, not (the old bug) infinitely worse.
        let m = Metrics::relative(
            Seconds::ZERO,
            Energy::ZERO,
            0.0,
            Seconds::new(10.0),
            Energy::from_joules(100.0),
            0,
        );
        assert_eq!(m.throughput_gain, f64::INFINITY);
        assert_eq!(m.energy_efficiency_gain, f64::INFINITY);
    }

    #[test]
    fn doubly_degenerate_inputs_are_neutral() {
        // Both runs cost nothing: equal trivial work, ratio 1.0, no NaN.
        let m = Metrics::relative(
            Seconds::ZERO,
            Energy::ZERO,
            0.0,
            Seconds::ZERO,
            Energy::ZERO,
            0,
        );
        assert_eq!(m.throughput_gain, 1.0);
        assert_eq!(m.energy_efficiency_gain, 1.0);
        assert!(!m.throughput_gain.is_nan());
    }

    #[test]
    fn balanced_product_multiplies() {
        assert!((ProductMetric::BALANCED.evaluate(2.0, 1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_leaning_product_squares_throughput() {
        assert!((ProductMetric::THROUGHPUT_LEANING.evaluate(2.0, 1.5) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn product_changes_configuration_ranking() {
        // The paper's point: configuration A (throughput-y) vs B (energy-y)
        // rank differently under different products.
        let a = (1.9, 1.05);
        let b = (1.3, 1.5);
        let balanced = ProductMetric::BALANCED;
        assert!(balanced.evaluate(a.0, a.1) > balanced.evaluate(b.0, b.1));
        let energy_leaning = ProductMetric {
            throughput_exponent: 1,
            energy_exponent: 3,
        };
        assert!(energy_leaning.evaluate(a.0, a.1) < energy_leaning.evaluate(b.0, b.1));
    }
}
