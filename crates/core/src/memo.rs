//! Subset-keyed memo for [`GroupEstimate`]s.
//!
//! Every planner strategy and the annealer bottom out in
//! [`crate::estimate::estimate_group`] over a member list, and the same
//! lists recur exponentially often: the exhaustive search re-visits each
//! subset once per partition containing it, the best-fit cap sweep re-tries
//! the same trial groups for every cap, and annealing re-scores the
//! untouched groups of every proposal. [`EstimateMemo`] caches one estimate
//! per *ordered* member list so each is computed exactly once per planning
//! call.
//!
//! # Key scheme and bit-identity
//!
//! `estimate_group` sums floats in member order, so two orderings of the
//! same set are *not* interchangeable bit for bit. Keys therefore encode
//! the exact ordered list ([`GroupKey::Members`]) — except for strictly
//! ascending lists over indices < 64, which are canonical (only one
//! ascending order exists per set) and compress to a bitmask
//! ([`GroupKey::Mask`]). The exhaustive planner's restricted-growth-string
//! enumeration emits exactly such ascending lists, giving it the cheap
//! `u64` key of the classic subset-DP formulation; greedy/best-fit/anneal
//! lists in arbitrary order fall back to the hashed exact key. Either way
//! a hit returns the value computed for the identical member order, so
//! memoized scoring is bit-identical to scoring from scratch.
//!
//! Sharding mirrors `mpshare_profiler::ProfileCache`: 16 `RwLock`ed hash
//! maps selected by key hash, reads lock-free of writers, the losing racer
//! of a concurrent miss discards its duplicate (deterministic value, so
//! either copy is the same).

use crate::estimate::GroupEstimate;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

const SHARD_COUNT: usize = 16;

/// Cache key: the exact ordered member list of a group (see module docs
/// for when the bitmask form applies).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Strictly ascending member list over indices < 64, as a bitmask.
    Mask(u64),
    /// Any other ordered member list, verbatim.
    Members(Box<[u32]>),
}

impl GroupKey {
    /// Builds the key for an ordered member list.
    pub fn new(members: &[usize]) -> GroupKey {
        let ascending_small = members.last().is_some_and(|&last| last < 64)
            && members.windows(2).all(|w| w[0] < w[1]);
        if members.is_empty() || ascending_small {
            let mut mask = 0u64;
            for &m in members {
                mask |= 1u64 << m;
            }
            GroupKey::Mask(mask)
        } else {
            GroupKey::Members(members.iter().map(|&m| m as u32).collect())
        }
    }
}

/// Hit/miss counters of a memo (observability; see
/// [`EstimateMemo::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
}

/// Sharded concurrent memo from [`GroupKey`] to [`GroupEstimate`].
///
/// One memo is scoped to one planning call (profiles are positional, so
/// keys are only meaningful against a fixed queue); it is shared across
/// that call's `mpshare-par` worker threads.
#[derive(Debug)]
pub struct EstimateMemo {
    shards: [RwLock<HashMap<GroupKey, GroupEstimate>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for EstimateMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateMemo {
    pub fn new() -> Self {
        EstimateMemo {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_index(key: &GroupKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % SHARD_COUNT
    }

    /// Returns the cached estimate for `key`, computing and inserting it
    /// on a miss. `compute` must be the deterministic estimate of the
    /// member list the key encodes.
    pub fn get_or_compute(
        &self,
        key: GroupKey,
        compute: impl FnOnce() -> GroupEstimate,
    ) -> GroupEstimate {
        let shard = &self.shards[Self::shard_index(&key)];
        if let Some(hit) = shard.read().expect("memo shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mpshare_obs::counter_add(mpshare_obs::names::ESTIMATE_MEMO_HITS, 1);
            return *hit;
        }
        let mut map = shard.write().expect("memo shard poisoned");
        match map.entry(key) {
            Entry::Occupied(entry) => {
                // Lost a race: another worker computed it first.
                self.hits.fetch_add(1, Ordering::Relaxed);
                mpshare_obs::counter_add(mpshare_obs::names::ESTIMATE_MEMO_HITS, 1);
                *entry.get()
            }
            Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mpshare_obs::counter_add(mpshare_obs::names::ESTIMATE_MEMO_MISSES, 1);
                *slot.insert(compute())
            }
        }
    }

    /// Rebuilds the memo under a queue-position remap (warm-started
    /// planning over an evolving queue; see `Planner::plan_warm`).
    ///
    /// `remap(old_pos)` gives the position the workflow formerly at
    /// `old_pos` occupies in the new queue, or `None` if it left; entries
    /// whose member list contains a departed workflow are dropped, every
    /// other entry is re-keyed with its members remapped (and re-encoded,
    /// since a shifted list may gain or lose mask-form eligibility). The
    /// carried values stay bit-valid: an estimate depends only on the
    /// member profiles in list order, and the remap preserves both the
    /// profiles (stable ids) and their relative order.
    pub fn translated(&self, remap: impl Fn(usize) -> Option<usize>) -> EstimateMemo {
        let out = EstimateMemo::new();
        // Translation itself must stay cheap on the allocator — it runs
        // on every warm planning call. One member buffer is reused across
        // entries, shards are pre-sized, and mask-form keys (the common
        // case: every exhaustive-search group) re-encode heap-free.
        let per_shard = self.len().div_ceil(SHARD_COUNT) * 2;
        for shard in &out.shards {
            shard
                .write()
                .expect("memo shard poisoned")
                .reserve(per_shard);
        }
        let mut mapped: Vec<usize> = Vec::with_capacity(64);
        for shard in &self.shards {
            for (key, value) in shard.read().expect("memo shard poisoned").iter() {
                mapped.clear();
                let mut alive = true;
                match key {
                    GroupKey::Mask(mask) => {
                        let mut m = *mask;
                        while m != 0 {
                            let old_pos = m.trailing_zeros() as usize;
                            m &= m - 1;
                            match remap(old_pos) {
                                Some(new_pos) => mapped.push(new_pos),
                                None => {
                                    alive = false;
                                    break;
                                }
                            }
                        }
                    }
                    GroupKey::Members(list) => {
                        for &old_pos in list.iter() {
                            match remap(old_pos as usize) {
                                Some(new_pos) => mapped.push(new_pos),
                                None => {
                                    alive = false;
                                    break;
                                }
                            }
                        }
                    }
                }
                if alive {
                    let new_key = GroupKey::new(&mapped);
                    out.shards[Self::shard_index(&new_key)]
                        .write()
                        .expect("memo shard poisoned")
                        .insert(new_key, *value);
                }
            }
        }
        out
    }

    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Distinct member lists cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("memo shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, Seconds};

    fn est(makespan: f64) -> GroupEstimate {
        GroupEstimate {
            makespan: Seconds::new(makespan),
            energy: Energy::from_joules(makespan * 100.0),
            tasks: 1,
        }
    }

    #[test]
    fn ascending_small_lists_use_masks() {
        assert_eq!(GroupKey::new(&[0, 3, 5]), GroupKey::Mask(0b101001));
        assert_eq!(GroupKey::new(&[]), GroupKey::Mask(0));
        assert_eq!(GroupKey::new(&[63]), GroupKey::Mask(1 << 63));
    }

    #[test]
    fn orderings_get_distinct_keys() {
        // Float sums are order-dependent, so [3, 1] must not alias [1, 3].
        let asc = GroupKey::new(&[1, 3]);
        let desc = GroupKey::new(&[3, 1]);
        assert_ne!(asc, desc);
        assert!(matches!(asc, GroupKey::Mask(_)));
        assert!(matches!(desc, GroupKey::Members(_)));
    }

    #[test]
    fn large_indices_fall_back_to_members() {
        assert!(matches!(GroupKey::new(&[2, 64]), GroupKey::Members(_)));
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo = EstimateMemo::new();
        let mut calls = 0;
        let a = memo.get_or_compute(GroupKey::new(&[1, 2]), || {
            calls += 1;
            est(5.0)
        });
        let b = memo.get_or_compute(GroupKey::new(&[1, 2]), || {
            calls += 1;
            est(7.0)
        });
        assert_eq!(calls, 1);
        assert_eq!(a, b);
        assert_eq!(memo.stats(), MemoStats { hits: 1, misses: 1 });
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn memo_is_shareable_across_threads() {
        let memo = EstimateMemo::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..32usize {
                        let members = [i % 8, 8 + i % 8];
                        memo.get_or_compute(GroupKey::new(&members), || est(i as f64));
                    }
                });
            }
        });
        assert_eq!(memo.len(), 8);
        let stats = memo.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 32);
    }
}
