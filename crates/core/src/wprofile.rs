//! Workflow-granularity profiles.
//!
//! The scheduler collocates *workflows* (sequences of tasks), so per-task
//! profiles from the offline pass are aggregated: utilizations are
//! duration-weighted averages over the workflow's tasks, memory is the
//! maximum (tasks run one at a time within a workflow), and durations and
//! energies sum.

use mpshare_profiler::ProfileStore;
use mpshare_types::{Energy, Fraction, MemBytes, Percent, Power, Result, Seconds};
use mpshare_workloads::WorkflowSpec;
use serde::{Deserialize, Serialize};

/// Aggregated profile of one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProfile {
    pub label: String,
    /// Total tasks the workflow completes.
    pub task_count: usize,
    /// Duration-weighted average SM utilization (solo).
    pub avg_sm_util: Percent,
    /// Duration-weighted average memory-bandwidth utilization (solo).
    pub avg_bw_util: Percent,
    /// Maximum resident memory of any task.
    pub max_memory: MemBytes,
    /// Solo wall-clock duration of the whole workflow.
    pub duration: Seconds,
    /// Solo total energy of the whole workflow.
    pub energy: Energy,
    /// Duration-weighted average power (solo).
    pub avg_power: Power,
    /// Duration-weighted GPU-busy fraction.
    pub busy_fraction: f64,
    /// Largest saturation partition over the workflow's tasks: the
    /// smallest MPS partition that keeps every task at full throughput.
    pub saturation_partition: Fraction,
}

impl WorkflowProfile {
    /// Dynamic (above-idle) energy of the workflow. In the simulator's
    /// power model this is invariant under contention stretching: dynamic
    /// power scales with progress rate while time scales inversely, so the
    /// estimator treats it as a conserved quantity.
    pub fn dynamic_energy(&self, idle_power: Power) -> Energy {
        let idle = idle_power * self.duration;
        if idle.joules() >= self.energy.joules() {
            Energy::ZERO
        } else {
            self.energy - idle
        }
    }

    /// SM utilization while the workflow's kernels actually run.
    pub fn burst_sm_util(&self) -> f64 {
        (self.avg_sm_util.value() / 100.0 / self.busy_fraction.max(1e-9)).min(1.0)
    }

    /// Bandwidth utilization while kernels run.
    pub fn burst_bw_util(&self) -> f64 {
        (self.avg_bw_util.value() / 100.0 / self.busy_fraction.max(1e-9)).min(1.0)
    }
}

/// Builds the workflow profile from the store (which must already contain
/// profiles for every (benchmark, size) the workflow references).
pub fn workflow_profile(store: &ProfileStore, spec: &WorkflowSpec) -> Result<WorkflowProfile> {
    let mut duration = 0.0;
    let mut energy = 0.0;
    let mut sm_weighted = 0.0;
    let mut bw_weighted = 0.0;
    let mut busy_weighted = 0.0;
    let mut max_memory = MemBytes::ZERO;
    let mut task_count = 0usize;
    let mut saturation = Fraction::ZERO;

    for entry in &spec.entries {
        let p = store.get_source(&entry.source)?;
        let n = entry.iterations as f64;
        let d = p.duration.value() * n;
        duration += d;
        energy += p.energy.joules() * n;
        sm_weighted += p.avg_sm_util.value() * d;
        bw_weighted += p.avg_bw_util.value() * d;
        busy_weighted += p.busy_fraction * d;
        max_memory = max_memory.max(p.max_memory);
        task_count += entry.iterations;
        saturation = saturation.max(p.saturation_partition);
    }

    if duration <= 0.0 {
        return Err(mpshare_types::Error::InvalidConfig(format!(
            "workflow {:?} has zero duration",
            spec.label()
        )));
    }

    Ok(WorkflowProfile {
        label: spec.label(),
        task_count,
        avg_sm_util: Percent::clamped(sm_weighted / duration),
        avg_bw_util: Percent::clamped(bw_weighted / duration),
        max_memory,
        duration: Seconds::new(duration),
        energy: Energy::from_joules(energy),
        avg_power: Power::from_watts(energy / duration),
        busy_fraction: (busy_weighted / duration).clamp(0.0, 1.0),
        saturation_partition: saturation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_gpusim::DeviceSpec;
    use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowTask};

    fn store_for(specs: &[WorkflowSpec]) -> ProfileStore {
        let mut store = ProfileStore::new();
        store
            .profile_workflows(&DeviceSpec::a100x(), specs)
            .unwrap();
        store
    }

    #[test]
    fn uniform_workflow_scales_linearly_with_iterations() {
        let w1 = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 1);
        let w5 = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 5);
        let store = store_for(&[w1.clone(), w5.clone()]);
        let p1 = workflow_profile(&store, &w1).unwrap();
        let p5 = workflow_profile(&store, &w5).unwrap();
        assert_eq!(p5.task_count, 5);
        assert!((p5.duration.value() - 5.0 * p1.duration.value()).abs() < 1e-6);
        assert!((p5.energy.joules() - 5.0 * p1.energy.joules()).abs() < 1e-6);
        // Averages are iteration-invariant.
        assert_eq!(p5.avg_sm_util, p1.avg_sm_util);
        assert_eq!(p5.max_memory, p1.max_memory);
    }

    #[test]
    fn mixed_workflow_weights_by_duration() {
        let mixed = WorkflowSpec::new(vec![
            WorkflowTask::new(BenchmarkKind::AthenaPk, ProblemSize::X1, 1),
            WorkflowTask::new(BenchmarkKind::Lammps, ProblemSize::X4, 1),
        ]);
        let store = store_for(std::slice::from_ref(&mixed));
        let p = workflow_profile(&store, &mixed).unwrap();
        let athena = store.get(BenchmarkKind::AthenaPk, ProblemSize::X1).unwrap();
        let lammps = store.get(BenchmarkKind::Lammps, ProblemSize::X4).unwrap();
        // LAMMPS 4x is ~44x longer, so the average leans hard toward it.
        assert!(p.avg_sm_util > athena.avg_sm_util);
        assert!(p.avg_sm_util.value() > 0.9 * lammps.avg_sm_util.value());
        assert_eq!(p.max_memory, lammps.max_memory.max(athena.max_memory));
        assert_eq!(p.task_count, 2);
    }

    #[test]
    fn burst_utils_divide_by_busy_fraction() {
        let w = WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 1);
        let store = store_for(std::slice::from_ref(&w));
        let p = workflow_profile(&store, &w).unwrap();
        assert!(p.burst_sm_util() > p.avg_sm_util.value() / 100.0);
        assert!(p.burst_sm_util() <= 1.0);
    }

    #[test]
    fn dynamic_energy_subtracts_idle_floor() {
        let w = WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2);
        let store = store_for(std::slice::from_ref(&w));
        let p = workflow_profile(&store, &w).unwrap();
        let idle = Power::from_watts(75.0);
        let dynamic = p.dynamic_energy(idle);
        assert!(dynamic.joules() > 0.0);
        assert!(dynamic.joules() < p.energy.joules());
        // Never negative, even with an absurd idle power.
        assert_eq!(p.dynamic_energy(Power::from_watts(10_000.0)), Energy::ZERO);
    }

    #[test]
    fn missing_profiles_propagate_errors() {
        let w = WorkflowSpec::uniform(BenchmarkKind::WarpX, ProblemSize::X2, 1);
        let store = ProfileStore::new();
        assert!(workflow_profile(&store, &w).is_err());
    }
}
