//! Simulated-annealing refinement of schedule plans.
//!
//! The greedy and best-fit planners build plans constructively; annealing
//! *searches* the neighborhood of a seed plan with random move/swap
//! perturbations, accepting uphill moves with decaying probability. The
//! score is the analytic estimator under the planner's metric priority, so
//! a full anneal costs microseconds, not simulations.
//!
//! Moves preserve the hard constraints (memory capacity, client limit);
//! the soft 100 %-sum interference rule is left to the score, which
//! already prices contention.

use crate::estimate::GroupEstimate;
use crate::memo::EstimateMemo;
use crate::planner::{PlanGroup, Planner, SchedulePlan};
use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::MemBytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    pub iterations: u32,
    pub seed: u64,
    /// Initial temperature as a fraction of the seed plan's score.
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 2_000,
            seed: 0x6d70_7368,
            initial_temperature: 0.05,
            cooling: 0.998,
        }
    }
}

/// Internal group representation during the search: index sets only;
/// partitions are re-derived at the end.
#[derive(Debug, Clone)]
struct State {
    groups: Vec<Vec<usize>>,
}

impl State {
    fn from_plan(plan: &SchedulePlan) -> State {
        State {
            groups: plan
                .groups
                .iter()
                .map(|g| g.workflow_indices.clone())
                .collect(),
        }
    }

    fn group_memory(&self, g: usize, profiles: &[WorkflowProfile]) -> MemBytes {
        self.groups[g].iter().map(|&i| profiles[i].max_memory).sum()
    }
}

/// Refines `seed_plan` by simulated annealing; returns a plan scoring at
/// least as well (the best state ever visited is kept).
pub fn anneal(
    planner: &Planner,
    device: &DeviceSpec,
    profiles: &[WorkflowProfile],
    seed_plan: &SchedulePlan,
    config: AnnealConfig,
) -> SchedulePlan {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let materialize = |state: &State| -> SchedulePlan {
        let groups = state
            .groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|members| {
                let member_profiles: Vec<&WorkflowProfile> =
                    members.iter().map(|&i| &profiles[i]).collect();
                PlanGroup {
                    workflow_indices: members.clone(),
                    partitions: planner.partition_strategy().partitions(&member_profiles),
                }
            })
            .collect();
        SchedulePlan { groups }
    };

    // Incremental scoring: one estimate per group, kept parallel to
    // `current.groups`. A move/swap touches at most two groups, so a
    // proposal re-estimates only those (through the memo — revisited
    // configurations are hits) and re-sums the cached totals left to
    // right in group order, exactly as `score_plan` would. Untouched
    // groups keep their member order across moves (`swap_remove` only
    // reorders the source group), so their cached estimates are the
    // bitwise-identical values a from-scratch pass would recompute.
    let memo = EstimateMemo::new();
    let seq = Planner::sequential_baseline(profiles);
    let score_of = |estimates: &[GroupEstimate], groups: &[Vec<usize>]| -> f64 {
        let mut makespan = 0.0;
        let mut energy = 0.0;
        for (members, e) in groups.iter().zip(estimates) {
            if members.is_empty() {
                continue;
            }
            makespan += e.makespan.value();
            energy += e.energy.joules();
        }
        planner.score_totals(&seq, makespan, energy)
    };

    let mut current = State::from_plan(seed_plan);
    let mut current_estimates: Vec<GroupEstimate> = current
        .groups
        .iter()
        .map(|members| planner.estimate_members(members, profiles, &memo))
        .collect();
    let mut current_score = score_of(&current_estimates, &current.groups);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut temperature = (config.initial_temperature * current_score).max(1e-6);

    // Batched neighbor evaluation: each round proposes a fixed-size batch
    // of moves from the current state (all RNG draws happen here, in a
    // fixed order), then walks the batch in proposal order applying the
    // usual Metropolis rule. Scoring happens lazily during the walk — a
    // proposal's score is a pure function of the candidate, so proposals
    // past the first acceptance are never scored at all. The first
    // accepted candidate advances the chain and invalidates the rest of
    // the batch (they were proposed from the pre-move state); only
    // examined proposals consume iterations, so the chain explores
    // exactly `config.iterations` neighbors. The batch size is a
    // constant, so the RNG stream — and therefore the accepted chain —
    // is identical to the earlier worker-thread speculative design.
    const SPECULATION: usize = 8;

    let seed_score = current_score;
    let mut accepted: u64 = 0;
    let mut rejected: u64 = 0;

    let mut iterations_left = config.iterations;
    while iterations_left > 0 {
        let batch = SPECULATION.min(iterations_left as usize);
        let mut proposals = Vec::with_capacity(batch);
        for _ in 0..batch {
            let mut candidate = current.clone();
            let touched = propose_move(&mut candidate, profiles, device, &mut rng);
            let uniform = rng.random::<f64>();
            proposals.push((touched, candidate, uniform));
        }

        for (touched, candidate, uniform) in &proposals {
            iterations_left -= 1;
            temperature *= config.cooling;
            let Some((ga, gb)) = *touched else {
                continue;
            };
            let ea = planner.estimate_members(&candidate.groups[ga], profiles, &memo);
            let eb = planner.estimate_members(&candidate.groups[gb], profiles, &memo);
            let mut estimates = current_estimates.clone();
            // A move may have appended one fresh singleton group (gb is
            // then the last index); grow the vec before slotting in.
            while estimates.len() < candidate.groups.len() {
                estimates.push(eb);
            }
            estimates[ga] = ea;
            estimates[gb] = eb;
            let score = score_of(&estimates, &candidate.groups);
            debug_assert_eq!(
                score,
                planner.score_plan(&materialize(candidate), profiles),
                "incremental score diverged from from-scratch scoring"
            );
            let delta = score - current_score;
            if delta >= 0.0 || *uniform < (delta / temperature).exp() {
                accepted += 1;
                current = candidate.clone();
                current_estimates = estimates;
                current_score = score;
                if score > best_score {
                    best = current.clone();
                    best_score = score;
                }
                break;
            }
            rejected += 1;
        }
    }
    if mpshare_obs::enabled() {
        mpshare_obs::counter_add(mpshare_obs::names::ANNEAL_ACCEPTED, accepted);
        mpshare_obs::counter_add(mpshare_obs::names::ANNEAL_REJECTED, rejected);
        mpshare_obs::emit(mpshare_obs::Track::Planner, "anneal", None, None, || {
            serde_json::json!({
                "iterations": config.iterations,
                "accepted": accepted,
                "rejected": rejected,
                "seed_score": seed_score,
                "best_score": best_score,
            })
        });
    }
    materialize(&best)
}

/// Applies one random move or swap; returns the indices of the (at most
/// two) groups the mutation touched, or `None` when the proposal was
/// infeasible or a no-op. Only the returned groups differ from the input
/// state — the scorer re-estimates exactly those.
fn propose_move(
    state: &mut State,
    profiles: &[WorkflowProfile],
    device: &DeviceSpec,
    rng: &mut StdRng,
) -> Option<(usize, usize)> {
    let non_empty: Vec<usize> = (0..state.groups.len())
        .filter(|&g| !state.groups[g].is_empty())
        .collect();
    if non_empty.is_empty() {
        return None;
    }
    if rng.random::<f64>() < 0.5 {
        // Move one workflow to another group (possibly a fresh one).
        let from = non_empty[rng.random_range(0..non_empty.len())];
        let pos = rng.random_range(0..state.groups[from].len());
        let workflow = state.groups[from][pos];
        // Destination: an existing group or a new singleton.
        let make_new = rng.random_range(0..=state.groups.len());
        if make_new == state.groups.len() {
            if state.groups[from].len() == 1 {
                return None; // singleton to singleton: no-op
            }
            state.groups[from].swap_remove(pos);
            state.groups.push(vec![workflow]);
            return Some((from, state.groups.len() - 1));
        }
        let to = make_new;
        if to == from {
            return None;
        }
        if state.groups[to].len() + 1 > device.max_mps_clients {
            return None;
        }
        let new_mem = state.group_memory(to, profiles) + profiles[workflow].max_memory;
        if new_mem > device.memory_capacity {
            return None;
        }
        state.groups[from].swap_remove(pos);
        state.groups[to].push(workflow);
        Some((from, to))
    } else {
        // Swap two workflows between different groups.
        if non_empty.len() < 2 {
            return None;
        }
        let ga = non_empty[rng.random_range(0..non_empty.len())];
        let gb = non_empty[rng.random_range(0..non_empty.len())];
        if ga == gb {
            return None;
        }
        let pa = rng.random_range(0..state.groups[ga].len());
        let pb = rng.random_range(0..state.groups[gb].len());
        let (wa, wb) = (state.groups[ga][pa], state.groups[gb][pb]);
        let mem_a = state
            .group_memory(ga, profiles)
            .saturating_sub(profiles[wa].max_memory)
            + profiles[wb].max_memory;
        let mem_b = state
            .group_memory(gb, profiles)
            .saturating_sub(profiles[wb].max_memory)
            + profiles[wa].max_memory;
        if mem_a > device.memory_capacity || mem_b > device.memory_capacity {
            return None;
        }
        state.groups[ga][pa] = wb;
        state.groups[gb][pb] = wa;
        Some((ga, gb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerStrategy;
    use crate::policy::MetricPriority;
    use mpshare_types::{Energy, Fraction, Percent, Power, Seconds};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn profile(sm: f64, duration: f64, mem_gib: u64) -> WorkflowProfile {
        let power = 75.0 + 1.75 * sm;
        WorkflowProfile {
            label: format!("wf(sm={sm})"),
            task_count: 2,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(2.0),
            max_memory: MemBytes::from_gib(mem_gib),
            duration: Seconds::new(duration),
            energy: Energy::from_joules(power * duration),
            avg_power: Power::from_watts(power),
            busy_fraction: 0.8,
            saturation_partition: Fraction::new(0.9),
        }
    }

    fn queue() -> Vec<WorkflowProfile> {
        vec![
            profile(10.0, 50.0, 2),
            profile(25.0, 40.0, 4),
            profile(45.0, 80.0, 8),
            profile(60.0, 30.0, 8),
            profile(70.0, 90.0, 16),
            profile(15.0, 20.0, 2),
        ]
    }

    #[test]
    fn anneal_never_worsens_the_seed_plan() {
        let d = dev();
        let profiles = queue();
        let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
        let seed = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let refined = anneal(&planner, &d, &profiles, &seed, AnnealConfig::default());
        refined.validate(&d, &profiles).unwrap();
        let before = planner.score_plan(&seed, &profiles);
        let after = planner.score_plan(&refined, &profiles);
        assert!(
            after >= before - 1e-12,
            "anneal worsened: {before} -> {after}"
        );
    }

    #[test]
    fn anneal_approaches_exhaustive_quality() {
        let d = dev();
        let profiles = queue();
        let planner = Planner::new(d.clone(), MetricPriority::balanced_product());
        let seed = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let refined = anneal(&planner, &d, &profiles, &seed, AnnealConfig::default());
        let optimal = planner
            .plan(&profiles, PlannerStrategy::Exhaustive)
            .unwrap();
        let refined_score = planner.score_plan(&refined, &profiles);
        let optimal_score = planner.score_plan(&optimal, &profiles);
        assert!(
            refined_score >= 0.95 * optimal_score,
            "anneal {refined_score} far from optimal {optimal_score}"
        );
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let d = dev();
        let profiles = queue();
        let planner = Planner::new(d.clone(), MetricPriority::Energy);
        let seed = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let a = anneal(&planner, &d, &profiles, &seed, AnnealConfig::default());
        let b = anneal(&planner, &d, &profiles, &seed, AnnealConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn anneal_respects_memory_in_every_visited_state() {
        // Two 60 GiB profiles can never share: whatever the search does,
        // the result must keep them apart.
        let d = dev();
        let profiles = vec![profile(10.0, 50.0, 60), profile(15.0, 40.0, 60)];
        let planner = Planner::new(d.clone(), MetricPriority::Energy);
        let seed = planner.plan(&profiles, PlannerStrategy::Greedy).unwrap();
        let refined = anneal(&planner, &d, &profiles, &seed, AnnealConfig::default());
        refined.validate(&d, &profiles).unwrap();
        assert_eq!(refined.groups.len(), 2);
    }
}
