//! Online scheduling: workflows arriving over time.
//!
//! The paper assumes "a pre-existing queue of workflows to be scheduled"
//! (§IV-B) and names a comprehensive scheduling framework as future work.
//! This module provides that extension: a dispatcher that replans every
//! time the GPU frees, over whatever has arrived by then.
//!
//! The loop is group-at-a-time: when the GPU becomes free at time *t*,
//! the planner runs on all workflows that have arrived and not yet been
//! dispatched; the first group of the resulting plan executes to
//! completion; repeat. If nothing is pending, the GPU idles (drawing idle
//! power) until the next arrival. This preserves the paper's task-level
//! granularity — no preemption of resident groups — while handling open
//! arrival processes.

use crate::executor::{Executor, ExecutorConfig, RunOutcome};
use crate::planner::{PlanGroup, PlanWarmState, Planner, PlannerStrategy, SchedulePlan};
use crate::wprofile::{workflow_profile, WorkflowProfile};
use mpshare_gpusim::{unit_hash, DeviceSpec, FaultPlan};
use mpshare_profiler::ProfileStore;
use mpshare_types::{Energy, Error, Fraction, IdAllocator, Result, Seconds};
use mpshare_workloads::WorkflowSpec;
use serde::{Deserialize, Serialize};

/// A workflow with an arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivingWorkflow {
    pub spec: WorkflowSpec,
    pub arrival: Seconds,
}

/// One dispatch decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// When the group started on the GPU.
    pub at: Seconds,
    /// Indices (into the arrival list) of the workflows in the group.
    pub workflows: Vec<usize>,
    /// The group's makespan.
    pub duration: Seconds,
}

/// Result of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Completion time of the last group.
    pub makespan: Seconds,
    /// Total energy including idle gaps between dispatches.
    pub energy: Energy,
    /// Tasks that actually completed (failed attempts contribute nothing).
    pub tasks: usize,
    pub decisions: Vec<DispatchRecord>,
    /// Mean time workflows spent queued (first dispatch − arrival).
    pub mean_wait: Seconds,
    /// Dispatches that had to be repeated after a fault.
    #[serde(default)]
    pub retries: usize,
    /// Injected faults that fired across all dispatches.
    #[serde(default)]
    pub faults: usize,
    /// Workflows abandoned after exhausting the retry budget.
    #[serde(default)]
    pub failed_workflows: Vec<usize>,
    /// Dynamic energy spent on attempts that were later discarded.
    #[serde(default)]
    pub wasted_energy: Energy,
    /// Completed tasks per second of makespan — the throughput that
    /// survives faults.
    #[serde(default)]
    pub goodput: f64,
}

/// Seeded fault model for online runs: on each dispatch, every group
/// member faults independently with probability `rate`, at a time uniform
/// in `[0, solo_wall)` of that member. Draws are keyed by
/// `(seed, workflow, attempt)` only, so a retried workflow re-rolls its
/// fate while the schedule stays a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineFaultModel {
    pub seed: u64,
    pub rate: f64,
}

impl OnlineFaultModel {
    pub fn new(seed: u64, rate: f64) -> Result<Self> {
        let model = OnlineFaultModel { seed, rate };
        model.validate()?;
        Ok(model)
    }

    pub fn validate(&self) -> Result<()> {
        if !self.rate.is_finite() || !(0.0..=1.0).contains(&self.rate) {
            return Err(Error::InvalidConfig(format!(
                "online fault rate must be in [0, 1], got {}",
                self.rate
            )));
        }
        Ok(())
    }
}

/// How the dispatcher recovers from failed dispatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Total attempts per workflow (first dispatch included) before it is
    /// abandoned.
    pub max_attempts: usize,
    /// Base of the exponential dispatch backoff: after attempt *k* fails,
    /// the workflow is not redispatched before
    /// `backoff_base * 2^(k-1)` has passed.
    pub backoff_base: Seconds,
    /// Once a workflow has *originated* this many faults it degrades to
    /// exclusive execution — it runs alone so its next crash cannot take
    /// innocent group-mates down with the shared server.
    pub exclusive_after: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 3,
            backoff_base: Seconds::new(30.0),
            exclusive_after: 2,
        }
    }
}

impl RecoveryPolicy {
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(Error::InvalidConfig(
                "recovery policy needs at least one attempt".into(),
            ));
        }
        if self.exclusive_after == 0 {
            return Err(Error::InvalidConfig(
                "exclusive_after must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The plan's first group, as a typed error instead of a panic when the
/// planner returns no groups.
fn first_group(plan: &SchedulePlan) -> Result<&PlanGroup> {
    plan.groups.first().ok_or_else(|| {
        Error::PlanViolation("planner returned an empty plan: no group to dispatch".into())
    })
}

/// Online dispatcher: replans over the pending set at every free point.
#[derive(Debug, Clone)]
pub struct OnlineScheduler {
    device: DeviceSpec,
    planner: Planner,
    strategy: PlannerStrategy,
    executor: Executor,
}

impl OnlineScheduler {
    pub fn new(config: ExecutorConfig, planner: Planner, strategy: PlannerStrategy) -> Self {
        OnlineScheduler {
            device: config.device.clone(),
            planner,
            strategy,
            executor: Executor::new(config),
        }
    }

    /// Runs the arrival process to completion. `store` must already hold
    /// profiles for every referenced (benchmark, size) pair — call
    /// [`ProfileStore::profile_workflows`] first (the offline pass).
    pub fn run(
        &self,
        arrivals: &[ArrivingWorkflow],
        store: &ProfileStore,
    ) -> Result<OnlineOutcome> {
        self.run_with_recovery(arrivals, store, None, &RecoveryPolicy::default())
    }

    /// Like [`OnlineScheduler::run`], with fault injection and recovery.
    ///
    /// With `faults`, each dispatched group member may suffer a fatal
    /// fault; the group runs under one MPS server, so one member's fault
    /// aborts the whole group (the shared failure domain). Failed
    /// workflows are requeued with exponential dispatch backoff until the
    /// policy's retry budget runs out; workflows that keep originating
    /// faults degrade to exclusive execution. With `faults = None` the
    /// outcome is identical to [`OnlineScheduler::run`].
    pub fn run_with_recovery(
        &self,
        arrivals: &[ArrivingWorkflow],
        store: &ProfileStore,
        faults: Option<&OnlineFaultModel>,
        policy: &RecoveryPolicy,
    ) -> Result<OnlineOutcome> {
        if arrivals.is_empty() {
            return Err(Error::InvalidConfig("no arrivals".into()));
        }
        policy.validate()?;
        if let Some(model) = faults {
            model.validate()?;
        }
        let profiles: Vec<WorkflowProfile> = arrivals
            .iter()
            .map(|a| workflow_profile(store, &a.spec))
            .collect::<Result<Vec<_>>>()?;

        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        // Fault times scale with each workflow's solo wall time; only
        // needed when a fault model is installed.
        let solo_walls: Vec<Seconds> = if faults.is_some() {
            self.executor.solo_wall_times(&specs)?
        } else {
            Vec::new()
        };

        let n = arrivals.len();
        let mut done = vec![false; n];
        let mut abandoned = vec![false; n];
        let mut attempts = vec![0usize; n];
        // Faults *originated* by each workflow (collateral victims of a
        // group-mate's crash don't count toward exclusive degradation).
        let mut own_faults = vec![0usize; n];
        let mut ready_at: Vec<Seconds> = arrivals.iter().map(|a| a.arrival).collect();
        let mut ids = IdAllocator::new();
        let mut now = Seconds::ZERO;
        let mut energy = Energy::ZERO;
        let mut tasks = 0usize;
        let mut decisions = Vec::new();
        let mut wait_total = 0.0f64;
        let mut retries = 0usize;
        let mut fault_count = 0usize;
        let mut wasted_energy = Energy::ZERO;
        // Planner state carried across free points: consecutive pending
        // sets usually differ by one dispatch (leave) and/or one arrival,
        // exactly the diff `plan_warm` exploits. Arrival indices are the
        // stable ids.
        let mut warm = PlanWarmState::new();

        loop {
            // Pending = arrived (or requeued past its backoff), not yet
            // finished, not abandoned.
            let pending: Vec<usize> = (0..n)
                .filter(|&i| !done[i] && !abandoned[i] && ready_at[i] <= now)
                .collect();
            if pending.is_empty() {
                // Jump to the next arrival / backoff expiry (GPU idles).
                let next = (0..n)
                    .filter(|&i| !done[i] && !abandoned[i])
                    .map(|i| ready_at[i])
                    .fold(Seconds::INFINITY, Seconds::min);
                if !next.is_finite() {
                    break;
                }
                energy += self.device.idle_power * next.saturating_sub(now);
                now = next;
                continue;
            }

            // Repeat offenders run alone: their next crash must not take
            // innocent group-mates down with the shared server.
            let offender = pending
                .iter()
                .copied()
                .find(|&i| own_faults[i] >= policy.exclusive_after);
            let local_group = match offender {
                Some(w) => PlanGroup {
                    workflow_indices: vec![w],
                    partitions: vec![Fraction::ONE],
                },
                None => {
                    // Plan the pending set and dispatch its first group.
                    let pending_profiles: Vec<WorkflowProfile> =
                        pending.iter().map(|&i| profiles[i].clone()).collect();
                    let pending_ids: Vec<u64> = pending.iter().map(|&i| i as u64).collect();
                    let plan = self.planner.plan_warm(
                        &pending_profiles,
                        &pending_ids,
                        self.strategy,
                        &mut warm,
                    )?;
                    let group = first_group(&plan)?;
                    // Map local plan indices back to arrival indices.
                    PlanGroup {
                        workflow_indices: group
                            .workflow_indices
                            .iter()
                            .map(|&l| pending[l])
                            .collect(),
                        partitions: group.partitions.clone(),
                    }
                }
            };
            let members = local_group.workflow_indices.clone();

            // Per-dispatch fault plan: one draw per (workflow, attempt),
            // pure in the seed — bit-identical on any worker count.
            let mut dispatch_faults = FaultPlan::default();
            if let Some(model) = faults {
                for (local, &w) in members.iter().enumerate() {
                    let attempt = attempts[w] as u64;
                    if unit_hash(model.seed, &[w as u64, attempt, 0]) < model.rate {
                        let frac = unit_hash(model.seed, &[w as u64, attempt, 1]);
                        let at = Seconds::new(frac * solo_walls[w].value());
                        dispatch_faults.push_client_fault(at, local);
                    }
                }
            }

            let result = self.executor.run_group_raw_with_faults(
                &specs,
                &local_group,
                &mut ids,
                &dispatch_faults,
            )?;
            let outcome = RunOutcome {
                makespan: result.makespan,
                energy: result.total_energy,
                capped_fraction: result.telemetry.capped_fraction(),
                tasks: result.tasks_completed,
                avg_power: result.telemetry.avg_power(),
                avg_sm_util: result.telemetry.avg_sm_util(),
            };
            // Queue wait accrues at the first dispatch only; a retry is
            // the dispatcher's fault, not queueing delay.
            for &w in &members {
                if attempts[w] == 0 {
                    let wait = (now.saturating_sub(arrivals[w].arrival)).value();
                    wait_total += wait;
                    mpshare_obs::quantile_observe(mpshare_obs::series::SCHED_QUEUE_WAIT, wait);
                }
            }
            for record in &result.failures {
                own_faults[members[record.origin]] += 1;
                fault_count += 1;
                mpshare_obs::counter_add(mpshare_obs::names::SCHED_FAULTS, 1);
            }
            let end = now + outcome.makespan;
            for (local, &w) in members.iter().enumerate() {
                attempts[w] += 1;
                let client = &result.clients[local];
                if client.failed {
                    // The whole attempt is discarded: everything this
                    // client burned above idle was for nothing.
                    wasted_energy += client.dyn_energy;
                    if attempts[w] >= policy.max_attempts {
                        abandoned[w] = true;
                        mpshare_obs::counter_add(mpshare_obs::names::SCHED_ABANDONED, 1);
                        let attempt = attempts[w];
                        mpshare_obs::emit(
                            mpshare_obs::Track::Scheduler,
                            "sched.abandon",
                            Some(end.value()),
                            None,
                            || {
                                serde_json::json!({
                                    "workflow": w,
                                    "attempts": attempt,
                                    "reason": "retry budget exhausted",
                                })
                            },
                        );
                    } else {
                        retries += 1;
                        let backoff =
                            policy.backoff_base.value() * 2f64.powi(attempts[w] as i32 - 1);
                        ready_at[w] = end + Seconds::new(backoff);
                        mpshare_obs::counter_add(mpshare_obs::names::SCHED_RETRIES, 1);
                        let attempt = attempts[w];
                        mpshare_obs::emit(
                            mpshare_obs::Track::Scheduler,
                            "sched.retry",
                            Some(end.value()),
                            None,
                            || {
                                serde_json::json!({
                                    "workflow": w,
                                    "attempt": attempt,
                                    "backoff_s": backoff,
                                })
                            },
                        );
                    }
                } else {
                    done[w] = true;
                    tasks += client.completions.len();
                    // Turnaround = completion − arrival, including queue
                    // wait and any earlier failed attempts' backoff.
                    mpshare_obs::quantile_observe(
                        mpshare_obs::series::SCHED_TURNAROUND,
                        (end.saturating_sub(arrivals[w].arrival)).value(),
                    );
                }
            }
            mpshare_obs::counter_add(mpshare_obs::names::SCHED_DISPATCHES, 1);
            if mpshare_obs::enabled() {
                mpshare_obs::observe(
                    mpshare_obs::names::QUEUE_DEPTH,
                    &mpshare_obs::DEPTH_BUCKETS,
                    pending.len() as f64,
                );
                mpshare_obs::series_push(
                    mpshare_obs::series::SCHED_QUEUE_DEPTH,
                    now.value(),
                    pending.len() as f64,
                );
                let (group, depth) = (members.clone(), pending.len());
                let (start, dur) = (now.value(), outcome.makespan.value());
                let exclusive = offender.is_some();
                mpshare_obs::emit(
                    mpshare_obs::Track::Scheduler,
                    "sched.dispatch",
                    Some(start),
                    Some(dur),
                    || {
                        serde_json::json!({
                            "workflows": group,
                            "queue_depth": depth,
                            "exclusive": exclusive,
                            "tasks_completed": result.tasks_completed,
                            "tasks_failed": result.tasks_failed,
                        })
                    },
                );
            }
            decisions.push(DispatchRecord {
                at: now,
                workflows: members,
                duration: outcome.makespan,
            });
            energy += outcome.energy;
            now = end;
        }

        let goodput = if now == Seconds::ZERO {
            0.0
        } else {
            tasks as f64 / now.value()
        };
        mpshare_obs::gauge_set(mpshare_obs::names::GOODPUT, goodput);
        Ok(OnlineOutcome {
            makespan: now,
            energy,
            tasks,
            decisions,
            mean_wait: Seconds::new(wait_total / arrivals.len() as f64),
            retries,
            faults: fault_count,
            failed_workflows: (0..n).filter(|&i| abandoned[i]).collect(),
            wasted_energy,
            goodput,
        })
    }

    /// FIFO baseline: one workflow at a time, arrival order, no
    /// collocation — the online analogue of sequential scheduling.
    pub fn run_fifo(
        &self,
        arrivals: &[ArrivingWorkflow],
        store: &ProfileStore,
    ) -> Result<OnlineOutcome> {
        if arrivals.is_empty() {
            return Err(Error::InvalidConfig("no arrivals".into()));
        }
        // Order by arrival (stable on ties).
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by(|&a, &b| {
            arrivals[a]
                .arrival
                .partial_cmp(&arrivals[b].arrival)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });
        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        let mut ids = IdAllocator::new();
        let mut now = Seconds::ZERO;
        let mut energy = Energy::ZERO;
        let mut tasks = 0usize;
        let mut decisions = Vec::new();
        let mut wait_total = 0.0f64;
        for &i in &order {
            if arrivals[i].arrival > now {
                energy += self.device.idle_power * (arrivals[i].arrival.saturating_sub(now));
                now = arrivals[i].arrival;
            }
            let group = crate::planner::PlanGroup {
                workflow_indices: vec![i],
                partitions: vec![mpshare_types::Fraction::ONE],
            };
            let result = self.executor.run_group_raw(&specs, &group, &mut ids)?;
            mpshare_obs::counter_add(mpshare_obs::names::SCHED_DISPATCHES, 1);
            wait_total += now.saturating_sub(arrivals[i].arrival).value();
            decisions.push(DispatchRecord {
                at: now,
                workflows: vec![i],
                duration: result.makespan,
            });
            energy += result.total_energy;
            tasks += result.tasks_completed;
            now += result.makespan;
        }
        let _ = store; // profiles not needed for FIFO; kept for symmetry
        let goodput = if now == Seconds::ZERO {
            0.0
        } else {
            tasks as f64 / now.value()
        };
        mpshare_obs::gauge_set(mpshare_obs::names::GOODPUT, goodput);
        Ok(OnlineOutcome {
            makespan: now,
            energy,
            tasks,
            decisions,
            mean_wait: Seconds::new(wait_total / arrivals.len() as f64),
            retries: 0,
            faults: 0,
            failed_workflows: Vec::new(),
            wasted_energy: Energy::ZERO,
            goodput,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MetricPriority;
    use mpshare_workloads::{BenchmarkKind, ProblemSize};

    fn device() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn scheduler() -> OnlineScheduler {
        let d = device();
        OnlineScheduler::new(
            ExecutorConfig::new(d.clone()),
            Planner::new(d, MetricPriority::balanced_product()),
            PlannerStrategy::Auto,
        )
    }

    fn arrivals() -> (Vec<ArrivingWorkflow>, ProfileStore) {
        let mk = |kind, size, iters, at: f64| ArrivingWorkflow {
            spec: WorkflowSpec::uniform(kind, size, iters),
            arrival: Seconds::new(at),
        };
        let arrivals = vec![
            mk(BenchmarkKind::Kripke, ProblemSize::X1, 10, 0.0),
            mk(BenchmarkKind::AthenaPk, ProblemSize::X4, 1, 0.0),
            mk(BenchmarkKind::Kripke, ProblemSize::X1, 10, 5.0),
            mk(BenchmarkKind::AthenaPk, ProblemSize::X4, 1, 200.0),
        ];
        let mut store = ProfileStore::new();
        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        store.profile_workflows(&device(), &specs).unwrap();
        (arrivals, store)
    }

    #[test]
    fn online_completes_everything_and_beats_fifo() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        let online = s.run(&arrivals, &store).unwrap();
        let fifo = s.run_fifo(&arrivals, &store).unwrap();
        assert_eq!(online.tasks, 22);
        assert_eq!(fifo.tasks, 22);
        assert!(
            online.makespan <= fifo.makespan,
            "online {} !<= fifo {}",
            online.makespan,
            fifo.makespan
        );
        assert!(online.mean_wait <= fifo.mean_wait);
    }

    #[test]
    fn dispatches_respect_arrival_times() {
        let (arrivals, store) = arrivals();
        let online = scheduler().run(&arrivals, &store).unwrap();
        for record in &online.decisions {
            for &w in &record.workflows {
                assert!(
                    record.at >= arrivals[w].arrival,
                    "workflow {w} dispatched at {} before arrival {}",
                    record.at,
                    arrivals[w].arrival
                );
            }
        }
        // Every workflow dispatched exactly once.
        let mut seen = vec![false; arrivals.len()];
        for record in &online.decisions {
            for &w in &record.workflows {
                assert!(!seen[w]);
                seen[w] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gpu_idles_until_late_arrival() {
        let d = device();
        let late = vec![ArrivingWorkflow {
            spec: WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2),
            arrival: Seconds::new(100.0),
        }];
        let mut store = ProfileStore::new();
        store
            .profile_once(&d, BenchmarkKind::Kripke, ProblemSize::X1)
            .unwrap();
        let online = scheduler().run(&late, &store).unwrap();
        assert_eq!(online.decisions[0].at, Seconds::new(100.0));
        // Energy includes 100 s of idle draw before the dispatch.
        assert!(online.energy.joules() > 100.0 * 75.0);
        assert_eq!(online.mean_wait, Seconds::ZERO);
    }

    #[test]
    fn empty_arrivals_error() {
        let store = ProfileStore::new();
        assert!(scheduler().run(&[], &store).is_err());
        assert!(scheduler().run_fifo(&[], &store).is_err());
    }

    /// Satellite regression: an empty plan must surface as a typed error,
    /// not an index panic (`plan.groups[0]`).
    #[test]
    fn empty_plan_yields_typed_error_not_panic() {
        let plan = crate::planner::SchedulePlan { groups: vec![] };
        let err = super::first_group(&plan).unwrap_err();
        assert!(matches!(err, Error::PlanViolation(_)), "got {err:?}");
    }

    #[test]
    fn fault_free_recovery_path_matches_plain_run() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        let plain = s.run(&arrivals, &store).unwrap();
        let zero_rate = s
            .run_with_recovery(
                &arrivals,
                &store,
                Some(&OnlineFaultModel::new(7, 0.0).unwrap()),
                &RecoveryPolicy::default(),
            )
            .unwrap();
        assert_eq!(plain, zero_rate, "rate-0 model must be a no-op");
        assert_eq!(plain.retries, 0);
        assert_eq!(plain.faults, 0);
        assert!(plain.failed_workflows.is_empty());
        assert_eq!(plain.wasted_energy, Energy::ZERO);
        assert!(plain.goodput > 0.0);
        assert!((plain.goodput - plain.tasks as f64 / plain.makespan.value()).abs() < 1e-12);
    }

    #[test]
    fn injected_failure_requeues_and_eventually_completes() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        // Sweep seeds until one produces faults but no budget exhaustion:
        // the interesting middle where recovery does its job. Seeded draws
        // make the scan deterministic.
        let policy = RecoveryPolicy {
            max_attempts: 10,
            backoff_base: Seconds::new(5.0),
            exclusive_after: 2,
        };
        let outcome = (0..64u64)
            .map(|seed| {
                s.run_with_recovery(
                    &arrivals,
                    &store,
                    Some(&OnlineFaultModel::new(seed, 0.3).unwrap()),
                    &policy,
                )
                .unwrap()
            })
            .find(|o| o.faults > 0 && o.failed_workflows.is_empty())
            .expect("some seed in 0..64 recovers fully at rate 0.3");
        // Everything completed despite faults: full task count, retries
        // recorded, wasted energy attributed.
        assert_eq!(outcome.tasks, 22);
        assert!(outcome.retries > 0);
        assert!(outcome.wasted_energy.joules() > 0.0);
        assert!(outcome.makespan.value() > 0.0);
        // Every workflow's last dispatch succeeded; total dispatches
        // exceed the workflow count because of the retries.
        let dispatch_count: usize = outcome.decisions.iter().map(|d| d.workflows.len()).sum();
        assert_eq!(dispatch_count, arrivals.len() + outcome.retries);
    }

    #[test]
    fn retry_budget_exhaustion_reports_failure_and_balances() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        // Rate 1: every attempt of every workflow faults; nothing can
        // ever complete.
        let policy = RecoveryPolicy {
            max_attempts: 2,
            backoff_base: Seconds::new(1.0),
            exclusive_after: 2,
        };
        let outcome = s
            .run_with_recovery(
                &arrivals,
                &store,
                Some(&OnlineFaultModel::new(3, 1.0).unwrap()),
                &policy,
            )
            .unwrap();
        assert_eq!(outcome.tasks, 0);
        assert_eq!(outcome.goodput, 0.0);
        assert_eq!(outcome.failed_workflows, vec![0, 1, 2, 3]);
        // Accounting balances: every workflow burned its full budget, and
        // retries + first attempts + abandoned == dispatch slots.
        let dispatch_count: usize = outcome.decisions.iter().map(|d| d.workflows.len()).sum();
        assert_eq!(dispatch_count, arrivals.len() * policy.max_attempts);
        assert_eq!(outcome.retries, arrivals.len() * (policy.max_attempts - 1));
        // A shared-server fault takes down every group member in a single
        // record, so the record count tracks dispatches, not dispatch slots.
        assert!(outcome.faults >= outcome.decisions.len());
        assert!(outcome.wasted_energy.joules() > 0.0);
        assert!(outcome.wasted_energy.joules() <= outcome.energy.joules());
    }

    #[test]
    fn repeat_offender_degrades_to_exclusive_execution() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        let policy = RecoveryPolicy {
            max_attempts: 8,
            backoff_base: Seconds::new(1.0),
            exclusive_after: 2,
        };
        let outcome = s
            .run_with_recovery(
                &arrivals,
                &store,
                Some(&OnlineFaultModel::new(11, 1.0).unwrap()),
                &policy,
            )
            .unwrap();
        // At rate 1 every workflow soon crosses exclusive_after, so late
        // dispatches must all be solo.
        let solo_dispatches = outcome
            .decisions
            .iter()
            .filter(|d| d.workflows.len() == 1)
            .count();
        assert!(
            solo_dispatches > outcome.decisions.len() / 2,
            "expected mostly exclusive dispatches, got {solo_dispatches}/{}",
            outcome.decisions.len()
        );
        assert_eq!(outcome.tasks, 0);
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        let model = OnlineFaultModel::new(42, 0.5).unwrap();
        let policy = RecoveryPolicy::default();
        let a = s
            .run_with_recovery(&arrivals, &store, Some(&model), &policy)
            .unwrap();
        let b = s
            .run_with_recovery(&arrivals, &store, Some(&model), &policy)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_model_and_policy_validate_inputs() {
        assert!(OnlineFaultModel::new(0, -0.1).is_err());
        assert!(OnlineFaultModel::new(0, 1.5).is_err());
        assert!(OnlineFaultModel::new(0, f64::NAN).is_err());
        assert!(RecoveryPolicy {
            max_attempts: 0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RecoveryPolicy {
            exclusive_after: 0,
            ..RecoveryPolicy::default()
        }
        .validate()
        .is_err());
    }
}
