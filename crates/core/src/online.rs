//! Online scheduling: workflows arriving over time.
//!
//! The paper assumes "a pre-existing queue of workflows to be scheduled"
//! (§IV-B) and names a comprehensive scheduling framework as future work.
//! This module provides that extension: a dispatcher that replans every
//! time the GPU frees, over whatever has arrived by then.
//!
//! The loop is group-at-a-time: when the GPU becomes free at time *t*,
//! the planner runs on all workflows that have arrived and not yet been
//! dispatched; the first group of the resulting plan executes to
//! completion; repeat. If nothing is pending, the GPU idles (drawing idle
//! power) until the next arrival. This preserves the paper's task-level
//! granularity — no preemption of resident groups — while handling open
//! arrival processes.

use crate::executor::{Executor, ExecutorConfig, RunOutcome};
use crate::planner::{Planner, PlannerStrategy};
use crate::wprofile::{workflow_profile, WorkflowProfile};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::ProfileStore;
use mpshare_types::{Energy, Error, IdAllocator, Result, Seconds};
use mpshare_workloads::WorkflowSpec;
use serde::{Deserialize, Serialize};

/// A workflow with an arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivingWorkflow {
    pub spec: WorkflowSpec,
    pub arrival: Seconds,
}

/// One dispatch decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// When the group started on the GPU.
    pub at: Seconds,
    /// Indices (into the arrival list) of the workflows in the group.
    pub workflows: Vec<usize>,
    /// The group's makespan.
    pub duration: Seconds,
}

/// Result of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Completion time of the last group.
    pub makespan: Seconds,
    /// Total energy including idle gaps between dispatches.
    pub energy: Energy,
    pub tasks: usize,
    pub decisions: Vec<DispatchRecord>,
    /// Mean time workflows spent queued (dispatch − arrival).
    pub mean_wait: Seconds,
}

/// Online dispatcher: replans over the pending set at every free point.
#[derive(Debug, Clone)]
pub struct OnlineScheduler {
    device: DeviceSpec,
    planner: Planner,
    strategy: PlannerStrategy,
    executor: Executor,
}

impl OnlineScheduler {
    pub fn new(config: ExecutorConfig, planner: Planner, strategy: PlannerStrategy) -> Self {
        OnlineScheduler {
            device: config.device.clone(),
            planner,
            strategy,
            executor: Executor::new(config),
        }
    }

    /// Runs the arrival process to completion. `store` must already hold
    /// profiles for every referenced (benchmark, size) pair — call
    /// [`ProfileStore::profile_workflows`] first (the offline pass).
    pub fn run(
        &self,
        arrivals: &[ArrivingWorkflow],
        store: &ProfileStore,
    ) -> Result<OnlineOutcome> {
        if arrivals.is_empty() {
            return Err(Error::InvalidConfig("no arrivals".into()));
        }
        let profiles: Vec<WorkflowProfile> = arrivals
            .iter()
            .map(|a| workflow_profile(store, &a.spec))
            .collect::<Result<Vec<_>>>()?;

        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        let mut dispatched = vec![false; arrivals.len()];
        let mut ids = IdAllocator::new();
        let mut now = Seconds::ZERO;
        let mut energy = Energy::ZERO;
        let mut tasks = 0usize;
        let mut decisions = Vec::new();
        let mut wait_total = 0.0f64;

        loop {
            // Pending = arrived and not yet dispatched.
            let pending: Vec<usize> = (0..arrivals.len())
                .filter(|&i| !dispatched[i] && arrivals[i].arrival <= now)
                .collect();
            if pending.is_empty() {
                // Jump to the next arrival (GPU idles) or finish.
                let next = (0..arrivals.len())
                    .filter(|&i| !dispatched[i])
                    .map(|i| arrivals[i].arrival)
                    .fold(Seconds::INFINITY, Seconds::min);
                if !next.is_finite() {
                    break;
                }
                energy += self.device.idle_power * next.saturating_sub(now);
                now = next;
                continue;
            }

            // Plan the pending set and dispatch its first group.
            let pending_profiles: Vec<WorkflowProfile> =
                pending.iter().map(|&i| profiles[i].clone()).collect();
            let plan = self.planner.plan(&pending_profiles, self.strategy)?;
            let group = &plan.groups[0];
            // Map local plan indices back to arrival indices.
            let members: Vec<usize> = group.workflow_indices.iter().map(|&l| pending[l]).collect();
            let local_group = crate::planner::PlanGroup {
                workflow_indices: members.clone(),
                partitions: group.partitions.clone(),
            };
            let result = self
                .executor
                .run_group_raw(&specs, &local_group, &mut ids)?;
            let outcome = RunOutcome {
                makespan: result.makespan,
                energy: result.total_energy,
                capped_fraction: result.telemetry.capped_fraction(),
                tasks: result.tasks_completed,
                avg_power: result.telemetry.avg_power(),
                avg_sm_util: result.telemetry.avg_sm_util(),
            };
            for &i in &members {
                dispatched[i] = true;
                wait_total += (now.saturating_sub(arrivals[i].arrival)).value();
            }
            decisions.push(DispatchRecord {
                at: now,
                workflows: members,
                duration: outcome.makespan,
            });
            energy += outcome.energy;
            tasks += outcome.tasks;
            now += outcome.makespan;
        }

        Ok(OnlineOutcome {
            makespan: now,
            energy,
            tasks,
            decisions,
            mean_wait: Seconds::new(wait_total / arrivals.len() as f64),
        })
    }

    /// FIFO baseline: one workflow at a time, arrival order, no
    /// collocation — the online analogue of sequential scheduling.
    pub fn run_fifo(
        &self,
        arrivals: &[ArrivingWorkflow],
        store: &ProfileStore,
    ) -> Result<OnlineOutcome> {
        if arrivals.is_empty() {
            return Err(Error::InvalidConfig("no arrivals".into()));
        }
        // Order by arrival (stable on ties).
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by(|&a, &b| {
            arrivals[a]
                .arrival
                .partial_cmp(&arrivals[b].arrival)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });
        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        let mut ids = IdAllocator::new();
        let mut now = Seconds::ZERO;
        let mut energy = Energy::ZERO;
        let mut tasks = 0usize;
        let mut decisions = Vec::new();
        let mut wait_total = 0.0f64;
        for &i in &order {
            if arrivals[i].arrival > now {
                energy += self.device.idle_power * (arrivals[i].arrival.saturating_sub(now));
                now = arrivals[i].arrival;
            }
            let group = crate::planner::PlanGroup {
                workflow_indices: vec![i],
                partitions: vec![mpshare_types::Fraction::ONE],
            };
            let result = self.executor.run_group_raw(&specs, &group, &mut ids)?;
            wait_total += now.saturating_sub(arrivals[i].arrival).value();
            decisions.push(DispatchRecord {
                at: now,
                workflows: vec![i],
                duration: result.makespan,
            });
            energy += result.total_energy;
            tasks += result.tasks_completed;
            now += result.makespan;
        }
        let _ = store; // profiles not needed for FIFO; kept for symmetry
        Ok(OnlineOutcome {
            makespan: now,
            energy,
            tasks,
            decisions,
            mean_wait: Seconds::new(wait_total / arrivals.len() as f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MetricPriority;
    use mpshare_workloads::{BenchmarkKind, ProblemSize};

    fn device() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn scheduler() -> OnlineScheduler {
        let d = device();
        OnlineScheduler::new(
            ExecutorConfig::new(d.clone()),
            Planner::new(d, MetricPriority::balanced_product()),
            PlannerStrategy::Auto,
        )
    }

    fn arrivals() -> (Vec<ArrivingWorkflow>, ProfileStore) {
        let mk = |kind, size, iters, at: f64| ArrivingWorkflow {
            spec: WorkflowSpec::uniform(kind, size, iters),
            arrival: Seconds::new(at),
        };
        let arrivals = vec![
            mk(BenchmarkKind::Kripke, ProblemSize::X1, 10, 0.0),
            mk(BenchmarkKind::AthenaPk, ProblemSize::X4, 1, 0.0),
            mk(BenchmarkKind::Kripke, ProblemSize::X1, 10, 5.0),
            mk(BenchmarkKind::AthenaPk, ProblemSize::X4, 1, 200.0),
        ];
        let mut store = ProfileStore::new();
        let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
        store.profile_workflows(&device(), &specs).unwrap();
        (arrivals, store)
    }

    #[test]
    fn online_completes_everything_and_beats_fifo() {
        let (arrivals, store) = arrivals();
        let s = scheduler();
        let online = s.run(&arrivals, &store).unwrap();
        let fifo = s.run_fifo(&arrivals, &store).unwrap();
        assert_eq!(online.tasks, 22);
        assert_eq!(fifo.tasks, 22);
        assert!(
            online.makespan <= fifo.makespan,
            "online {} !<= fifo {}",
            online.makespan,
            fifo.makespan
        );
        assert!(online.mean_wait <= fifo.mean_wait);
    }

    #[test]
    fn dispatches_respect_arrival_times() {
        let (arrivals, store) = arrivals();
        let online = scheduler().run(&arrivals, &store).unwrap();
        for record in &online.decisions {
            for &w in &record.workflows {
                assert!(
                    record.at >= arrivals[w].arrival,
                    "workflow {w} dispatched at {} before arrival {}",
                    record.at,
                    arrivals[w].arrival
                );
            }
        }
        // Every workflow dispatched exactly once.
        let mut seen = vec![false; arrivals.len()];
        for record in &online.decisions {
            for &w in &record.workflows {
                assert!(!seen[w]);
                seen[w] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gpu_idles_until_late_arrival() {
        let d = device();
        let late = vec![ArrivingWorkflow {
            spec: WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 2),
            arrival: Seconds::new(100.0),
        }];
        let mut store = ProfileStore::new();
        store
            .profile_once(&d, BenchmarkKind::Kripke, ProblemSize::X1)
            .unwrap();
        let online = scheduler().run(&late, &store).unwrap();
        assert_eq!(online.decisions[0].at, Seconds::new(100.0));
        // Energy includes 100 s of idle draw before the dispatch.
        assert!(online.energy.joules() > 100.0 * 75.0);
        assert_eq!(online.mean_wait, Seconds::ZERO);
    }

    #[test]
    fn empty_arrivals_error() {
        let store = ProfileStore::new();
        assert!(scheduler().run(&[], &store).is_err());
        assert!(scheduler().run_fifo(&[], &store).is_err());
    }
}
