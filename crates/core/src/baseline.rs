//! Baseline schedulers for ablation.
//!
//! * [`fifo_plan`] — naive MPS packing: groups are formed in queue order up
//!   to a fixed cardinality, ignoring profiles entirely. This is "just use
//!   MPS" without interference awareness — the comparator that shows why
//!   the paper's profile-driven grouping matters.
//! * [`single_group_plan`] — everything in one concurrent group with
//!   default partitions (maximum oversubscription).

use crate::planner::{PlanGroup, SchedulePlan};
use crate::wprofile::WorkflowProfile;
use mpshare_types::Fraction;

/// Groups workflows in queue order, `cap` at a time, with default (100 %)
/// partitions. No interference prediction, no right-sizing.
pub fn fifo_plan(n_workflows: usize, cap: usize) -> SchedulePlan {
    let cap = cap.max(1);
    let groups = (0..n_workflows)
        .collect::<Vec<_>>()
        .chunks(cap)
        .map(|chunk| PlanGroup {
            workflow_indices: chunk.to_vec(),
            partitions: vec![Fraction::ONE; chunk.len()],
        })
        .collect();
    SchedulePlan { groups }
}

/// Everything in one MPS group with default partitions.
pub fn single_group_plan(n_workflows: usize) -> SchedulePlan {
    fifo_plan(n_workflows, n_workflows.max(1))
}

/// Sorts workflow indices by ascending average SM utilization — the
/// paper's "schedule lowest-utilization workflows first" recommendation,
/// usable as an ordering pass before FIFO packing in ablations.
pub fn lowest_utilization_order(profiles: &[WorkflowProfile]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    order.sort_by(|&a, &b| {
        profiles[a]
            .avg_sm_util
            .value()
            .partial_cmp(&profiles[b].avg_sm_util.value())
            .expect("finite utilizations")
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, MemBytes, Percent, Power, Seconds};

    #[test]
    fn fifo_groups_in_queue_order() {
        let plan = fifo_plan(5, 2);
        assert_eq!(plan.groups.len(), 3);
        assert_eq!(plan.groups[0].workflow_indices, vec![0, 1]);
        assert_eq!(plan.groups[1].workflow_indices, vec![2, 3]);
        assert_eq!(plan.groups[2].workflow_indices, vec![4]);
        assert_eq!(plan.workflow_count(), 5);
    }

    #[test]
    fn fifo_partitions_are_uniform_full() {
        let plan = fifo_plan(3, 3);
        for g in &plan.groups {
            assert!(g.partitions.iter().all(|p| *p == Fraction::ONE));
        }
    }

    #[test]
    fn single_group_holds_everything() {
        let plan = single_group_plan(7);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.max_cardinality(), 7);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let plan = fifo_plan(2, 0);
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn lowest_utilization_order_sorts_ascending() {
        let mk = |sm: f64| WorkflowProfile {
            label: "w".into(),
            task_count: 1,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::ZERO,
            max_memory: MemBytes::ZERO,
            duration: Seconds::new(1.0),
            energy: Energy::from_joules(100.0),
            avg_power: Power::from_watts(100.0),
            busy_fraction: 0.5,
            saturation_partition: mpshare_types::Fraction::new(0.9),
        };
        let profiles = vec![mk(50.0), mk(10.0), mk(30.0)];
        assert_eq!(lowest_utilization_order(&profiles), vec![1, 2, 0]);
    }
}
