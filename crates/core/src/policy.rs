//! Metric priority and the cardinality rule (paper §IV-B criterion 4).
//!
//! "If energy efficiency is prioritized, the maximum number of MPS clients
//! available are used. Otherwise, if throughput is prioritized, the number
//! of clients is limited to 2."

use mpshare_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Which system metric the scheduler optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricPriority {
    /// Maximize task throughput: small groups (≤ 2 clients).
    Throughput,
    /// Maximize energy efficiency: pack up to the MPS client limit.
    Energy,
    /// Optimize a `throughputᵃ × efficiencyᵇ` product (§IV-C): the planner
    /// sweeps cardinality and keeps the best estimated product.
    Product {
        throughput_weight: u32,
        energy_weight: u32,
    },
}

impl MetricPriority {
    /// The balanced product metric (a = b = 1).
    pub fn balanced_product() -> Self {
        MetricPriority::Product {
            throughput_weight: 1,
            energy_weight: 1,
        }
    }

    /// The throughput-leaning product the paper gives as an example
    /// (`throughput × throughput × efficiency`).
    pub fn throughput_leaning_product() -> Self {
        MetricPriority::Product {
            throughput_weight: 2,
            energy_weight: 1,
        }
    }

    /// Maximum clients per collocation group under this priority.
    pub fn cardinality_cap(&self, device: &DeviceSpec) -> usize {
        match self {
            MetricPriority::Throughput => 2,
            MetricPriority::Energy => device.max_mps_clients,
            // The product planner explores caps itself; this is its upper
            // bound.
            MetricPriority::Product { .. } => device.max_mps_clients,
        }
    }

    /// Candidate caps the product planner sweeps.
    pub fn candidate_caps(&self, device: &DeviceSpec) -> Vec<usize> {
        match self {
            MetricPriority::Throughput => vec![2],
            MetricPriority::Energy => vec![device.max_mps_clients],
            MetricPriority::Product { .. } => {
                let max = device.max_mps_clients;
                [2usize, 3, 4, 6, 8, 12, 16, 24, 32, max]
                    .into_iter()
                    .filter(|&c| c <= max)
                    .collect()
            }
        }
    }

    /// Scores a (throughput gain, efficiency gain) pair under this
    /// priority. Higher is better.
    pub fn score(&self, throughput: f64, efficiency: f64) -> f64 {
        match self {
            MetricPriority::Throughput => throughput,
            MetricPriority::Energy => efficiency,
            MetricPriority::Product {
                throughput_weight,
                energy_weight,
            } => {
                throughput.powi(*throughput_weight as i32) * efficiency.powi(*energy_weight as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn throughput_caps_at_two() {
        assert_eq!(MetricPriority::Throughput.cardinality_cap(&dev()), 2);
    }

    #[test]
    fn energy_caps_at_client_limit() {
        assert_eq!(MetricPriority::Energy.cardinality_cap(&dev()), 48);
    }

    #[test]
    fn product_sweeps_multiple_caps() {
        let caps = MetricPriority::balanced_product().candidate_caps(&dev());
        assert!(caps.contains(&2));
        assert!(caps.contains(&48));
        assert!(caps.len() > 3);
        // Caps never exceed the device limit.
        let mut small = dev();
        small.max_mps_clients = 4;
        let caps = MetricPriority::balanced_product().candidate_caps(&small);
        assert!(caps.iter().all(|&c| c <= 4));
    }

    #[test]
    fn score_orders_configurations_by_priority() {
        // Config A: throughput 1.8, efficiency 1.1. Config B: 1.2 / 1.5.
        let t = MetricPriority::Throughput;
        assert!(t.score(1.8, 1.1) > t.score(1.2, 1.5));
        let e = MetricPriority::Energy;
        assert!(e.score(1.8, 1.1) < e.score(1.2, 1.5));
        let p = MetricPriority::balanced_product();
        // 1.98 vs 1.80: balanced product prefers A.
        assert!(p.score(1.8, 1.1) > p.score(1.2, 1.5));
        let tp = MetricPriority::throughput_leaning_product();
        // Throughput-squared widens A's lead.
        assert!(tp.score(1.8, 1.1) / tp.score(1.2, 1.5) > p.score(1.8, 1.1) / p.score(1.2, 1.5));
    }
}
