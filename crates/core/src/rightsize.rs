//! MPS partition right-sizing (the paper's granularity awareness).
//!
//! Figure 1 shows throughput saturating in the MPS SM-partition size:
//! beyond a workload-specific point, extra partition is wasted — and a
//! partition *below* it actively hurts (the red circle). Two right-sizing
//! strategies are provided:
//!
//! * [`PartitionStrategy::RightSized`] sizes partitions from the profiled
//!   burst SM *demand* plus headroom. Aggressive: it can throttle a task
//!   whose dense kernels legitimately span the whole device even though
//!   its average demand is low (the ablation benches quantify this).
//! * [`PartitionStrategy::SaturationAware`] (the default) additionally
//!   respects the measured saturation partition from the profiler's
//!   Figure-1-style sweep — each client gets at least the partition below
//!   which its own solo throughput would degrade.

use crate::wprofile::WorkflowProfile;
use mpshare_mps::ActiveThreadPercentage;
use mpshare_types::Fraction;
use serde::{Deserialize, Serialize};

/// How partitions are assigned within a collocation group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// MPS default: every client gets 100 %.
    Uniform,
    /// Each client gets its burst SM demand scaled by `headroom`
    /// (e.g. 1.25 = 25 % margin), floored at `min_percent`, capped at 100.
    RightSized { headroom: f64, min_percent: u8 },
    /// Demand-based sizing, floored at the workload's measured saturation
    /// partition so the partition never costs solo throughput.
    SaturationAware { headroom: f64, min_percent: u8 },
}

impl PartitionStrategy {
    /// The default right-sizing used by the planner: 25 % headroom above
    /// profiled burst demand, at least a 10 % partition.
    pub fn default_rightsized() -> Self {
        PartitionStrategy::RightSized {
            headroom: 1.25,
            min_percent: 10,
        }
    }

    /// The planner's default: demand-based with a saturation floor.
    pub fn default_saturation_aware() -> Self {
        PartitionStrategy::SaturationAware {
            headroom: 1.25,
            min_percent: 10,
        }
    }

    /// Computes the partition vector for a group, in group order.
    pub fn partitions(&self, group: &[&WorkflowProfile]) -> Vec<Fraction> {
        match *self {
            PartitionStrategy::Uniform => vec![Fraction::ONE; group.len()],
            PartitionStrategy::RightSized {
                headroom,
                min_percent,
            } => group
                .iter()
                .map(|p| demand_partition(p, headroom, min_percent, None))
                .collect(),
            PartitionStrategy::SaturationAware {
                headroom,
                min_percent,
            } => group
                .iter()
                .map(|p| demand_partition(p, headroom, min_percent, Some(p.saturation_partition)))
                .collect(),
        }
    }
}

/// Demand-based partition with an optional saturation floor.
fn demand_partition(
    p: &WorkflowProfile,
    headroom: f64,
    min_percent: u8,
    saturation_floor: Option<Fraction>,
) -> Fraction {
    let mut want = (p.burst_sm_util() * headroom).clamp(0.0, 1.0);
    if let Some(floor) = saturation_floor {
        want = want.max(floor.value());
    }
    let pct = ActiveThreadPercentage::from_fraction_ceil(Fraction::clamped(want))
        .expect("clamped fraction is valid")
        .value()
        .max(min_percent);
    Fraction::new(pct as f64 / 100.0)
}

impl Default for PartitionStrategy {
    fn default() -> Self {
        PartitionStrategy::default_saturation_aware()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, MemBytes, Percent, Power, Seconds};

    fn profile(avg_sm: f64, busy: f64) -> WorkflowProfile {
        WorkflowProfile {
            label: "w".into(),
            task_count: 1,
            avg_sm_util: Percent::new(avg_sm),
            avg_bw_util: Percent::new(1.0),
            max_memory: MemBytes::from_gib(1),
            duration: Seconds::new(10.0),
            energy: Energy::from_joules(1000.0),
            avg_power: Power::from_watts(100.0),
            busy_fraction: busy,
            saturation_partition: mpshare_types::Fraction::new(0.9),
        }
    }

    #[test]
    fn uniform_gives_everyone_full_partitions() {
        let (a, b) = (profile(10.0, 0.5), profile(90.0, 0.9));
        let parts = PartitionStrategy::Uniform.partitions(&[&a, &b]);
        assert_eq!(parts, vec![Fraction::ONE, Fraction::ONE]);
    }

    #[test]
    fn rightsizing_tracks_burst_demand() {
        // avg 20 % at 0.5 busy -> burst 0.4; ×1.25 headroom -> 50 %.
        let a = profile(20.0, 0.5);
        let parts = PartitionStrategy::default_rightsized().partitions(&[&a]);
        assert!((parts[0].value() - 0.50).abs() < 0.011, "got {}", parts[0]);
    }

    #[test]
    fn rightsizing_floors_tiny_workloads() {
        // AthenaPK-like: avg 7.5 % at 0.35 busy -> burst 0.21 -> 27 %.
        // An even tinier one hits the 10 % floor.
        let tiny = profile(1.0, 0.5);
        let parts = PartitionStrategy::default_rightsized().partitions(&[&tiny]);
        assert!((parts[0].value() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn rightsizing_caps_at_full_device() {
        let hot = profile(95.0, 0.95);
        let parts = PartitionStrategy::default_rightsized().partitions(&[&hot]);
        assert_eq!(parts[0], Fraction::ONE);
    }

    #[test]
    fn partition_order_matches_group_order() {
        let (a, b) = (profile(20.0, 0.5), profile(60.0, 0.9));
        let parts = PartitionStrategy::default_rightsized().partitions(&[&a, &b]);
        assert!(parts[0] < parts[1]);
    }

    #[test]
    fn saturation_aware_floors_at_measured_saturation() {
        // Demand says 50 %, but the measured saturation is 90 %: the
        // saturation-aware strategy must not throttle below it.
        let a = profile(20.0, 0.5);
        let parts = PartitionStrategy::default_saturation_aware().partitions(&[&a]);
        assert!((parts[0].value() - 0.90).abs() < 1e-9, "got {}", parts[0]);
    }

    #[test]
    fn saturation_aware_uses_demand_when_it_exceeds_saturation() {
        let mut a = profile(80.0, 0.8); // burst 1.0 ×1.25 -> 100 %
        a.saturation_partition = Fraction::new(0.3);
        let parts = PartitionStrategy::default_saturation_aware().partitions(&[&a]);
        assert_eq!(parts[0], Fraction::ONE);
    }

    #[test]
    fn partitions_are_whole_percent_granular() {
        let a = profile(13.0, 0.7); // burst ≈ 0.1857 ×1.25 ≈ 0.2321 -> 24 %
        let parts = PartitionStrategy::default_rightsized().partitions(&[&a]);
        let pct = parts[0].value() * 100.0;
        assert!((pct - pct.round()).abs() < 1e-9, "not whole percent: {pct}");
    }
}
