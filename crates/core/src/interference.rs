//! Interference prediction (paper §IV-B, the italicized rule).
//!
//! *"Two workflows are predicted to interfere if they have combined average
//! SM utilization over 100 %, combined average memory bandwidth utilization
//! over 100 %, or combined maximum memory utilization above the device
//! memory capacity."* The same rule generalizes to groups of any size by
//! summing.

use crate::wprofile::WorkflowProfile;
use mpshare_gpusim::DeviceSpec;
use mpshare_types::MemBytes;
use serde::{Deserialize, Serialize};

/// Which resource the predictor expects to be contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceKind {
    /// Combined average SM utilization exceeds 100 %.
    Compute,
    /// Combined average memory-bandwidth utilization exceeds 100 %.
    MemoryBandwidth,
    /// Combined maximum memory exceeds device capacity. Unlike the other
    /// two this is a *hard* constraint: the group cannot be admitted.
    MemoryCapacity,
}

/// Prediction result for a candidate group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceReport {
    /// Sum of average SM utilizations (may exceed 100).
    pub sm_sum: f64,
    /// Sum of average bandwidth utilizations (may exceed 100).
    pub bw_sum: f64,
    /// Sum of maximum memory footprints.
    pub memory_sum: MemBytes,
    /// All predicted interference kinds (empty = compatible).
    pub kinds: Vec<InterferenceKind>,
}

impl InterferenceReport {
    /// Whether the group is predicted interference-free.
    pub fn is_compatible(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the group violates the hard memory-capacity constraint.
    pub fn violates_memory(&self) -> bool {
        self.kinds.contains(&InterferenceKind::MemoryCapacity)
    }

    /// Compute headroom left before the 100 % SM threshold (negative when
    /// exceeded) — used by the greedy planner to pick the next candidate.
    pub fn sm_headroom(&self) -> f64 {
        100.0 - self.sm_sum
    }
}

/// Predicts interference for a candidate group of workflows.
///
/// ```
/// use mpshare_core::{predict, workflow_profile};
/// use mpshare_gpusim::DeviceSpec;
/// use mpshare_profiler::ProfileStore;
/// use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
///
/// let device = DeviceSpec::a100x();
/// let queue = vec![
///     WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X1, 1),
///     WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 1),
/// ];
/// let mut store = ProfileStore::new();
/// store.profile_workflows(&device, &queue).unwrap();
/// let a = workflow_profile(&store, &queue[0]).unwrap();
/// let k = workflow_profile(&store, &queue[1]).unwrap();
///
/// // AthenaPK 1x (7.5% SM) + Kripke 1x (26.6% SM): compatible.
/// let report = predict(&device, &[&a, &k]);
/// assert!(report.is_compatible());
/// assert!(report.sm_sum < 100.0);
/// ```
pub fn predict(device: &DeviceSpec, group: &[&WorkflowProfile]) -> InterferenceReport {
    let sm_sum: f64 = group.iter().map(|p| p.avg_sm_util.value()).sum();
    let bw_sum: f64 = group.iter().map(|p| p.avg_bw_util.value()).sum();
    let memory_sum: MemBytes = group.iter().map(|p| p.max_memory).sum();

    let mut kinds = Vec::new();
    if sm_sum > 100.0 {
        kinds.push(InterferenceKind::Compute);
    }
    if bw_sum > 100.0 {
        kinds.push(InterferenceKind::MemoryBandwidth);
    }
    if memory_sum > device.memory_capacity {
        kinds.push(InterferenceKind::MemoryCapacity);
    }
    InterferenceReport {
        sm_sum,
        bw_sum,
        memory_sum,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::{Energy, Percent, Power, Seconds};

    fn profile(sm: f64, bw: f64, mem_gib: u64) -> WorkflowProfile {
        WorkflowProfile {
            label: format!("w(sm={sm})"),
            task_count: 1,
            avg_sm_util: Percent::new(sm),
            avg_bw_util: Percent::new(bw),
            max_memory: MemBytes::from_gib(mem_gib),
            duration: Seconds::new(10.0),
            energy: Energy::from_joules(1000.0),
            avg_power: Power::from_watts(100.0),
            busy_fraction: 0.8,
            saturation_partition: mpshare_types::Fraction::new(0.9),
        }
    }

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn compatible_pair_passes_all_checks() {
        let (a, b) = (profile(30.0, 5.0, 10), profile(40.0, 10.0, 10));
        let r = predict(&dev(), &[&a, &b]);
        assert!(r.is_compatible());
        assert_eq!(r.sm_sum, 70.0);
        assert_eq!(r.sm_headroom(), 30.0);
    }

    #[test]
    fn compute_interference_detected() {
        let (a, b) = (profile(60.0, 5.0, 10), profile(50.0, 5.0, 10));
        let r = predict(&dev(), &[&a, &b]);
        assert_eq!(r.kinds, vec![InterferenceKind::Compute]);
        assert!(!r.is_compatible());
        assert!(!r.violates_memory());
    }

    #[test]
    fn bandwidth_interference_detected() {
        let (a, b) = (profile(30.0, 60.0, 10), profile(30.0, 50.0, 10));
        let r = predict(&dev(), &[&a, &b]);
        assert_eq!(r.kinds, vec![InterferenceKind::MemoryBandwidth]);
    }

    #[test]
    fn memory_capacity_is_hard_violation() {
        // Two WarpX-like 60 GiB footprints exceed the 80 GiB device.
        let (a, b) = (profile(30.0, 5.0, 60), profile(30.0, 5.0, 60));
        let r = predict(&dev(), &[&a, &b]);
        assert_eq!(r.kinds, vec![InterferenceKind::MemoryCapacity]);
        assert!(r.violates_memory());
    }

    #[test]
    fn multiple_kinds_reported_together() {
        let (a, b) = (profile(80.0, 70.0, 50), profile(70.0, 60.0, 50));
        let r = predict(&dev(), &[&a, &b]);
        assert_eq!(r.kinds.len(), 3);
    }

    #[test]
    fn boundary_sums_are_compatible() {
        // Exactly 100 % is "under or at" the threshold -> compatible.
        let (a, b) = (profile(50.0, 50.0, 40), profile(50.0, 50.0, 40));
        let r = predict(&dev(), &[&a, &b]);
        assert!(r.is_compatible(), "kinds: {:?}", r.kinds);
    }

    #[test]
    fn singleton_and_empty_groups_never_interfere_on_utilization() {
        let a = profile(99.0, 99.0, 70);
        assert!(predict(&dev(), &[&a]).is_compatible());
        let r = predict(&dev(), &[]);
        assert!(r.is_compatible());
        assert_eq!(r.sm_sum, 0.0);
    }

    #[test]
    fn group_rule_generalizes_beyond_pairs() {
        let profiles: Vec<WorkflowProfile> = (0..4).map(|_| profile(30.0, 10.0, 10)).collect();
        let refs: Vec<&WorkflowProfile> = profiles.iter().collect();
        let r = predict(&dev(), &refs);
        assert_eq!(r.sm_sum, 120.0);
        assert_eq!(r.kinds, vec![InterferenceKind::Compute]);
    }
}
